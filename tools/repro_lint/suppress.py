"""Suppression comments.

Two forms are recognized (see docs/STATIC_ANALYSIS.md):

* ``# repro-lint: disable=D001`` — disables the listed rule(s) for the
  whole file, wherever the comment appears (conventionally near the top).
* ``# repro-lint: disable-line=D003`` — disables the listed rule(s) for
  the physical line carrying the comment only.

Multiple codes are comma-separated: ``# repro-lint: disable=D001,D004``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-line)?)\s*=\s*"
    r"(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
)


@dataclass
class Suppressions:
    """Parsed suppression state of one file."""

    file_rules: FrozenSet[str] = frozenset()
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, frozenset())


def parse_suppressions(text: str) -> Suppressions:
    """Scan source text for repro-lint suppression comments."""
    file_rules: Set[str] = set()
    line_rules: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _PATTERN.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
        )
        if match.group("kind") == "disable":
            file_rules |= codes
        else:
            line_rules[lineno] = line_rules.get(lineno, frozenset()) | codes
    return Suppressions(file_rules=frozenset(file_rules), line_rules=line_rules)
