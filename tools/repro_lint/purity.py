"""Shared-state purity walker.

The engine behind C001 (thread-pool races) and C002 (purity contracts):
given a callable and a classification of its arguments, walk the body —
transitively, across module boundaries — and report every write that can
land on shared state.

Each value is classified on a small lattice:

* **shared** — reachable by other threads/processes (``self`` of a
  shared object, parameters bound to shared arguments, module globals);
* **fresh** — constructed inside the walked call tree, hence local to
  it (literals, comprehensions, constructor calls and their captured
  attribute map);
* **scratch** — caller-owned state a C002 contract explicitly sanctions
  writes to (e.g. the ``cache`` parameter of ``evaluate_insert``).

Fresh *instances* of project classes carry a per-attribute
classification derived from walking ``__init__`` with the call-site
argument values — so a locally constructed object that captures shared
state (``InsertionContext(design=self.design, ...)``) keeps that state
shared when its methods are later walked.  This closes the fresh-local
capture hole the original C001 documented.  Attributes of *shared*
instances are shared, with one exemption: attributes whose inferred
class derives from ``threading.local`` are per-thread by construction.

Soundness line (documented in docs/STATIC_ANALYSIS.md): the walk
follows calls it can resolve through the symbol table and skips the
rest — except the mutator-method names (``append``, ``update``, ...)
and mutating stdlib functions (``heapq.heappush``, ``bisect.insort``),
which are always checked against their receiver/argument.  Property
*reads* are not followed (they are loads, not calls).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from tools.repro_lint.symbols import (
    ClassInfo,
    FunctionInfo,
    FunctionNode,
    SymbolTable,
    dotted_name,
)

FRESH = "fresh"
SHARED = "shared"
SCRATCH = "scratch"

#: Container/object methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "add", "discard", "update",
    "setdefault", "sort", "reverse", "rotate", "write", "put",
    "difference_update", "intersection_update", "symmetric_difference_update",
}

#: Module functions that mutate one of their arguments (by index).
MUTATING_FUNCTIONS = {
    "heapq.heappush": 0,
    "heapq.heappop": 0,
    "heapq.heapify": 0,
    "heapq.heappushpop": 0,
    "heapq.heapreplace": 0,
    "bisect.insort": 0,
    "bisect.insort_left": 0,
    "bisect.insort_right": 0,
    "random.shuffle": 0,
    "operator.setitem": 0,
    "operator.delitem": 0,
}

_MAX_DEPTH = 10

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

_FRESH_EXPRS = (
    ast.List, ast.Dict, ast.Set, ast.Tuple,
    ast.ListComp, ast.DictComp, ast.SetComp, ast.GeneratorExp,
    ast.Constant, ast.BinOp, ast.Compare, ast.BoolOp,
    ast.UnaryOp, ast.JoinedStr, ast.FormattedValue, ast.Lambda,
)


@dataclass
class Val:
    """Classification of one runtime value."""

    kind: str  # FRESH / SHARED / SCRATCH
    cls: Optional[str] = None  # class qname when statically known
    #: Per-attribute classification for fresh instances (captures what
    #: the constructor stored); None for plain values.
    attrs: Optional[Dict[str, "Val"]] = None

    def fingerprint(self) -> Tuple[object, ...]:
        attrs = (
            tuple(sorted((k, v.kind, v.cls) for k, v in self.attrs.items()))
            if self.attrs is not None else None
        )
        return (self.kind, self.cls, attrs)


FRESH_VAL = Val(FRESH)
SHARED_VAL = Val(SHARED)


def join(a: Val, b: Val) -> Val:
    """Least upper bound: shared beats scratch beats fresh."""
    for kind in (SHARED, SCRATCH):
        if a.kind == kind or b.kind == kind:
            return Val(kind, a.cls if a.cls == b.cls else None)
    cls = a.cls if a.cls == b.cls else (a.cls or b.cls)
    attrs: Optional[Dict[str, Val]] = None
    if a.attrs is not None or b.attrs is not None:
        attrs = dict(a.attrs or {})
        for key, val in (b.attrs or {}).items():
            attrs[key] = join(attrs[key], val) if key in attrs else val
    return Val(FRESH, cls, attrs)


def element_of(value: Val) -> Val:
    """Classification of an element/slice of a container value."""
    if value.kind == FRESH:
        return Val(FRESH, None)
    return Val(value.kind, None)


@dataclass
class PurityFinding:
    """One shared-state write discovered during a walk."""

    rel_path: str
    line: int
    what: str


@dataclass
class _Scope:
    """One function activation: bindings plus lexical parent (closures)."""

    env: Dict[str, Val]
    rel_path: str
    fn_name: str
    module: str  # module the walked code belongs to (for name resolution)
    declared_shared: Set[str] = field(default_factory=set)
    local_funcs: Dict[str, FunctionNode] = field(default_factory=dict)
    parent: Optional["_Scope"] = None

    def lookup(self, name: str) -> Optional[Val]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.env:
                return scope.env[name]
            scope = scope.parent
        return None

    def lookup_local_func(self, name: str) -> Optional[FunctionNode]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.local_funcs:
                return scope.local_funcs[name]
            scope = scope.parent
        return None

    def is_declared_shared(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.declared_shared:
                return True
            scope = scope.parent
        return False


class PurityWalker:
    """Transitive shared-write analysis over the project symbol table."""

    def __init__(self, symbols: SymbolTable, max_depth: int = _MAX_DEPTH):
        self.symbols = symbols
        self.max_depth = max_depth
        self.findings: List[PurityFinding] = []
        self._visited: Set[Tuple[object, ...]] = set()
        self._reported: Set[Tuple[str, int, str]] = set()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def walk_function(
        self, fn: FunctionInfo, env: Dict[str, Val], depth: int = 0
    ) -> None:
        """Walk ``fn`` with parameters pre-classified by ``env``."""
        key = (
            fn.qname,
            tuple(sorted((k, v.fingerprint()) for k, v in env.items())),
        )
        if key in self._visited or depth > self.max_depth:
            return
        self._visited.add(key)
        scope = _Scope(
            env=dict(env), rel_path=fn.rel_path, fn_name=fn.name,
            module=fn.module,
        )
        self._exec_block(fn.node.body, scope, depth)

    def walk_lambda(self, rel_path: str, module: str, node: ast.Lambda) -> None:
        """Check a lambda submitted directly to a pool.

        Its parameters are bound to shared work items; the body is one
        expression, so only calls can mutate.
        """
        env = {arg.arg: SHARED_VAL for arg in node.args.args}
        scope = _Scope(
            env=env, rel_path=rel_path, fn_name="<lambda>", module=module,
        )
        self._scan_expr(node.body, scope, 0)

    def bind_call(
        self,
        fn: FunctionInfo,
        call: Optional[ast.Call],
        arg_vals: Sequence[Val],
        kwarg_vals: Dict[str, Val],
        self_val: Optional[Val],
    ) -> Dict[str, Val]:
        """Map call-site argument classifications onto parameter names.

        Parameters not passed take the classification of their default
        expression (``cache=None`` stays fresh); ``*args``/``**kwargs``
        bind shared (conservative).
        """
        node = fn.node
        params = list(node.args.posonlyargs) + list(node.args.args)
        env: Dict[str, Val] = {}
        offset = 0
        if params and params[0].arg in ("self", "cls") and self_val is not None:
            env[params[0].arg] = self_val
            offset = 1
        for index, param in enumerate(params[offset:]):
            if index < len(arg_vals):
                env[param.arg] = arg_vals[index]
        for param in list(params[offset:]) + list(node.args.kwonlyargs):
            if param.arg in kwarg_vals:
                env[param.arg] = kwarg_vals[param.arg]
        # Defaults for anything still unbound.
        defaults = node.args.defaults
        positional = params
        for index, default in enumerate(defaults):
            param = positional[len(positional) - len(defaults) + index]
            if param.arg not in env:
                env[param.arg] = self._classify_default(default, fn)
        for param, kw_default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if param.arg not in env and kw_default is not None:
                env[param.arg] = self._classify_default(kw_default, fn)
        if node.args.vararg is not None:
            env.setdefault(node.args.vararg.arg, SHARED_VAL)
        if node.args.kwarg is not None:
            env.setdefault(node.args.kwarg.arg, SHARED_VAL)
        # Anything left (e.g. missing positional in odd call shapes).
        for param in positional + list(node.args.kwonlyargs):
            env.setdefault(param.arg, SHARED_VAL)
        return env

    def _classify_default(self, default: ast.expr, fn: FunctionInfo) -> Val:
        if isinstance(default, _FRESH_EXPRS):
            return FRESH_VAL
        return SHARED_VAL

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def _exec_block(
        self, body: Sequence[ast.stmt], scope: _Scope, depth: int
    ) -> None:
        for stmt in body:
            self._exec_stmt(stmt, scope, depth)

    def _exec_stmt(self, stmt: ast.stmt, scope: _Scope, depth: int) -> None:
        if isinstance(stmt, _FUNCTION_DEFS):
            scope.local_funcs[stmt.name] = stmt
            return
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            scope.declared_shared.update(stmt.names)
            return
        if isinstance(stmt, ast.Assign):
            value_val = self._scan_expr(stmt.value, scope, depth)
            for target in stmt.targets:
                self._check_store(target, scope, stmt.lineno)
            for target in stmt.targets:
                self._bind_target(target, stmt.value, value_val, scope)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value_val = self._scan_expr(stmt.value, scope, depth)
                self._check_store(stmt.target, scope, stmt.lineno)
                self._bind_target(stmt.target, stmt.value, value_val, scope)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, scope, depth)
            self._check_store(stmt.target, scope, stmt.lineno)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self._scan_expr(stmt.iter, scope, depth)
            self._bind_names(stmt.target, element_of(iter_val), scope)
            self._exec_block(stmt.body, scope, depth)
            self._exec_block(stmt.orelse, scope, depth)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, scope, depth)
            self._exec_block(stmt.body, scope, depth)
            self._exec_block(stmt.orelse, scope, depth)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, scope, depth)
            self._exec_block(stmt.body, scope, depth)
            self._exec_block(stmt.orelse, scope, depth)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx_val = self._scan_expr(item.context_expr, scope, depth)
                if item.optional_vars is not None:
                    self._bind_names(item.optional_vars, ctx_val, scope)
            self._exec_block(stmt.body, scope, depth)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, scope, depth)
            for handler in stmt.handlers:
                if handler.name is not None:
                    scope.env[handler.name] = FRESH_VAL
                self._exec_block(handler.body, scope, depth)
            self._exec_block(stmt.orelse, scope, depth)
            self._exec_block(stmt.finalbody, scope, depth)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(target, scope, stmt.lineno, verb="delete")
            return
        if isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._scan_expr(stmt.value, scope, depth)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc, scope, depth)
            if stmt.cause is not None:
                self._scan_expr(stmt.cause, scope, depth)
            return
        if isinstance(stmt, ast.Assert):
            self._scan_expr(stmt.test, scope, depth)
            if stmt.msg is not None:
                self._scan_expr(stmt.msg, scope, depth)
            return
        # Pass/Import/Break/Continue/ClassDef: nothing to do.  A class
        # defined inside a walked function is rare enough to ignore.

    def _bind_target(
        self, target: ast.expr, value: ast.expr, value_val: Val, scope: _Scope
    ) -> None:
        if isinstance(target, ast.Name):
            scope.env[target.id] = value_val
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._bind_target(
                        sub_target, sub_value,
                        self._classify(sub_value, scope), scope,
                    )
            else:
                self._bind_names(target, element_of(value_val), scope)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, value_val, scope)
        elif isinstance(target, ast.Attribute):
            # ``self.X = value`` on a fresh instance: record what the
            # attribute now holds (constructor capture analysis).
            base_val = self._classify(target.value, scope)
            if base_val.kind == FRESH and base_val.attrs is not None:
                existing = base_val.attrs.get(target.attr)
                base_val.attrs[target.attr] = (
                    join(existing, value_val) if existing else value_val
                )

    def _bind_names(self, target: ast.expr, value_val: Val, scope: _Scope) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                scope.env[node.id] = value_val

    # ------------------------------------------------------------------
    # Store checking
    # ------------------------------------------------------------------

    def _check_store(
        self, target: ast.expr, scope: _Scope, lineno: int, verb: str = "store"
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, scope, lineno, verb)
            return
        if isinstance(target, ast.Starred):
            self._check_store(target.value, scope, lineno, verb)
            return
        if isinstance(target, ast.Name):
            if scope.is_declared_shared(target.id):
                self._report(
                    scope, lineno,
                    f"assignment to global/nonlocal '{target.id}' in "
                    f"'{scope.fn_name}'",
                )
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base_val = self._classify(target.value, scope)
            if base_val.kind == SHARED:
                label = self._describe(target.value)
                self._report(
                    scope, lineno,
                    f"{verb} into shared state via '{label}' in "
                    f"'{scope.fn_name}'",
                )

    @staticmethod
    def _describe(node: ast.expr) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"

    def _report(self, scope: _Scope, lineno: int, what: str) -> None:
        key = (scope.rel_path, lineno, what)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(PurityFinding(scope.rel_path, lineno, what))

    # ------------------------------------------------------------------
    # Expression scanning / classification
    # ------------------------------------------------------------------

    def _scan_expr(self, expr: ast.expr, scope: _Scope, depth: int) -> Val:
        """Visit calls inside ``expr`` and classify its value."""
        return self._classify(expr, scope, depth, scan=True)

    def _classify(
        self,
        expr: ast.expr,
        scope: _Scope,
        depth: int = 0,
        scan: bool = False,
    ) -> Val:
        if isinstance(expr, ast.Name):
            bound = scope.lookup(expr.id)
            if bound is not None:
                return bound
            if scope.lookup_local_func(expr.id) is not None:
                return FRESH_VAL
            # Module global / builtin: shared until proven otherwise.
            return SHARED_VAL
        if isinstance(expr, ast.Call):
            return self._handle_call(expr, scope, depth, scan)
        if isinstance(expr, ast.Attribute):
            return self._classify_attribute(expr, scope, depth, scan)
        if isinstance(expr, ast.Subscript):
            base = self._classify(expr.value, scope, depth, scan)
            if scan:
                self._classify(expr.slice, scope, depth, scan)
            return element_of(base)
        if isinstance(expr, ast.IfExp):
            if scan:
                self._classify(expr.test, scope, depth, scan)
            return join(
                self._classify(expr.body, scope, depth, scan),
                self._classify(expr.orelse, scope, depth, scan),
            )
        if isinstance(expr, ast.NamedExpr):
            value_val = self._classify(expr.value, scope, depth, scan)
            if isinstance(expr.target, ast.Name):
                scope.env[expr.target.id] = value_val
            return value_val
        if isinstance(expr, ast.Starred):
            return self._classify(expr.value, scope, depth, scan)
        if isinstance(expr, ast.Await):
            return self._classify(expr.value, scope, depth, scan)
        if isinstance(expr, ast.Lambda):
            if scan:
                self._scan_lambda_body(expr, scope, depth)
            return FRESH_VAL
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if scan:
                self._scan_comprehension(expr, scope, depth)
            return FRESH_VAL
        if scan:
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._classify(child, scope, depth, scan)
        if isinstance(expr, _FRESH_EXPRS):
            return FRESH_VAL
        return FRESH_VAL

    def _classify_attribute(
        self, expr: ast.Attribute, scope: _Scope, depth: int, scan: bool
    ) -> Val:
        base = self._classify(expr.value, scope, depth, scan)
        if base.kind == SCRATCH:
            return Val(
                SCRATCH,
                self.symbols.attr_class(base.cls, expr.attr)
                if base.cls else None,
            )
        if base.kind == FRESH:
            attr_cls = (
                self.symbols.attr_class(base.cls, expr.attr)
                if base.cls else None
            )
            if base.attrs is not None and expr.attr in base.attrs:
                captured = base.attrs[expr.attr]
                if captured.cls is None and attr_cls is not None:
                    return Val(captured.kind, attr_cls, captured.attrs)
                return captured
            return Val(FRESH, attr_cls)
        # Shared base.
        attr_cls = (
            self.symbols.attr_class(base.cls, expr.attr) if base.cls else None
        )
        if self.symbols.is_thread_local(attr_cls):
            # threading.local subclass: each thread sees its own copy.
            return Val(FRESH, attr_cls)
        return Val(SHARED, attr_cls)

    def _scan_lambda_body(
        self, node: ast.Lambda, scope: _Scope, depth: int
    ) -> None:
        env = {arg.arg: FRESH_VAL for arg in (
            list(node.args.posonlyargs) + list(node.args.args)
            + list(node.args.kwonlyargs)
        )}
        inner = _Scope(
            env=env, rel_path=scope.rel_path, fn_name=scope.fn_name,
            module=scope.module, parent=scope,
        )
        self._scan_expr(node.body, inner, depth)

    def _scan_comprehension(self, node: ast.expr, scope: _Scope, depth: int) -> None:
        inner = _Scope(
            env={}, rel_path=scope.rel_path, fn_name=scope.fn_name,
            module=scope.module, parent=scope,
        )
        generators = getattr(node, "generators", [])
        for comp in generators:
            iter_val = self._scan_expr(comp.iter, inner, depth)
            self._bind_names(comp.target, element_of(iter_val), inner)
            for cond in comp.ifs:
                self._scan_expr(cond, inner, depth)
        if isinstance(node, ast.DictComp):
            self._scan_expr(node.key, inner, depth)
            self._scan_expr(node.value, inner, depth)
        else:
            self._scan_expr(node.elt, inner, depth)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _handle_call(
        self, call: ast.Call, scope: _Scope, depth: int, scan: bool
    ) -> Val:
        arg_vals = [
            self._classify(arg, scope, depth, scan) for arg in call.args
        ]
        kwarg_vals = {
            kw.arg: self._classify(kw.value, scope, depth, scan)
            for kw in call.keywords if kw.arg is not None
        }
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs forwarding
                self._classify(kw.value, scope, depth, scan)
        func = call.func

        # Locally defined function (closure): walk with lexical scope.
        if isinstance(func, ast.Name):
            local = scope.lookup_local_func(func.id)
            if local is not None:
                self._walk_nested(local, call, arg_vals, kwarg_vals, scope, depth)
                return FRESH_VAL

        dotted = dotted_name(func)
        resolved: Optional[str] = None
        if dotted is not None:
            mod = self.symbols.modules.get(scope.module)
            if mod is not None:
                resolved = self.symbols.resolve(mod, dotted)

        # Mutating stdlib helpers: check the mutated argument.
        mutated_index = MUTATING_FUNCTIONS.get(resolved or dotted or "")
        if mutated_index is not None:
            if mutated_index < len(arg_vals) and (
                arg_vals[mutated_index].kind == SHARED
            ):
                self._report(
                    scope, call.lineno,
                    f"mutating call '{dotted}(...)' on shared argument in "
                    f"'{scope.fn_name}'",
                )
            return FRESH_VAL

        # Receiver-attached calls.
        if isinstance(func, ast.Attribute):
            receiver = self._classify(func.value, scope, depth)
            if func.attr in MUTATOR_METHODS:
                if receiver.kind == SHARED:
                    self._report(
                        scope, call.lineno,
                        f"mutating call '.{func.attr}(...)' on shared object "
                        f"'{self._describe(func.value)}' in '{scope.fn_name}'",
                    )
                return FRESH_VAL
            if resolved is not None:
                handled = self._call_resolved(
                    resolved, call, arg_vals, kwarg_vals, depth
                )
                if handled is not None:
                    return handled
            if receiver.cls is not None:
                method = self.symbols.lookup_method(receiver.cls, func.attr)
                if method is not None:
                    env = self.bind_call(
                        method, call, arg_vals, kwarg_vals, self_val=receiver
                    )
                    self.walk_function(method, env, depth + 1)
                    return FRESH_VAL
            # Unresolvable non-mutator method: out of reach (documented).
            return FRESH_VAL

        if resolved is not None:
            handled = self._call_resolved(
                resolved, call, arg_vals, kwarg_vals, depth
            )
            if handled is not None:
                return handled
        return FRESH_VAL

    def _call_resolved(
        self,
        qname: str,
        call: ast.Call,
        arg_vals: Sequence[Val],
        kwarg_vals: Dict[str, Val],
        depth: int,
    ) -> Optional[Val]:
        """Walk a call resolved to a known function/class; None if unknown."""
        cls_info = self.symbols.lookup_class(qname)
        if cls_info is not None:
            return self.construct(cls_info, call, arg_vals, kwarg_vals, depth)
        fn = self.symbols.lookup_function(qname)
        if fn is not None:
            self_val = SHARED_VAL if fn.class_qname is not None else None
            env = self.bind_call(fn, call, arg_vals, kwarg_vals, self_val)
            self.walk_function(fn, env, depth + 1)
            return FRESH_VAL
        return None

    def construct(
        self,
        cls_info: ClassInfo,
        call: Optional[ast.Call],
        arg_vals: Sequence[Val],
        kwarg_vals: Dict[str, Val],
        depth: int,
    ) -> Val:
        """Instantiate: walk ``__init__`` and capture the attribute map."""
        instance = Val(FRESH, cls_info.qname, attrs={})
        init = self.symbols.lookup_method(cls_info.qname, "__init__")
        if init is not None:
            env = self.bind_call(
                init, call, arg_vals, kwarg_vals, self_val=instance
            )
            self.walk_function(init, env, depth + 1)
        post_init = self.symbols.lookup_method(cls_info.qname, "__post_init__")
        if post_init is not None and init is None:
            # Dataclass: fields come from the call site by position/name.
            fields = [
                name for name in cls_info.attr_types
                if not name.startswith("__")
            ]
            attrs = instance.attrs
            if attrs is not None:
                for index, value in enumerate(arg_vals):
                    if index < len(fields):
                        attrs[fields[index]] = value
                attrs.update(kwarg_vals)
            self.walk_function(post_init, {"self": instance}, depth + 1)
        elif init is None and instance.attrs is not None:
            # No constructor at all: dataclass fields map positionally.
            fields = list(cls_info.attr_types)
            for index, value in enumerate(arg_vals):
                if index < len(fields):
                    instance.attrs[fields[index]] = value
            instance.attrs.update(kwarg_vals)
        return instance

    def _walk_nested(
        self,
        node: FunctionNode,
        call: ast.Call,
        arg_vals: Sequence[Val],
        kwarg_vals: Dict[str, Val],
        scope: _Scope,
        depth: int,
    ) -> None:
        if depth > self.max_depth:
            return
        params = list(node.args.posonlyargs) + list(node.args.args)
        env: Dict[str, Val] = {}
        for index, param in enumerate(params):
            if index < len(arg_vals):
                env[param.arg] = arg_vals[index]
        for param in params + list(node.args.kwonlyargs):
            if param.arg in kwarg_vals:
                env[param.arg] = kwarg_vals[param.arg]
        for param in params + list(node.args.kwonlyargs):
            env.setdefault(param.arg, FRESH_VAL)
        inner = _Scope(
            env=env, rel_path=scope.rel_path, fn_name=node.name,
            module=scope.module, parent=scope,
        )
        self._exec_block(node.body, inner, depth + 1)
