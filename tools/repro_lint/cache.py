"""Incremental lint cache.

Whole-program analysis re-reads the entire tree on every run; the cache
makes the common case — nothing changed, or one file changed — cheap
without ever changing findings.  Keying is content-based:

* the **config digest** (:meth:`LintConfig.digest`) — any scope or
  contract change invalidates everything;
* per file, the sha256 of its bytes;
* per file, a **dependency digest**: sha256 over the sorted
  ``(path, content-hash)`` pairs of its call-graph-reachable closure
  (:meth:`CallGraph.reachable_files`).  A C002 walk rooted in ``mgl.py``
  descends into ``refine.py``; editing ``refine.py`` changes ``mgl.py``'s
  dependency digest, so its findings are recomputed even though the file
  itself did not change.

Two replay tiers:

* **fully warm** — config digest, file set, and every content hash
  match: stored findings are replayed with *no parsing at all*;
* **partially warm** — the tree is parsed (the symbol table needs every
  file regardless), but rules re-run only for files whose dependency
  digest changed; the rest replay.

Config invalidation is **family-granular**: alongside the full config
digest the cache stores a *base* digest (fields every rule shares,
i.e. ``exclude``) and one digest per rule family
(:data:`~tools.repro_lint.config.FAMILY_FIELDS`).  When only one
family's scoping changed — say ``trial-modules`` — unchanged files
replay every other family's findings and re-run just the E-series
rules, instead of degrading to a cold run.

Cached findings are post-suppression, so replay is exactly what a cold
run would print.  A missing, corrupt, or version-mismatched cache file
degrades to a cold run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from tools.repro_lint.violations import Violation

CACHE_VERSION = 3


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def dependency_digest(
    closure: Iterable[str], hashes: Dict[str, str]
) -> str:
    """Digest of the (path, hash) pairs of a file's reachable closure."""
    payload = "\x1e".join(
        f"{path}\x1f{hashes.get(path, '?')}" for path in sorted(closure)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """Cached state of one scanned file."""

    content: str  # sha256 of the file bytes
    deps: str  # dependency digest over its reachable closure
    violations: List[Violation] = field(default_factory=list)


@dataclass
class LintCache:
    """On-disk cache: config digests plus one entry per scanned file."""

    config_digest: str = ""
    base_digest: str = ""
    family_digests: Dict[str, str] = field(default_factory=dict)
    entries: Dict[str, CacheEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> Optional["LintCache"]:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return None
        raw_entries = data.get("files")
        digest = data.get("config")
        base = data.get("base")
        families = data.get("families")
        if not isinstance(raw_entries, dict) or not isinstance(digest, str):
            return None
        if not isinstance(base, str) or not isinstance(families, dict):
            return None
        if not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in families.items()
        ):
            return None
        cache = cls(
            config_digest=digest, base_digest=base,
            family_digests=dict(families),
        )
        try:
            for rel_path, raw in raw_entries.items():
                cache.entries[rel_path] = CacheEntry(
                    content=raw["content"],
                    deps=raw["deps"],
                    violations=[
                        Violation(rel_path, int(v[0]), int(v[1]),
                                  str(v[2]), str(v[3]))
                        for v in raw["violations"]
                    ],
                )
        except (KeyError, TypeError, ValueError, IndexError):
            return None
        return cache

    def save(self, path: Path) -> None:
        data = {
            "version": CACHE_VERSION,
            "config": self.config_digest,
            "base": self.base_digest,
            "families": dict(sorted(self.family_digests.items())),
            "files": {
                rel_path: {
                    "content": entry.content,
                    "deps": entry.deps,
                    "violations": [
                        [v.line, v.col, v.rule, v.message]
                        for v in entry.violations
                    ],
                }
                for rel_path, entry in sorted(self.entries.items())
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(data, indent=None, separators=(",", ":")),
            encoding="utf-8",
        )

    # ------------------------------------------------------------------

    def fully_warm(
        self, config_digest: str, hashes: Dict[str, str]
    ) -> bool:
        """True when stored findings can replay without any parsing."""
        if self.config_digest != config_digest:
            return False
        if set(self.entries) != set(hashes):
            return False
        return all(
            self.entries[rel_path].content == digest
            for rel_path, digest in hashes.items()
        )

    def replay_all(self) -> List[Violation]:
        violations: List[Violation] = []
        for entry in self.entries.values():
            violations.extend(entry.violations)
        return violations

    def lookup(
        self, config_digest: str, rel_path: str, content: str, deps: str
    ) -> Optional[CacheEntry]:
        """Entry for ``rel_path`` if its digests still match, else None."""
        if self.config_digest != config_digest:
            return None
        return self.entry_for(rel_path, content, deps)

    def entry_for(
        self, rel_path: str, content: str, deps: str
    ) -> Optional[CacheEntry]:
        """Content/deps-matched entry, ignoring the config digests.

        Callers doing family-granular replay have already decided which
        families the entry may speak for.
        """
        entry = self.entries.get(rel_path)
        if entry is None or entry.content != content or entry.deps != deps:
            return None
        return entry

    def changed_families(
        self, base_digest: str, family_digests: Dict[str, str]
    ) -> Optional[Set[str]]:
        """Families whose config fields changed since this cache.

        Returns ``None`` when family-granular replay is impossible (base
        fields changed, or the cache predates family digests); an empty
        set means the config is identical at family granularity.
        Families present on only one side count as changed.
        """
        if self.base_digest != base_digest or not self.family_digests:
            return None
        changed = {
            family
            for family in set(self.family_digests) | set(family_digests)
            if self.family_digests.get(family) != family_digests.get(family)
        }
        return changed
