"""Linting engine: collect files, run rules, cache, apply suppressions.

The cross-module rules need every file parsed and indexed before any
file can be checked, so the engine works in project granularity:
collect → hash → (maybe replay from cache) → parse → symbol table +
call graph → per-file rule runs (replaying unchanged files) → cache
write.  :func:`run_lint` keeps the original list-of-violations API;
:func:`lint` returns the violations plus run statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from tools.repro_lint.cache import (
    CacheEntry,
    LintCache,
    content_hash,
    dependency_digest,
)
from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile, parse_source
from tools.repro_lint.rules import Rule, all_rules
from tools.repro_lint.violations import Violation

_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", "build",
              "dist"}


@dataclass
class LintStats:
    """What one lint run did, for ``--stats`` and the CI job summary."""

    files_total: int = 0
    files_replayed: int = 0  # served from cache without re-running rules
    cache_mode: str = "disabled"  # disabled | cold | partial | warm
    wall_seconds: float = 0.0
    per_rule: Dict[str, int] = field(default_factory=dict)
    #: Rule families re-run because only their config fields changed
    #: (empty when the whole rule set ran or everything replayed).
    families_rerun: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "files_total": self.files_total,
            "files_replayed": self.files_replayed,
            "cache_mode": self.cache_mode,
            "wall_seconds": round(self.wall_seconds, 4),
            "per_rule": dict(sorted(self.per_rule.items())),
            "families_rerun": sorted(self.families_rerun),
        }


@dataclass
class LintResult:
    violations: List[Violation]
    stats: LintStats


def collect_files(root: Path, targets: Iterable[str],
                  config: LintConfig) -> List[Path]:
    """Python files under each target, minus excluded/skipped paths."""
    files: List[Path] = []
    seen = set()
    for target in targets:
        path = (root / target).resolve() if not Path(target).is_absolute() \
            else Path(target)
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        else:
            continue
        for candidate in candidates:
            try:
                rel = candidate.relative_to(root).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            if LintConfig.in_scope(rel, config.exclude):
                continue
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def _read_files(
    root: Path, files: Iterable[Path]
) -> Tuple[Dict[str, str], List[Violation]]:
    """Map rel_path -> text; unreadable files become E999 violations."""
    texts: Dict[str, str] = {}
    errors: List[Violation] = []
    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            texts[rel] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Violation(rel, 1, 0, "E999", f"unreadable: {exc}"))
    return texts, errors


def build_project(
    root: Path, files: Iterable[Path]
) -> Tuple[Project, List[Violation]]:
    """Parse everything; syntax errors become E999 violations."""
    texts, errors = _read_files(root, files)
    sources, syntax_errors = _parse_all(texts)
    errors.extend(syntax_errors.values())
    return Project.build(sources), errors


def _parse_all(
    texts: Dict[str, str]
) -> Tuple[List[SourceFile], Dict[str, Violation]]:
    sources: List[SourceFile] = []
    errors: Dict[str, Violation] = {}
    for rel, text in texts.items():
        try:
            sources.append(parse_source(rel, text))
        except SyntaxError as exc:
            errors[rel] = Violation(
                rel, exc.lineno or 1, (exc.offset or 1) - 1, "E999",
                f"syntax error: {exc.msg}",
            )
    return sources, errors


def lint(
    root: Path,
    targets: Iterable[str],
    config: LintConfig,
    cache_path: Optional[Path] = None,
) -> LintResult:
    """Lint ``targets``; optionally through the incremental cache."""
    start = time.perf_counter()
    stats = LintStats()
    files = collect_files(root, targets, config)
    texts, io_errors = _read_files(root, files)
    hashes = {rel: content_hash(text) for rel, text in texts.items()}
    stats.files_total = len(texts) + len(io_errors)
    config_digest = config.digest()
    base_digest = config.base_digest()
    family_map = config.family_digests()

    cache: Optional[LintCache] = None
    if cache_path is not None:
        cache = LintCache.load(cache_path)
        stats.cache_mode = "cold"

    # Tier 1: nothing changed — replay without parsing a single file.
    # Unreadable files have no stable hash, so any I/O error disables it.
    if cache is not None and not io_errors and cache.fully_warm(
        config_digest, hashes
    ):
        stats.cache_mode = "warm"
        stats.files_replayed = len(hashes)
        warm = sorted(cache.replay_all())
        for violation in warm:
            stats.per_rule[violation.rule] = (
                stats.per_rule.get(violation.rule, 0) + 1
            )
        stats.wall_seconds = time.perf_counter() - start
        return LintResult(warm, stats)

    # Tier 2: parse the tree (the symbol table needs every file), then
    # replay files whose dependency closure is byte-identical.
    sources, syntax_errors = _parse_all(texts)
    project = Project.build(sources)
    violations: List[Violation] = list(io_errors)
    violations.extend(syntax_errors.values())

    dep_digests: Dict[str, str] = {}
    for source in project.files:
        closure = project.callgraph.reachable_files(source.rel_path)
        dep_digests[source.rel_path] = dependency_digest(closure, hashes)

    rules = all_rules()

    # Family-granular config invalidation: an entry whose content and
    # dependency closure still match can replay the findings of every
    # family whose config fields did not change, re-running only the
    # changed families' rules.  ``None`` means the cache cannot speak
    # for any family (base fields changed, or no/any-version mismatch).
    changed_families: Optional[Set[str]] = None
    if cache is not None:
        if cache.config_digest == config_digest:
            changed_families = set()
        else:
            changed_families = cache.changed_families(
                base_digest, family_map
            )
    if changed_families:
        stats.families_rerun = sorted(changed_families)

    def _run_rules(source: SourceFile, subset: List[Rule]) -> List[Violation]:
        found: List[Violation] = []
        for rule in subset:
            for violation in rule.check_file(source, project, config):
                if source.suppressions.is_suppressed(
                    violation.rule, violation.line
                ):
                    continue
                found.append(violation)
        return found

    next_cache = LintCache(
        config_digest=config_digest, base_digest=base_digest,
        family_digests=family_map,
    )
    replayed = 0
    for source in project.files:
        rel = source.rel_path
        deps = dep_digests[rel]
        entry = (
            cache.entry_for(rel, hashes[rel], deps)
            if cache is not None and changed_families is not None
            else None
        )
        if entry is not None and not changed_families:
            file_violations = list(entry.violations)
            replayed += 1
        elif entry is not None:
            file_violations = [
                v for v in entry.violations
                if v.rule[:1] not in changed_families
            ]
            file_violations.extend(_run_rules(
                source,
                [r for r in rules if r.code[:1] in changed_families],
            ))
            replayed += 1
        else:
            file_violations = _run_rules(source, rules)
        violations.extend(file_violations)
        next_cache.entries[rel] = CacheEntry(
            content=hashes[rel], deps=deps, violations=file_violations,
        )

    if cache_path is not None:
        if cache is not None and replayed:
            stats.cache_mode = "partial"
        try:
            next_cache.save(cache_path)
        except OSError:
            pass  # caching is best-effort; findings are already computed
    stats.files_replayed = replayed
    violations = sorted(violations)
    for violation in violations:
        stats.per_rule[violation.rule] = (
            stats.per_rule.get(violation.rule, 0) + 1
        )
    stats.wall_seconds = time.perf_counter() - start
    return LintResult(violations, stats)


def run_lint(root: Path, targets: Iterable[str],
             config: LintConfig) -> List[Violation]:
    """Lint ``targets`` (paths relative to ``root``); sorted violations."""
    return lint(root, targets, config).violations
