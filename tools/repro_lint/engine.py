"""Linting engine: collect files, run rules, apply suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, parse_source
from tools.repro_lint.rules import all_rules
from tools.repro_lint.violations import Violation

_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", "build",
              "dist"}


def collect_files(root: Path, targets: Iterable[str],
                  config: LintConfig) -> List[Path]:
    """Python files under each target, minus excluded/skipped paths."""
    files: List[Path] = []
    seen = set()
    for target in targets:
        path = (root / target).resolve() if not Path(target).is_absolute() \
            else Path(target)
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        else:
            continue
        for candidate in candidates:
            try:
                rel = candidate.relative_to(root).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            if LintConfig.in_scope(rel, config.exclude):
                continue
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def build_project(root: Path, files: Iterable[Path]) -> Tuple[Project, List[Violation]]:
    """Parse everything; syntax errors become E999 violations."""
    project = Project()
    errors: List[Violation] = []
    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Violation(rel, 1, 0, "E999", f"unreadable: {exc}"))
            continue
        try:
            project.add(parse_source(rel, text))
        except SyntaxError as exc:
            errors.append(Violation(
                rel, exc.lineno or 1, (exc.offset or 1) - 1, "E999",
                f"syntax error: {exc.msg}",
            ))
    return project, errors


def run_lint(root: Path, targets: Iterable[str],
             config: LintConfig) -> List[Violation]:
    """Lint ``targets`` (paths relative to ``root``); sorted violations."""
    files = collect_files(root, targets, config)
    project, violations = build_project(root, files)
    rules = all_rules()
    for source in project.files:
        for rule in rules:
            for violation in rule.check_file(source, project, config):
                if source.suppressions.is_suppressed(
                    violation.rule, violation.line
                ):
                    continue
                violations.append(violation)
    return sorted(violations)
