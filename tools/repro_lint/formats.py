"""Output formats: text, JSON, and SARIF 2.1.0.

SARIF is the GitHub code-scanning interchange format; the CI lint job
uploads it so findings annotate pull requests.  Columns are converted
from the internal 0-based offsets to SARIF's 1-based ``startColumn``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from tools.repro_lint.rules import Rule
from tools.repro_lint.violations import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def render_text(violations: Sequence[Violation]) -> str:
    return "\n".join(v.render() for v in violations)


def render_json(
    violations: Sequence[Violation], stats: Dict[str, Any]
) -> str:
    data = {
        "tool": TOOL_NAME,
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
        "stats": stats,
    }
    return json.dumps(data, indent=2, sort_keys=True)


def render_sarif(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> str:
    """SARIF 2.1.0 log with one run and the full rule catalogue."""
    catalogue = {rule.code: rule for rule in rules}
    # Findings may carry codes outside the catalogue (E999): declare
    # every referenced id so rule_index stays resolvable.
    extra = sorted(
        {v.rule for v in violations} - set(catalogue)
    )
    rule_ids = list(catalogue) + extra
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    descriptors: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule = catalogue.get(rule_id)
        descriptors.append({
            "id": rule_id,
            "shortDescription": {
                "text": rule.summary if rule is not None else rule_id,
            },
        })
    results: List[Dict[str, Any]] = []
    for v in violations:
        results.append({
            "ruleId": v.rule,
            "ruleIndex": rule_index[v.rule],
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": v.line,
                        "startColumn": v.col + 1,
                    },
                },
            }],
        })
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "rules": descriptors,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
