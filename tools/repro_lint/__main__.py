"""``python -m tools.repro_lint`` entry point."""

import sys

from tools.repro_lint.cli import main

sys.exit(main())
