"""Configuration for repro-lint.

Rule scopes are path prefixes relative to the repository root (POSIX
separators).  Defaults below encode this codebase's layout; they can be
overridden from ``pyproject.toml``::

    [tool.repro-lint]
    ordering-sensitive = ["src/repro/core/", "src/repro/flow/"]
    float-sensitive = ["src/repro/model/", "src/repro/core/"]
    algorithm-modules = ["src/repro/core/", ...]
    scheduler-modules = ["src/repro/core/scheduler.py"]
    exclude = ["tests/lint_fixtures/"]

``tomllib`` (Python >= 3.11) or ``tomli`` is used when available; on
interpreters with neither, the built-in defaults — which match the
checked-in pyproject section — apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Paths skipped entirely, on top of per-rule scoping.
DEFAULT_EXCLUDE: Tuple[str, ...] = (
    "tests/lint_fixtures/",
    "benchmarks/out/",
)

#: D002: modules where iteration order feeds algorithm decisions.
DEFAULT_ORDERING_SENSITIVE: Tuple[str, ...] = (
    "src/repro/core/",
    "src/repro/flow/",
)

#: D003: geometry/occupancy modules that must use site-integer math.
DEFAULT_FLOAT_SENSITIVE: Tuple[str, ...] = (
    "src/repro/model/",
    "src/repro/core/",
)

#: D004: algorithm modules where wall-clock reads are banned.
DEFAULT_ALGORITHM_MODULES: Tuple[str, ...] = (
    "src/repro/core/",
    "src/repro/flow/",
    "src/repro/gp/",
    "src/repro/baselines/",
    "src/repro/benchgen/",
    "src/repro/checker/",
    "src/repro/model/",
)

#: C001: modules whose thread-pool submissions are race-checked.
DEFAULT_SCHEDULER_MODULES: Tuple[str, ...] = (
    "src/repro/core/scheduler.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved rule scopes (path prefixes relative to the repo root)."""

    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    ordering_sensitive: Tuple[str, ...] = DEFAULT_ORDERING_SENSITIVE
    float_sensitive: Tuple[str, ...] = DEFAULT_FLOAT_SENSITIVE
    algorithm_modules: Tuple[str, ...] = DEFAULT_ALGORITHM_MODULES
    scheduler_modules: Tuple[str, ...] = DEFAULT_SCHEDULER_MODULES

    @staticmethod
    def in_scope(rel_path: str, prefixes: Tuple[str, ...]) -> bool:
        """True when ``rel_path`` falls under any scope prefix."""
        return any(rel_path.startswith(prefix) for prefix in prefixes)


def _load_toml(path: Path) -> Optional[Dict[str, Any]]:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - version-dependent
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def load_config(root: Path) -> LintConfig:
    """Build the config from ``<root>/pyproject.toml`` (or defaults)."""
    data = _load_toml(root / "pyproject.toml")
    if data is None:
        return LintConfig()
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return LintConfig()

    def read(key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = section.get(key)
        if isinstance(value, list) and all(isinstance(v, str) for v in value):
            return tuple(value)
        return default

    return LintConfig(
        exclude=read("exclude", DEFAULT_EXCLUDE),
        ordering_sensitive=read("ordering-sensitive", DEFAULT_ORDERING_SENSITIVE),
        float_sensitive=read("float-sensitive", DEFAULT_FLOAT_SENSITIVE),
        algorithm_modules=read("algorithm-modules", DEFAULT_ALGORITHM_MODULES),
        scheduler_modules=read("scheduler-modules", DEFAULT_SCHEDULER_MODULES),
    )
