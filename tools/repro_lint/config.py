"""Configuration for repro-lint.

Rule scopes are path prefixes relative to the repository root (POSIX
separators).  Defaults below encode this codebase's layout; they can be
overridden from ``pyproject.toml``::

    [tool.repro-lint]
    ordering-sensitive = ["src/repro/core/", "src/repro/flow/"]
    float-sensitive = ["src/repro/model/", "src/repro/core/"]
    algorithm-modules = ["src/repro/core/", ...]
    scheduler-modules = ["src/repro/core/scheduler.py"]
    exclude = ["tests/lint_fixtures/"]

``tomllib`` (Python >= 3.11) or ``tomli`` is used when available; on
interpreters with neither, the built-in defaults — which match the
checked-in pyproject section — apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Paths skipped entirely, on top of per-rule scoping.
DEFAULT_EXCLUDE: Tuple[str, ...] = (
    "tests/lint_fixtures/",
    "benchmarks/out/",
)

#: D002: modules where iteration order feeds algorithm decisions.
DEFAULT_ORDERING_SENSITIVE: Tuple[str, ...] = (
    "src/repro/core/",
    "src/repro/flow/",
)

#: D003: geometry/occupancy modules that must use site-integer math.
DEFAULT_FLOAT_SENSITIVE: Tuple[str, ...] = (
    "src/repro/model/",
    "src/repro/core/",
)

#: D004: algorithm modules where wall-clock reads are banned.
DEFAULT_ALGORITHM_MODULES: Tuple[str, ...] = (
    "src/repro/core/",
    "src/repro/flow/",
    "src/repro/gp/",
    "src/repro/baselines/",
    "src/repro/benchgen/",
    "src/repro/checker/",
    "src/repro/model/",
)

#: C001: modules whose thread-pool submissions are race-checked.
DEFAULT_SCHEDULER_MODULES: Tuple[str, ...] = (
    "src/repro/core/scheduler.py",
)

#: C002: callables verified transitively free of shared-state writes.
#: A trailing parenthesized list names caller-owned *scratch* parameters
#: whose state the contract explicitly sanctions writes to — e.g. the
#: ``cache`` of ``evaluate_insert`` ("pool submissions must leave cache
#: as None"; single-owner callers may pass their private GapCache).
DEFAULT_PURE_CONTRACTS: Tuple[str, ...] = (
    "repro.core.mgl.MGLegalizer.evaluate_insert(cache)",
    "repro.core.parallel.worker_main",
)

#: M001: classes whose internals may only be written by their home module.
DEFAULT_MUTATION_PROTECTED: Tuple[str, ...] = (
    "repro.core.occupancy.Occupancy",
    "repro.core.insertion.InsertionContext",
)

#: E001: modules whose protected-state mutations must be balanced by a
#: restore on every exit edge (the trial/rollback machinery).
DEFAULT_TRIAL_MODULES: Tuple[str, ...] = (
    "src/repro/core/mgl.py",
    "src/repro/core/scheduler.py",
    "src/repro/core/shard.py",
    "src/repro/core/parallel.py",
)

#: E001: functions *declared* to commit accepted moves for real.  Their
#: mutations are exempt from the restore requirement, but the rule then
#: verifies they are atomic: no exceptional exit is reachable after the
#: first protected mutation.
DEFAULT_MUTATION_COMMITS: Tuple[str, ...] = (
    "repro.core.mgl.MGLegalizer.apply_insertion",
)

#: P001: modules whose worker pipe payloads must be canonical.
DEFAULT_PIPE_MODULES: Tuple[str, ...] = (
    "src/repro/core/parallel.py",
    "src/repro/core/shard.py",
)

#: Rule-family -> config fields its verdicts depend on.  The tier-2
#: cache uses this to re-run only the families whose scoping actually
#: changed; ``exclude`` is global, so it lives in the base digest that
#: every family inherits.
FAMILY_FIELDS: Dict[str, Tuple[str, ...]] = {
    "A": ("ordering_sensitive", "float_sensitive"),
    "C": ("scheduler_modules", "pure_contracts"),
    "D": ("ordering_sensitive", "float_sensitive", "algorithm_modules"),
    "E": ("trial_modules", "mutation_commits", "mutation_protected"),
    "M": ("mutation_protected",),
    "P": ("pipe_modules", "pure_contracts"),
}


@dataclass(frozen=True)
class PureContract:
    """One parsed ``pure-contracts`` entry."""

    qname: str
    scratch_params: Tuple[str, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "PureContract":
        spec = spec.strip()
        if spec.endswith(")") and "(" in spec:
            qname, _, params = spec[:-1].partition("(")
            scratch = tuple(
                p.strip() for p in params.split(",") if p.strip()
            )
            return cls(qname=qname.strip(), scratch_params=scratch)
        return cls(qname=spec)


@dataclass(frozen=True)
class LintConfig:
    """Resolved rule scopes (path prefixes relative to the repo root)."""

    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    ordering_sensitive: Tuple[str, ...] = DEFAULT_ORDERING_SENSITIVE
    float_sensitive: Tuple[str, ...] = DEFAULT_FLOAT_SENSITIVE
    algorithm_modules: Tuple[str, ...] = DEFAULT_ALGORITHM_MODULES
    scheduler_modules: Tuple[str, ...] = DEFAULT_SCHEDULER_MODULES
    pure_contracts: Tuple[str, ...] = DEFAULT_PURE_CONTRACTS
    mutation_protected: Tuple[str, ...] = DEFAULT_MUTATION_PROTECTED
    trial_modules: Tuple[str, ...] = DEFAULT_TRIAL_MODULES
    mutation_commits: Tuple[str, ...] = DEFAULT_MUTATION_COMMITS
    pipe_modules: Tuple[str, ...] = DEFAULT_PIPE_MODULES

    @staticmethod
    def in_scope(rel_path: str, prefixes: Tuple[str, ...]) -> bool:
        """True when ``rel_path`` falls under any scope prefix."""
        return any(rel_path.startswith(prefix) for prefix in prefixes)

    def contracts(self) -> Tuple[PureContract, ...]:
        """Parsed C002 purity contracts."""
        return tuple(PureContract.parse(spec) for spec in self.pure_contracts)

    def _hash_fields(self, names: Tuple[str, ...]) -> str:
        import hashlib

        payload = "\x1e".join(
            f"{name}={'|'.join(getattr(self, name))}" for name in names
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def base_digest(self) -> str:
        """Digest of the config every rule family depends on."""
        return self._hash_fields(("exclude",))

    def family_digest(self, family: str) -> str:
        """Digest of the fields one rule family's verdicts depend on.

        Unknown families (future rules whose code letter has no entry
        in :data:`FAMILY_FIELDS`) conservatively hash the whole config.
        """
        fields = FAMILY_FIELDS.get(family)
        if fields is None:
            return self.digest()
        return self._hash_fields(fields)

    def family_digests(self) -> Dict[str, str]:
        return {
            family: self.family_digest(family) for family in FAMILY_FIELDS
        }

    def digest(self) -> str:
        """Stable content hash of the configuration (cache key part)."""
        return self._hash_fields(
            (
                "exclude", "ordering_sensitive", "float_sensitive",
                "algorithm_modules", "scheduler_modules",
                "pure_contracts", "mutation_protected",
                "trial_modules", "mutation_commits", "pipe_modules",
            )
        )


def _load_toml(path: Path) -> Optional[Dict[str, Any]]:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - version-dependent
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def load_config(root: Path) -> LintConfig:
    """Build the config from ``<root>/pyproject.toml`` (or defaults)."""
    data = _load_toml(root / "pyproject.toml")
    if data is None:
        return LintConfig()
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return LintConfig()

    def read(key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = section.get(key)
        if isinstance(value, list) and all(isinstance(v, str) for v in value):
            return tuple(value)
        return default

    return LintConfig(
        exclude=read("exclude", DEFAULT_EXCLUDE),
        ordering_sensitive=read("ordering-sensitive", DEFAULT_ORDERING_SENSITIVE),
        float_sensitive=read("float-sensitive", DEFAULT_FLOAT_SENSITIVE),
        algorithm_modules=read("algorithm-modules", DEFAULT_ALGORITHM_MODULES),
        scheduler_modules=read("scheduler-modules", DEFAULT_SCHEDULER_MODULES),
        pure_contracts=read("pure-contracts", DEFAULT_PURE_CONTRACTS),
        mutation_protected=read(
            "mutation-protected", DEFAULT_MUTATION_PROTECTED
        ),
        trial_modules=read("trial-modules", DEFAULT_TRIAL_MODULES),
        mutation_commits=read("mutation-commits", DEFAULT_MUTATION_COMMITS),
        pipe_modules=read("pipe-modules", DEFAULT_PIPE_MODULES),
    )
