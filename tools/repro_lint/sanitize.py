"""Runtime determinism sanitizer: ``repro-lint sanitize``.

The static rules (D/C/M/A/E/P series) prove ordering discipline on the
source text; this module checks the *running program*.  It legalizes a
small fixed corpus of synthetic designs in subprocesses — once
unperturbed as the baseline, then once per (seed, perturbation) pair —
and fails when any run's placement digest or trace structure hash
diverges from the baseline.

Perturbation matrix (each runs in its own interpreter so the poison is
in place before ``repro`` imports):

* ``hashseed``  — randomized ``PYTHONHASHSEED``: flushes out any code
  path whose result leaks ``str``/``bytes`` hash iteration order.
* ``shuffle``   — ``builtins.set``/``frozenset`` are replaced with
  subclasses whose iteration order is deterministically shuffled by the
  run's salt.  Catches ``set(...)``-constructed sets iterated without
  ``sorted()``.  (Set *literals* use the C-level type directly and are
  not shimmed — the static D-series covers those.)
* ``tripwire``  — ``np.sort``/``np.argsort`` default to ``heapsort``
  (unstable) when the caller omits ``kind=``; any sort site that relies
  on the default being stable diverges.  A canary (tie-heavy argsort)
  must visibly fire or the run is an internal error — the tripwire
  cannot silently rot.  ``ndarray.sort`` is a C method slot and cannot
  be patched; A001 covers method-call sites statically.
* ``crash``     — ``repro.core.parallel.worker_main`` is replaced with
  a stub that drops its pipe immediately, so every worker retires and
  the scheduler must take its serial fallback; the fallback is required
  to be bit-identical.

Exit codes: 0 all runs matched, 1 divergence, 2 internal error (a child
crashed, emitted garbage, or the tripwire canary failed to fire).

Everything heavyweight (numpy, repro) is imported inside functions:
the perturbation shims must be installed first, and plain lint runs
must not pay the import cost.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

PERTURBATIONS: Tuple[str, ...] = ("hashseed", "shuffle", "tripwire", "crash")

#: Python-level knob for the number of legalized cells per corpus case;
#: small enough that a full matrix run stays interactive.
_CORPUS_RECIPES: Tuple[Tuple[str, Dict[str, Any], Dict[str, Any]], ...] = (
    (
        "serial_fence",
        dict(name="sanitize-serial", cells_by_height={1: 90, 2: 8},
             density=0.55, seed=11, num_fences=1),
        dict(routability=False, scheduler_capacity=1),
    ),
    (
        "scheduler",
        dict(name="sanitize-sched", cells_by_height={1: 70, 2: 6},
             density=0.5, seed=13),
        dict(routability=False, scheduler_capacity=4),
    ),
    (
        "workers",
        dict(name="sanitize-workers", cells_by_height={1: 60},
             density=0.5, seed=17),
        dict(routability=False, scheduler_capacity=8, scheduler_workers=2),
    ),
)

CASE_NAMES: Tuple[str, ...] = tuple(name for name, _, _ in _CORPUS_RECIPES)


@dataclass
class CaseResult:
    """Hashes of one corpus case under one run."""

    placement: str
    trace: str


@dataclass
class ChildReport:
    """Parsed output of one sanitizer subprocess."""

    results: Dict[str, CaseResult]
    canary_fired: Optional[bool] = None
    error: Optional[str] = None


@dataclass
class MatrixRow:
    """One (seed, perturbation) comparison against the baseline."""

    seed: int
    perturbation: str
    matches: Dict[str, bool] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(self.matches.values())


# ---------------------------------------------------------------------------
# corpus


def _build_design(spec_kwargs: Dict[str, Any]) -> Any:
    from repro.benchgen import SyntheticSpec, generate_design

    return generate_design(SyntheticSpec(**spec_kwargs))


def ensure_corpus(corpus_dir: Path, cases: List[str]) -> None:
    """Generate and pickle the corpus designs (parent side, unperturbed).

    Children *load* designs instead of generating them, so a
    perturbation can only ever reach the legalizer — divergence in the
    generator (which is not the system under test) cannot masquerade as
    a legalization bug.
    """
    corpus_dir.mkdir(parents=True, exist_ok=True)
    for name, spec_kwargs, _ in _CORPUS_RECIPES:
        if name not in cases:
            continue
        path = corpus_dir / f"{name}-{spec_kwargs['seed']}.pkl"
        if path.exists():
            continue
        design = _build_design(spec_kwargs)
        with path.open("wb") as handle:
            pickle.dump(design, handle)


def _load_design(
    name: str, spec_kwargs: Dict[str, Any], corpus_dir: Optional[Path]
) -> Any:
    if corpus_dir is not None:
        path = corpus_dir / f"{name}-{spec_kwargs['seed']}.pkl"
        if path.exists():
            with path.open("rb") as handle:
                return pickle.load(handle)
    return _build_design(spec_kwargs)


def run_corpus(
    cases: Optional[List[str]] = None,
    corpus_dir: Optional[Path] = None,
) -> Dict[str, CaseResult]:
    """Legalize every selected corpus case; placement + trace hashes."""
    from repro.core.mgl import MGLegalizer
    from repro.core.params import LegalizerParams
    from repro.obs.manifest import placement_digest
    from repro.obs.tracer import SpanTracer

    results: Dict[str, CaseResult] = {}
    for name, spec_kwargs, params_kwargs in _CORPUS_RECIPES:
        if cases is not None and name not in cases:
            continue
        design = _load_design(name, spec_kwargs, corpus_dir)
        tracer = SpanTracer()
        legalizer = MGLegalizer(
            design, LegalizerParams(**params_kwargs), tracer=tracer
        )
        placement = legalizer.run()
        results[name] = CaseResult(
            placement=placement_digest(placement),
            trace=tracer.structure_hash(),
        )
    return results


# ---------------------------------------------------------------------------
# perturbations (child side)


def _install_shuffled_sets(salt: int) -> None:
    import builtins
    import random

    base_set = builtins.set
    base_frozenset = builtins.frozenset

    def _shuffled(items: List[Any]) -> List[Any]:
        random.Random((salt << 16) ^ len(items)).shuffle(items)
        return items

    class ShuffledSet(base_set):  # type: ignore[valid-type, misc]
        def __iter__(self) -> Any:
            return iter(_shuffled(list(base_set.__iter__(self))))

    class ShuffledFrozenSet(base_frozenset):  # type: ignore[valid-type, misc]
        def __iter__(self) -> Any:
            return iter(_shuffled(list(base_frozenset.__iter__(self))))

    builtins.set = ShuffledSet  # type: ignore[assignment]
    builtins.frozenset = ShuffledFrozenSet  # type: ignore[assignment]


#: Times the tripwire rewrote an unpinned ``kind=`` to heapsort; the
#: canary reads it to prove the wrapper is actually on the call path.
_TRIPWIRE_INJECTIONS = {"count": 0}


def _install_sort_tripwire() -> None:
    import numpy as np

    real_sort = np.sort
    real_argsort = np.argsort

    def sort(a: Any, *args: Any, **kwargs: Any) -> Any:
        # np.sort(a, axis=-1, kind=None, ...): kind is the 3rd
        # positional parameter, so len(args) >= 2 means it was given.
        if "kind" not in kwargs and len(args) < 2:
            kwargs["kind"] = "heapsort"
            _TRIPWIRE_INJECTIONS["count"] += 1
        return real_sort(a, *args, **kwargs)

    def argsort(a: Any, *args: Any, **kwargs: Any) -> Any:
        if "kind" not in kwargs and len(args) < 2:
            kwargs["kind"] = "heapsort"
            _TRIPWIRE_INJECTIONS["count"] += 1
        return real_argsort(a, *args, **kwargs)

    np.sort = sort  # type: ignore[assignment]
    np.argsort = argsort  # type: ignore[assignment]


def tripwire_canary() -> bool:
    """True when the unstable-sort tripwire is visibly active.

    Two conditions, both required: an unpinned argsort must route
    through the wrapper (the injection counter moves — the corpus
    itself is A001-clean, so the canary supplies the unpinned call),
    and the injected heapsort must visibly reorder ties relative to
    the stable kind.  When either fails the tripwire run proves
    nothing, and the sanitizer reports an internal error instead of a
    green matrix.
    """
    import numpy as np

    before = _TRIPWIRE_INJECTIONS["count"]
    keys = (np.arange(64) % 4).astype(float)
    default = np.argsort(keys)
    stable = np.argsort(keys, kind="stable")
    routed = _TRIPWIRE_INJECTIONS["count"] > before
    reordered = not bool(np.array_equal(default, stable))
    return routed and reordered


def _crashing_worker(conn: Any) -> None:
    """Stand-in for ``worker_main`` that dies before the handshake."""
    conn.close()


def _install_worker_crash() -> None:
    from repro.core import parallel

    parallel.worker_main = _crashing_worker  # type: ignore[assignment]


def install_perturbation(kind: str, salt: int) -> None:
    if kind in ("none", "hashseed"):
        return  # hashseed acts through the environment, pre-interpreter
    if kind == "shuffle":
        _install_shuffled_sets(salt)
    elif kind == "tripwire":
        _install_sort_tripwire()
    elif kind == "crash":
        _install_worker_crash()
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown perturbation: {kind}")


# ---------------------------------------------------------------------------
# child protocol


def _child_main(args: argparse.Namespace) -> int:
    install_perturbation(args.perturb, args.salt)
    corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None
    results = run_corpus(cases=args.cases or None, corpus_dir=corpus_dir)
    payload: Dict[str, Any] = {
        "results": {
            name: {"placement": res.placement, "trace": res.trace}
            for name, res in sorted(results.items())
        },
        "canary_fired": (
            tripwire_canary() if args.perturb == "tripwire" else None
        ),
    }
    print(json.dumps(payload, sort_keys=True))
    return 0


def _spawn_child(
    root: Path,
    perturb: str,
    salt: int,
    hashseed: str,
    cases: List[str],
    corpus_dir: Path,
) -> ChildReport:
    cmd = [
        sys.executable, "-m", "tools.repro_lint", "sanitize",
        "--child", "--perturb", perturb, "--salt", str(salt),
        "--corpus-dir", str(corpus_dir), "--cases", *cases,
    ]
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = root / "src"
    extra = f"{root}{os.pathsep}{src}"
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{extra}{os.pathsep}{existing}" if existing else extra
    proc = subprocess.run(
        cmd, cwd=root, env=env, capture_output=True, text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-3:]
        return ChildReport(
            results={},
            error=f"child exited {proc.returncode}: {' | '.join(tail)}",
        )
    lines = [ln for ln in proc.stdout.splitlines() if ln.strip()]
    try:
        data = json.loads(lines[-1])
        results = {
            str(name): CaseResult(
                placement=str(res["placement"]), trace=str(res["trace"])
            )
            for name, res in data["results"].items()
        }
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        return ChildReport(
            results={}, error=f"unparseable child output: {exc}"
        )
    return ChildReport(results=results, canary_fired=data.get("canary_fired"))


# ---------------------------------------------------------------------------
# parent orchestration


def _hashseed_for(seed: int) -> str:
    # Any deterministic spread of distinct seeds works; 7919 keeps the
    # values visibly unrelated without reaching for a banned RNG.
    return str((seed * 7919 + 104729) % (2 ** 32))


def _compare(
    baseline: Dict[str, CaseResult], report: ChildReport, row: MatrixRow
) -> None:
    if report.error is not None:
        row.error = report.error
        return
    for name, base in sorted(baseline.items()):
        got = report.results.get(name)
        row.matches[name] = (
            got is not None
            and got.placement == base.placement
            and got.trace == base.trace
        )


def _render_summary(
    baseline: Dict[str, CaseResult], rows: List[MatrixRow]
) -> str:
    lines = ["## Determinism sanitizer", ""]
    lines.append("Baseline (unperturbed, `PYTHONHASHSEED=0`):")
    lines.append("")
    lines.append("| case | placement | trace |")
    lines.append("| --- | --- | --- |")
    for name, res in sorted(baseline.items()):
        lines.append(f"| {name} | `{res.placement}` | `{res.trace[:16]}` |")
    lines.append("")
    lines.append("| seed | perturbation | " +
                 " | ".join(sorted(baseline)) + " | status |")
    lines.append("| --- | --- |" + " --- |" * (len(baseline) + 1))
    for row in rows:
        if row.error is not None:
            cells = ["error"] * len(baseline)
            status = f"INTERNAL: {row.error}"
        else:
            cells = [
                "match" if row.matches.get(name) else "**DIVERGED**"
                for name in sorted(baseline)
            ]
            status = "ok" if row.ok else "**FAIL**"
        lines.append(
            f"| {row.seed} | {row.perturbation} | " +
            " | ".join(cells) + f" | {status} |"
        )
    lines.append("")
    return "\n".join(lines)


def sanitize_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint sanitize",
        description=(
            "Re-run a fixed legalization corpus under determinism "
            "perturbations and fail on placement/trace divergence"
        ),
    )
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="perturbation salts to try (default: 3)")
    parser.add_argument("--cases", nargs="*", choices=CASE_NAMES,
                        default=None,
                        help="corpus subset (default: all cases)")
    parser.add_argument("--perturbations", nargs="*",
                        choices=PERTURBATIONS, default=None,
                        help="perturbation subset (default: all)")
    parser.add_argument("--corpus-dir", metavar="DIR",
                        help="cache generated corpus designs here "
                             "(default: a throwaway temp dir)")
    parser.add_argument("--summary", metavar="FILE",
                        help="write a markdown matrix summary to FILE")
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--perturb", choices=("none",) + PERTURBATIONS,
                        default="none", help=argparse.SUPPRESS)
    parser.add_argument("--salt", type=int, default=0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child_main(args)

    root = Path(args.root).resolve()
    cases = list(args.cases) if args.cases else list(CASE_NAMES)
    perturbations = (
        list(args.perturbations) if args.perturbations
        else list(PERTURBATIONS)
    )
    if args.seeds < 1:
        print("repro-lint sanitize: --seeds must be >= 1", file=sys.stderr)
        return 2

    tmp: Optional[tempfile.TemporaryDirectory[str]] = None
    if args.corpus_dir:
        corpus_dir = Path(args.corpus_dir)
        if not corpus_dir.is_absolute():
            corpus_dir = root / corpus_dir
    else:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sanitize-")
        corpus_dir = Path(tmp.name)
    try:
        try:
            ensure_corpus(corpus_dir, cases)
        except Exception as exc:  # noqa: BLE001 - corpus gen is setup
            print(
                f"repro-lint sanitize: corpus generation failed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return 2

        base_report = _spawn_child(root, "none", 0, "0", cases, corpus_dir)
        if base_report.error is not None or not base_report.results:
            print(
                f"repro-lint sanitize: baseline run failed: "
                f"{base_report.error or 'no results'}",
                file=sys.stderr,
            )
            return 2
        baseline = base_report.results

        rows: List[MatrixRow] = []
        internal = False
        for seed in range(1, args.seeds + 1):
            for perturb in perturbations:
                hashseed = (
                    _hashseed_for(seed) if perturb == "hashseed" else "0"
                )
                report = _spawn_child(
                    root, perturb, seed, hashseed, cases, corpus_dir
                )
                row = MatrixRow(seed=seed, perturbation=perturb)
                _compare(baseline, report, row)
                if perturb == "tripwire" and report.error is None \
                        and report.canary_fired is not True:
                    row.error = "tripwire canary did not fire"
                rows.append(row)
                if row.error is not None:
                    internal = True

        summary = _render_summary(baseline, rows)
        if args.summary:
            out = Path(args.summary)
            if not out.is_absolute():
                out = root / out
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(summary, encoding="utf-8")
        else:
            print(summary)

        diverged = [r for r in rows if r.error is None and not r.ok]
        failed_rows = [r for r in rows if r.error is not None]
        total = len(rows)
        if internal:
            for row in failed_rows:
                print(
                    f"repro-lint sanitize: internal error "
                    f"(seed={row.seed}, {row.perturbation}): {row.error}",
                    file=sys.stderr,
                )
            return 2
        if diverged:
            for row in diverged:
                bad = sorted(
                    name for name, ok in row.matches.items() if not ok
                )
                print(
                    f"repro-lint sanitize: divergence under "
                    f"{row.perturbation} (seed={row.seed}): "
                    f"{', '.join(bad)}",
                    file=sys.stderr,
                )
            return 1
        print(
            f"repro-lint sanitize: {total} perturbed run(s) matched the "
            f"baseline across {len(cases)} case(s)",
            file=sys.stderr,
        )
        return 0
    finally:
        if tmp is not None:
            tmp.cleanup()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(sanitize_main())
