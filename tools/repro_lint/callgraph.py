"""File-level call/dependency graph over the scanned project.

Edges are drawn from (a) import statements and (b) calls/references the
symbol table can resolve to a definition in another scanned file.  The
transitive closure answers "whose analysis results can a change to file
X affect?" — which is exactly what the incremental lint cache needs to
invalidate cross-module findings (a C002 purity walk rooted in
``mgl.py`` must be redone when ``refine.py`` changes, even though
``mgl.py`` itself did not).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from tools.repro_lint.symbols import SymbolTable, dotted_name


class CallGraph:
    """Forward dependency edges between repo-relative file paths."""

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}
        self._closure: Dict[str, FrozenSet[str]] = {}

    @classmethod
    def build(
        cls,
        symbols: SymbolTable,
        files: Sequence[Tuple[str, ast.Module]],
    ) -> "CallGraph":
        graph = cls()
        module_paths = {
            mod.name: mod.rel_path for mod in symbols.modules.values()
        }
        for rel_path, tree in files:
            deps = graph.edges.setdefault(rel_path, set())
            mod = symbols.by_path.get(rel_path)
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        graph._add_module_dep(
                            deps, module_paths, alias.name, rel_path
                        )
                elif isinstance(node, ast.ImportFrom):
                    if mod is None:
                        continue
                    base = SymbolTable._import_from_base(
                        mod.name, rel_path, node
                    )
                    if base is None:
                        continue
                    graph._add_module_dep(deps, module_paths, base, rel_path)
                    for alias in node.names:
                        if alias.name != "*":
                            graph._add_module_dep(
                                deps, module_paths,
                                f"{base}.{alias.name}" if base else alias.name,
                                rel_path,
                            )
                elif isinstance(node, ast.Call) and mod is not None:
                    dotted = dotted_name(node.func)
                    if dotted is None:
                        continue
                    resolved = symbols.resolve(mod, dotted)
                    if resolved is None:
                        continue
                    target = symbols.lookup_function(resolved)
                    target_path = (
                        target.rel_path if target is not None
                        else getattr(
                            symbols.lookup_class(resolved), "rel_path", None
                        )
                    )
                    if target_path is not None and target_path != rel_path:
                        deps.add(target_path)
        return graph

    @staticmethod
    def _add_module_dep(
        deps: Set[str],
        module_paths: Dict[str, str],
        dotted: str,
        own_path: str,
    ) -> None:
        """Add an edge for ``dotted`` and each of its package prefixes."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            path = module_paths.get(".".join(parts[:cut]))
            if path is not None and path != own_path:
                deps.add(path)
                return

    def reachable_files(self, rel_path: str) -> FrozenSet[str]:
        """``rel_path`` plus every file transitively depended on."""
        cached = self._closure.get(rel_path)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack: List[str] = [rel_path]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        result = frozenset(seen)
        self._closure[rel_path] = result
        return result
