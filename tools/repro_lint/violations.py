"""Violation record shared by all repro-lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location.

    Attributes:
        path: path of the offending file, as given to the engine
            (repo-relative POSIX form).
        line: 1-based line number.
        col: 0-based column offset.
        rule: rule code, e.g. ``"D001"``.
        message: human-readable description of the hazard.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Standard ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
