"""repro-lint: AST-based determinism & invariant analyzer.

Checks the reproduction's standing invariants (seeded randomness,
pinned iteration order, integer site math, clock-free algorithms, pure
thread-pool evaluation) without running the code.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and rationale.
"""

from tools.repro_lint.engine import run_lint
from tools.repro_lint.violations import Violation

__all__ = ["run_lint", "Violation"]
