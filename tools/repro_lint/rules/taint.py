"""Taint rule D005: nondeterministic values must not order anything.

``id()`` and ``hash()`` vary across runs (CPython address reuse, string
hash salting), and ``os.environ`` varies across machines.  Any of them
flowing into a *sort key*, a *heap push*, or a ``min``/``max`` key is a
run-to-run tie-break nondeterminism bug of exactly the kind the §3.5
determinism argument forbids — and the kind D001/D002 cannot see,
because the sort itself looks keyed and explicit.

Per function, this rule tracks a name-level taint environment: a name
becomes tainted when bound to an expression containing ``id(...)``,
``hash(...)``, ``os.environ[...]``/``os.environ.get(...)``/
``os.getenv(...)``, or an already-tainted name.  Sinks checked:

* ``sorted(..., key=K)`` / ``<x>.sort(key=K)`` / ``min``/``max``
  ``key=K`` — flagged when ``K`` (including a lambda body) is tainted
  or is the bare builtin ``id``/``hash``;
* ``heapq.heappush(heap, item)`` / ``heappq.heappushpop`` — flagged
  when the pushed item is tainted (heap order *is* the ordering).

The analysis is intraprocedural and ordered (a rebind to a clean value
clears the taint), which keeps it precise enough to run suppression-free
over the whole tree.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Union

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.rules import Rule
from tools.repro_lint.symbols import dotted_name
from tools.repro_lint.violations import Violation

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Builtins whose return value differs run to run.
_SOURCE_BUILTINS = {"id", "hash"}

#: ``key=`` sinks: builtin call name -> human label.
_KEYED_SINKS = {"sorted": "sorted()", "min": "min()", "max": "max()"}

#: ``heapq`` functions whose pushed item (arg index 1) orders the heap.
_HEAP_SINKS = {"heappush", "heappushpop"}


class NondeterminismTaintRule(Rule):
    code = "D005"
    summary = "nondeterministic value flows into an ordering decision"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        checker = _TaintChecker(source, self.code)
        checker.scan_module()
        return checker.violations


class _TaintChecker:
    def __init__(self, source: SourceFile, code: str) -> None:
        self.source = source
        self.code = code
        self.violations: List[Violation] = []

    def scan_module(self) -> None:
        # Module level runs once but its ordering still matters (e.g.
        # module-level registries); treat the top level as one function.
        self._scan_block(self.source.tree.body, {})
        for node in ast.walk(self.source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_block(node.body, {})

    # ------------------------------------------------------------------

    def _scan_block(
        self, body: Iterable[ast.stmt], taint: Dict[str, str]
    ) -> None:
        for stmt in body:
            self._scan_stmt(stmt, taint)

    def _scan_stmt(self, stmt: ast.stmt, taint: Dict[str, str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # scanned separately with a fresh environment
        if isinstance(stmt, ast.ClassDef):
            self._scan_block(stmt.body, {})
            return

        # Compound statements: check sinks only in the header expression
        # (body statements are recursed into with the evolving taint env,
        # so walking the whole subtree here would both double-report and
        # race ahead of the bindings the body makes).
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_sinks_in(stmt.iter, taint)
            self._bind(stmt.target, self._expr_taint(stmt.iter, taint), taint)
            self._scan_block(stmt.body, taint)
            self._scan_block(stmt.orelse, taint)
            return
        if isinstance(stmt, ast.While):
            self._check_sinks_in(stmt.test, taint)
            self._scan_block(stmt.body, taint)
            self._scan_block(stmt.orelse, taint)
            return
        if isinstance(stmt, ast.If):
            # Branches may or may not run: taint from either survives.
            self._check_sinks_in(stmt.test, taint)
            self._scan_block(stmt.body, taint)
            self._scan_block(stmt.orelse, taint)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_sinks_in(item.context_expr, taint)
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self._expr_taint(item.context_expr, taint),
                        taint,
                    )
            self._scan_block(stmt.body, taint)
            return
        if isinstance(stmt, ast.Try):
            self._scan_block(stmt.body, taint)
            for handler in stmt.handlers:
                self._scan_block(handler.body, taint)
            self._scan_block(stmt.orelse, taint)
            self._scan_block(stmt.finalbody, taint)
            return

        # Simple statement: sinks anywhere in it, evaluated before binds.
        self._check_sinks_in(stmt, taint)
        if isinstance(stmt, ast.Assign):
            label = self._expr_taint(stmt.value, taint)
            for target in stmt.targets:
                self._bind(target, label, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._expr_taint(stmt.value, taint), taint)
        elif isinstance(stmt, ast.AugAssign):
            label = self._expr_taint(stmt.value, taint)
            if label is not None:
                self._bind(stmt.target, label, taint)

    def _check_sinks_in(self, node: ast.AST, taint: Dict[str, str]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_sink(sub, taint)

    def _bind(
        self, target: ast.expr, label: Optional[str], taint: Dict[str, str]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, label, taint)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, label, taint)
            return
        if not isinstance(target, ast.Name):
            return
        if label is not None:
            taint[target.id] = label
        else:
            taint.pop(target.id, None)

    # ------------------------------------------------------------------

    def _expr_taint(
        self, expr: Optional[ast.expr], taint: Dict[str, str]
    ) -> Optional[str]:
        """Source label when ``expr`` carries nondeterministic taint."""
        if expr is None:
            return None
        for node in ast.walk(expr):
            label = self._atom_taint(node, taint)
            if label is not None:
                return label
        return None

    def _atom_taint(
        self, node: ast.AST, taint: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in taint:
            return taint[node.id]
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _SOURCE_BUILTINS
            ):
                return f"{node.func.id}()"
            dotted = dotted_name(node.func)
            if dotted in ("os.getenv", "os.environ.get"):
                return dotted + "()"
        if isinstance(node, ast.Subscript):
            if dotted_name(node.value) == "os.environ":
                return "os.environ[...]"
        if isinstance(node, ast.Attribute):
            if dotted_name(node) == "os.environ":
                return "os.environ"
        return None

    # ------------------------------------------------------------------

    def _check_sink(self, call: ast.Call, taint: Dict[str, str]) -> None:
        sink = self._sink_label(call)
        if sink is None:
            return
        if sink == "heap push":
            if len(call.args) < 2:
                return
            label = self._expr_taint(call.args[1], taint)
            if label is not None:
                self._report(
                    call,
                    f"nondeterministic value (from {label}) is pushed onto "
                    f"a heap; heap order decides processing order",
                )
            return
        for kw in call.keywords:
            if kw.arg != "key":
                continue
            label = self._key_taint(kw.value, taint)
            if label is not None:
                self._report(
                    call,
                    f"nondeterministic value (from {label}) flows into the "
                    f"{sink} key; ordering must not depend on it",
                )

    def _sink_label(self, call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name) and call.func.id in _KEYED_SINKS:
            return _KEYED_SINKS[call.func.id]
        if isinstance(call.func, ast.Attribute):
            if call.func.attr == "sort":
                return ".sort()"
            dotted = dotted_name(call.func)
            if dotted is not None:
                parts = dotted.split(".")
                if parts[-1] in _HEAP_SINKS and (
                    len(parts) == 1 or parts[0] == "heapq"
                ):
                    return "heap push"
        elif isinstance(call.func, ast.Name) and call.func.id in _HEAP_SINKS:
            return "heap push"
        return None

    def _key_taint(
        self, key: ast.expr, taint: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(key, ast.Name):
            if key.id in _SOURCE_BUILTINS:
                return f"builtin '{key.id}'"
            return taint.get(key.id)
        if isinstance(key, ast.Lambda):
            # Lambda parameters shadow outer taint inside the body.
            inner = dict(taint)
            for arg in (
                list(key.args.posonlyargs) + list(key.args.args)
                + list(key.args.kwonlyargs)
            ):
                inner.pop(arg.arg, None)
            return self._expr_taint(key.body, inner)
        return self._expr_taint(key, taint)

    def _report(self, node: ast.expr, message: str) -> None:
        self.violations.append(Violation(
            self.source.rel_path, node.lineno, node.col_offset,
            self.code, message,
        ))
