"""Array-determinism rules A001-A003 (flow-sensitive).

The PR 6 structure-of-arrays core moved the insertion hot path onto
NumPy, which introduced three silent ways to break the bit-identity
contract (docs/STATIC_ANALYSIS.md):

* **A001** — order-unstable array sorts in ordering-sensitive modules:
  ``np.argsort``/``np.sort`` default to an *unstable* introsort, so two
  equal keys may swap between runs or platforms; every call must pin
  ``kind="stable"``.  ``np.searchsorted`` must pin an explicit
  ``side=`` — the default ``"left"`` is fine when written down, but an
  implicit side is an unreviewable tie-break.  ``.sort()`` method calls
  are flagged only when the receiver is *known to be an ndarray* via
  the dataflow engine; Python ``list.sort`` is stable by definition.
* **A002** — float32/float64 dtype mixing in float-sensitive modules:
  mixed-precision arithmetic rounds at whichever operand promotes,
  which makes results depend on array provenance instead of values.
* **A003** — axis/shape-dependent float reductions (``sum(axis=...)``,
  ``dot``, ``einsum``, ``cumsum`` over float data) flowing into
  candidate-selection keys (``sorted``/``min``/``max`` keys, ``heapq``
  pushes, ``np.argmin``/``argmax``/``argsort``): float summation order
  follows the memory layout, so a reshape changes the fold order and
  flips ties in the selection.  Integer/bool reductions are exact and
  pass.

All three share one forward dataflow per function: abstract values are
small tag sets (``ndarray``/``list``/``f32``/``f64``/``intarr``/
``boolarr``/``reduction``) joined by union at control-flow merges.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from tools.repro_lint.config import LintConfig
from tools.repro_lint.dataflow import analyze_forward, iter_function_defs
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.rules import Rule
from tools.repro_lint.rules.determinism import ImportAliases
from tools.repro_lint.violations import Violation

Tags = FrozenSet[str]

_EMPTY: Tags = frozenset()
_NDARRAY = frozenset({"ndarray"})
_LIST = frozenset({"list"})

#: NumPy constructors returning arrays; dtype defaults to float64 when
#: no integer-producing signature applies.
_ARRAY_MAKERS = {
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "zeros_like", "ones_like", "empty_like", "full_like",
    "linspace", "concatenate", "stack", "hstack", "vstack", "where",
}
_INT_MAKERS = {"arange", "argsort", "lexsort", "searchsorted", "argmin",
               "argmax", "nonzero", "flatnonzero"}
_FLOAT32_NAMES = {"float32", "single"}
_FLOAT64_NAMES = {"float64", "double", "float_"}
_INT_DTYPE_NAMES = {"int8", "int16", "int32", "int64", "intp", "uint8",
                    "uint16", "uint32", "uint64", "bool_", "int_"}

#: Reductions whose float result depends on traversal order.  Those
#: taking ``axis=`` are order-dependent only when an axis (or a
#: multi-dim input) is in play; ``dot``/``einsum``/``matmul``/``cumsum``
#: always fold in layout order.
_AXIS_REDUCTIONS = {"sum", "mean", "average", "prod", "nansum", "nanmean"}
_ALWAYS_REDUCTIONS = {"dot", "matmul", "einsum", "cumsum", "trace", "vdot"}

_SELECTION_FUNCS = {"argmin", "argmax", "argsort"}


def _dtype_tag(expr: Optional[ast.expr], aliases: ImportAliases) -> Optional[str]:
    """Tag for a ``dtype=`` argument expression, if recognizable."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        name = expr.value
    else:
        target = aliases.call_target(expr) if isinstance(
            expr, (ast.Attribute, ast.Name)
        ) else None
        if target is not None and target[0].split(".")[0] == "numpy":
            name = target[1]
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        elif isinstance(expr, ast.Name):
            name = expr.id
        else:
            return None
    if name in _FLOAT32_NAMES:
        return "f32"
    if name in _FLOAT64_NAMES:
        return "f64"
    if name in _INT_DTYPE_NAMES or name in ("int", "bool"):
        return "intarr"
    return None


class _ArrayFlow:
    """Per-file tag dataflow shared by the three A rules."""

    def __init__(self, source: SourceFile, config: LintConfig):
        self.source = source
        self.config = config
        self.aliases = ImportAliases(source.tree)
        self.a001: List[Violation] = []
        self.a002: List[Violation] = []
        self.a003: List[Violation] = []
        self._seen: Set[Tuple[int, int, str]] = set()

    # -- driver --------------------------------------------------------
    def run(self) -> None:
        module_fn = ast.Module(body=self.source.tree.body, type_ignores=[])
        self._analyze_function(module_fn)
        for fn in iter_function_defs(self.source.tree):
            self._analyze_function(fn)

    def _analyze_function(self, fn: ast.AST) -> None:
        def transfer(stmt: ast.stmt, env: Dict[str, object]) -> Dict[str, object]:
            return self._transfer(stmt, env)

        def join(a: Optional[object], b: Optional[object]) -> Optional[object]:
            left: Tags = a if isinstance(a, frozenset) else _EMPTY
            right: Tags = b if isinstance(b, frozenset) else _EMPTY
            return left | right

        analyze_forward(fn, initial={}, transfer=transfer, join_value=join)

    # -- transfer ------------------------------------------------------
    def _transfer(
        self, stmt: ast.stmt, env: Dict[str, object]
    ) -> Dict[str, object]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return env  # nested scopes analyzed separately
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, tags, env)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tags = self._eval(stmt.value, env)
            self._bind(stmt.target, tags, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value, env) | self._eval(stmt.target, env)
            self._bind(stmt.target, tags, env)
            return env
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self._eval(stmt.iter, env)
            # Iterating an array yields elements carrying its dtype.
            element = iter_tags - {"ndarray", "list"}
            self._bind(stmt.target, element, env)
            return env
        # Expression statements and everything else: evaluate for
        # side-effect checks (sinks, .sort() receivers).
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._eval_call(node, env)
            elif isinstance(node, (ast.BinOp, ast.Compare)):
                self._eval(node, env)
        return env

    def _bind(self, target: ast.expr, tags: Tags, env: Dict[str, object]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, _EMPTY, env)

    # -- expression evaluation -----------------------------------------
    def _eval(self, expr: ast.expr, env: Dict[str, object]) -> Tags:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, float):
                return frozenset({"f64"})
            return _EMPTY
        if isinstance(expr, ast.Name):
            value = env.get(expr.id)
            return value if isinstance(value, frozenset) else _EMPTY
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            self._check_dtype_mix(expr, left, right)
            return left | right
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env)
        if isinstance(expr, ast.Compare):
            operands = [self._eval(expr.left, env)] + [
                self._eval(comp, env) for comp in expr.comparators
            ]
            for first, second in zip(operands, operands[1:]):
                self._check_dtype_mix(expr, first, second)
            if any("ndarray" in tags for tags in operands):
                return frozenset({"ndarray", "boolarr"})
            return _EMPTY
        if isinstance(expr, (ast.List, ast.ListComp)):
            return _LIST
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, env)
            # Slicing keeps the container kind; scalar indexing of an
            # array keeps its dtype facts but drops array-ness only for
            # plain index forms we cannot distinguish — keep all tags
            # (over-approximation in the safe direction).
            return base
        if isinstance(expr, ast.IfExp):
            return self._eval(expr.body, env) | self._eval(expr.orelse, env)
        if isinstance(expr, ast.Attribute):
            base = self._eval(expr.value, env)
            if expr.attr == "T" and "ndarray" in base:
                return base
            return _EMPTY
        return _EMPTY

    def _eval_call(self, call: ast.Call, env: Dict[str, object]) -> Tags:
        func = call.func
        target = self.aliases.call_target(func)
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        arg_tags = [self._eval(arg, env) for arg in call.args]

        if target is not None and target[0].split(".")[0] == "numpy":
            return self._eval_numpy_call(call, target[1], arg_tags, kwargs, env)

        if isinstance(func, ast.Name):
            if func.id in ("list", "sorted"):
                return _LIST
            if func.id == "float":
                return frozenset({"f64"})
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, env)
            return self._eval_method_call(call, func.attr, receiver, kwargs, env)
        return _EMPTY

    def _eval_numpy_call(
        self,
        call: ast.Call,
        attr: str,
        arg_tags: List[Tags],
        kwargs: Dict[str, ast.expr],
        env: Dict[str, object],
    ) -> Tags:
        dtype = _dtype_tag(kwargs.get("dtype"), self.aliases)
        if attr in ("sort", "argsort"):
            kind = kwargs.get("kind")
            stable = (
                isinstance(kind, ast.Constant)
                and kind.value in ("stable", "mergesort")
            )
            if not stable and self._ordering_scope():
                self._flag(
                    self.a001, call,
                    f"np.{attr} without kind=\"stable\": the default "
                    "introsort reorders equal keys nondeterministically "
                    "in an ordering-sensitive module",
                )
            self._check_selection_args(call, arg_tags)
            return frozenset({"ndarray", "intarr" if attr == "argsort"
                              else "f64"})
        if attr == "searchsorted":
            if "side" not in kwargs and self._ordering_scope():
                self._flag(
                    self.a001, call,
                    "np.searchsorted without an explicit side=: pin the "
                    "tie-break side so boundary hits are reviewable",
                )
            return frozenset({"ndarray", "intarr"})
        if attr in _FLOAT32_NAMES:
            return frozenset({"f32"})
        if attr in _FLOAT64_NAMES:
            return frozenset({"f64"})
        if attr in _SELECTION_FUNCS:
            # Before _INT_MAKERS: argmin/argmax select *over* their
            # argument, so a reduction-tagged input matters here.
            self._check_selection_args(call, arg_tags)
            return frozenset({"ndarray", "intarr"})
        if attr in _INT_MAKERS:
            return frozenset({"ndarray", "intarr"})
        if attr in _ARRAY_MAKERS:
            if dtype is not None:
                return frozenset({"ndarray", dtype})
            inherited = _EMPTY
            for tags in arg_tags:
                inherited |= tags & {"f32", "intarr", "boolarr"}
            if inherited:
                return frozenset({"ndarray"}) | inherited
            return frozenset({"ndarray", "f64"})
        if attr in _AXIS_REDUCTIONS or attr in _ALWAYS_REDUCTIONS:
            source_tags = _EMPTY
            for tags in arg_tags:
                source_tags |= tags
            return self._reduction_result(
                attr, source_tags, "axis" in kwargs
            )
        return _EMPTY

    def _eval_method_call(
        self,
        call: ast.Call,
        attr: str,
        receiver: Tags,
        kwargs: Dict[str, ast.expr],
        env: Dict[str, object],
    ) -> Tags:
        if attr == "sort" and "ndarray" in receiver:
            kind = kwargs.get("kind")
            stable = (
                isinstance(kind, ast.Constant)
                and kind.value in ("stable", "mergesort")
            )
            if not stable and self._ordering_scope():
                self._flag(
                    self.a001, call,
                    "ndarray.sort() without kind=\"stable\": the default "
                    "introsort reorders equal keys nondeterministically "
                    "in an ordering-sensitive module",
                )
            return _EMPTY
        if attr == "astype":
            dtype = _dtype_tag(
                call.args[0] if call.args else kwargs.get("dtype"),
                self.aliases,
            )
            if dtype is not None:
                return frozenset({"ndarray", dtype}) | (
                    receiver & {"reduction"}
                )
            return receiver
        if attr == "tolist":
            return _LIST | (receiver & {"reduction", "f32", "f64"})
        if attr in _AXIS_REDUCTIONS or attr in _ALWAYS_REDUCTIONS:
            return self._reduction_result(attr, receiver, "axis" in kwargs)
        return _EMPTY

    def _check_selection_args(
        self, call: ast.Call, arg_tags: List[Tags]
    ) -> None:
        for tags in arg_tags:
            if "reduction" in tags:
                attr = call.func.attr if isinstance(
                    call.func, ast.Attribute
                ) else "argsort"
                self._flag(
                    self.a003, call,
                    f"np.{attr} selects over an axis/shape-dependent "
                    "float reduction: the fold order follows memory "
                    "layout, so ties here are layout-dependent",
                )

    def _reduction_result(
        self, attr: str, source: Tags, has_axis: bool
    ) -> Tags:
        exact = bool(source & {"intarr", "boolarr"}) and not (
            source & {"f32", "f64"}
        )
        if exact:
            return frozenset({"ndarray", "intarr"})
        order_dependent = has_axis or attr in _ALWAYS_REDUCTIONS
        tags = {"ndarray"} | (source & {"f32", "f64"} or {"f64"})
        if order_dependent:
            tags.add("reduction")
        return frozenset(tags)

    # -- checks --------------------------------------------------------
    def _check_dtype_mix(self, expr: ast.expr, left: Tags, right: Tags) -> None:
        if not self._float_scope():
            return
        mixed = ("f32" in left and "f32" not in right and "f64" in right) or (
            "f32" in right and "f32" not in left and "f64" in left
        )
        if mixed:
            self._flag(
                self.a002, expr,
                "float32/float64 mixed in arithmetic: the promotion "
                "rounds at whichever operand widens, making results "
                "depend on array provenance",
            )

    def check_selection_sinks(self) -> None:
        """Second pass: reduction-tainted names reaching selection keys.

        Runs D005-style sink detection, but keyed on the ``reduction``
        tag which only the flow analysis can assign.
        """
        module_fn = ast.Module(body=self.source.tree.body, type_ignores=[])
        for fn in [module_fn] + list(iter_function_defs(self.source.tree)):
            self._sink_pass(fn)

    def _sink_pass(self, fn: ast.AST) -> None:
        tainted: Set[str] = set()

        def transfer(stmt: ast.stmt, env: Dict[str, object]) -> Dict[str, object]:
            out = self._transfer(stmt, env)
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._check_sink_call(node, out, tainted)
            return out

        def join(a: Optional[object], b: Optional[object]) -> Optional[object]:
            left: Tags = a if isinstance(a, frozenset) else _EMPTY
            right: Tags = b if isinstance(b, frozenset) else _EMPTY
            return left | right

        analyze_forward(fn, initial={}, transfer=transfer, join_value=join)

    def _check_sink_call(
        self, call: ast.Call, env: Dict[str, object], tainted: Set[str]
    ) -> None:
        func = call.func
        target = self.aliases.call_target(func)
        # heapq.heappush(heap, item): item carries the ordering key.
        if target is not None and target[0] == "heapq" and target[1] in (
            "heappush", "heappushpop",
        ):
            if len(call.args) >= 2 and self._carries_reduction(
                call.args[1], env
            ):
                self._flag(
                    self.a003, call,
                    "heap push key derives from an axis/shape-dependent "
                    "float reduction: heap order becomes layout-dependent",
                )
            return
        key_kw = next(
            (kw.value for kw in call.keywords if kw.arg == "key"), None
        )
        is_key_sink = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if is_key_sink and key_kw is not None:
            if self._carries_reduction(key_kw, env):
                self._flag(
                    self.a003, call,
                    "selection key derives from an axis/shape-dependent "
                    "float reduction: ties flip with memory layout",
                )

    def _carries_reduction(
        self, expr: ast.expr, env: Dict[str, object]
    ) -> bool:
        if isinstance(expr, ast.Lambda):
            shadowed = {arg.arg for arg in expr.args.args}
            return any(
                isinstance(node, ast.Name)
                and node.id not in shadowed
                and "reduction" in self._name_tags(node.id, env)
                for node in ast.walk(expr.body)
            )
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and "reduction" in self._name_tags(
                node.id, env
            ):
                return True
            if isinstance(node, ast.Call):
                if "reduction" in self._eval(node, env):
                    return True
        return False

    def _name_tags(self, name: str, env: Dict[str, object]) -> Tags:
        value = env.get(name)
        return value if isinstance(value, frozenset) else _EMPTY

    # -- plumbing ------------------------------------------------------
    def _ordering_scope(self) -> bool:
        return self.config.in_scope(
            self.source.rel_path, self.config.ordering_sensitive
        )

    def _float_scope(self) -> bool:
        return self.config.in_scope(
            self.source.rel_path, self.config.float_sensitive
        )

    def _flag(
        self, sink: List[Violation], node: ast.AST, message: str
    ) -> None:
        code = {
            id(self.a001): "A001",
            id(self.a002): "A002",
            id(self.a003): "A003",
        }[id(sink)]
        key = (node.lineno, node.col_offset, code)
        if key in self._seen:
            return
        self._seen.add(key)
        sink.append(
            Violation(
                self.source.rel_path, node.lineno, node.col_offset,
                code, message,
            )
        )


def _analyze(source: SourceFile, config: LintConfig) -> _ArrayFlow:
    flow = _ArrayFlow(source, config)
    flow.run()
    flow.check_selection_sinks()
    return flow


class UnstableArraySortRule(Rule):
    code = "A001"
    summary = "array sort/search without a pinned stable kind or side"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not config.in_scope(source.rel_path, config.ordering_sensitive):
            return []
        return _analyze(source, config).a001


class MixedFloatDtypeRule(Rule):
    code = "A002"
    summary = "float32/float64 dtype mixing in geometry math"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not config.in_scope(source.rel_path, config.float_sensitive):
            return []
        return _analyze(source, config).a002


class ReductionOrderedKeyRule(Rule):
    code = "A003"
    summary = "axis-dependent float reduction feeding a selection key"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not config.in_scope(source.rel_path, config.ordering_sensitive):
            return []
        return _analyze(source, config).a003
