"""Exception-safety rule E001: trial mutations must be restorable.

The scheduler, shard, and parallel subsystems evaluate insertions
against shared ``Occupancy``/``InsertionContext`` state and commit the
winners.  A mutation that escapes on an exception path leaves the
occupancy half-applied — and the worker-retirement machinery then bakes
the corruption into every later answer.  **E001** enforces the repo's
trial-mutation discipline in the configured ``trial-modules``
(``mgl.py``/``scheduler.py``/``shard.py``/``parallel.py``): every
mutation of a protected class (``mutation-protected`` config) must be
sanctioned by one of

* **fresh-object discard** — the receiver was constructed in this
  function (directly, or via a builder that returns a fresh instance):
  an escaping exception discards the object with the frame;
* **journal rollback** — ``set_journal(...)`` with a live journal was
  attached to the receiver on every path reaching the mutation, so the
  delta log can replay/roll back the half-applied state;
* **try/finally restore** — the mutation sits in a ``try`` whose
  ``finally`` (or an except handler) touches the same receiver;
* **declared commit point** — the enclosing function is listed in
  ``mutation-commits``.  Commits are then held to an atomicity check:
  no exceptional exit edge (explicit ``raise``, or a guarded-region
  statement) may be reachable once the first mutation has run.

Receivers whose origin is a *parameter* defer judgment to the call
sites: the rule resolves calls through the project symbol table and
evaluates the argument's freshness in the caller's own flow
environment, propagating through at most five call layers.  A shared
argument passed into a param-mutating trial function is flagged at the
call site.  Functions with no scanned call sites stay silent — their
eventual callers are outside the analyzed tree (soundness boundary,
see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from tools.repro_lint.config import LintConfig
from tools.repro_lint.dataflow import (
    RAISE_EXIT,
    FlowResult,
    analyze_forward,
    iter_function_defs,
)
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.rules import Rule
from tools.repro_lint.symbols import FunctionInfo, ModuleSymbols
from tools.repro_lint.violations import Violation

#: Mutating methods of the protected occupancy-like classes.
MUTATOR_METHODS = {"add", "remove", "update_x", "move", "clear", "pop",
                   "append", "extend", "update", "insert"}

_MAX_CALL_DEPTH = 5


# Abstract receiver origins.  ``Param`` carries the positional index in
# the enclosing function's signature (self included for methods).
@dataclass(frozen=True)
class Fresh:
    cls: str = ""


@dataclass(frozen=True)
class Shared:
    pass


@dataclass(frozen=True)
class Param:
    index: int


Origin = Union[Fresh, Shared, Param]


@dataclass(frozen=True)
class AbsVal:
    origin: Origin
    journaled: bool = False


def _join_origin(a: Origin, b: Origin) -> Origin:
    if a == b:
        return a
    # Any disagreement collapses to shared — the unsafe direction.
    return Shared()


def _join(a: Optional[object], b: Optional[object]) -> Optional[object]:
    if not isinstance(a, AbsVal):
        return b if isinstance(b, AbsVal) else None
    if not isinstance(b, AbsVal):
        # Name unbound on one path: freshness survives (the object
        # cannot be mutated on the unbound path), journal does not.
        return AbsVal(a.origin, False)
    return AbsVal(_join_origin(a.origin, b.origin), a.journaled and b.journaled)


@dataclass
class Mutation:
    """One protected mutation site inside a function."""

    node: ast.AST
    receiver_name: Optional[str]
    value: AbsVal
    in_restoring_try: bool


@dataclass
class FunctionSummary:
    qname: str
    rel_path: str
    fn: ast.FunctionDef
    params: List[str]
    #: Param indexes the function mutates without a local sanction.
    deferred: Dict[int, ast.AST] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)


class _ProjectAnalysis:
    """Whole-project E001 pass, memoized per Project instance."""

    def __init__(self, project: Project, config: LintConfig):
        self.project = project
        self.config = config
        self.protected_classes = set(config.mutation_protected)
        self.protected_basenames = {
            qname.rsplit(".", 1)[-1] for qname in config.mutation_protected
        }
        self.commits = set(config.mutation_commits)
        self.by_file: Dict[str, List[Violation]] = {}
        self.summaries: Dict[str, FunctionSummary] = {}
        self._fresh_makers: Dict[str, bool] = {}
        self._run()

    # -- entry ---------------------------------------------------------
    def _run(self) -> None:
        trial_files = [
            source for source in self.project.files
            if self.config.in_scope(source.rel_path, self.config.trial_modules)
        ]
        for source in trial_files:
            self._analyze_file(source)
        self._resolve_deferred()

    # -- per-function analysis -----------------------------------------
    def _analyze_file(self, source: SourceFile) -> None:
        mod = self.project.symbols.by_path.get(source.rel_path)
        qnames: Dict[int, str] = {}
        if mod is not None:
            for info in mod.functions.values():
                qnames[id(info.node)] = info.qname
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    qnames[id(method.node)] = method.qname
        for fn in iter_function_defs(source.tree):
            qname = qnames.get(id(fn), f"{source.rel_path}:{fn.name}")
            self._analyze_function(source, mod, fn, qname)

    def _analyze_function(
        self,
        source: SourceFile,
        mod: Optional[ModuleSymbols],
        fn: ast.FunctionDef,
        qname: str,
    ) -> None:
        params = [arg.arg for arg in fn.args.args]
        initial: Dict[str, object] = {}
        for index, arg in enumerate(fn.args.args):
            if self._is_protected_annotation(mod, arg):
                initial[arg.arg] = AbsVal(Param(index))
        summary = FunctionSummary(
            qname=qname, rel_path=source.rel_path, fn=fn, params=params,
        )
        mutations: List[Mutation] = []
        restoring_tries = self._restoring_try_ranges(fn)

        def transfer(stmt: ast.stmt, env: Dict[str, object]) -> Dict[str, object]:
            self._transfer(stmt, env, mod)
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.Lambda)) and (
                    node is not stmt
                ):
                    continue
                mutation = self._mutation_at(node, env, mod)
                if mutation is not None:
                    mutation.in_restoring_try = self._inside_restoring_try(
                        node, mutation.receiver_name, restoring_tries
                    )
                    mutations.append(mutation)
            return env

        flow = analyze_forward(
            fn, initial=initial, transfer=transfer, join_value=_join
        )

        is_commit = qname in self.commits
        # The worklist revisits statements on the way to fixpoint; the
        # last recorded environment per site is the fixpoint one.
        latest: Dict[Tuple[int, int], Mutation] = {}
        for mutation in mutations:
            latest[(mutation.node.lineno, mutation.node.col_offset)] = mutation
        for mutation in latest.values():
            value = mutation.value
            if isinstance(value.origin, Fresh):
                continue
            if value.journaled:
                continue
            if mutation.in_restoring_try:
                continue
            if is_commit:
                continue  # atomicity handled below
            if isinstance(value.origin, Param):
                summary.deferred.setdefault(
                    value.origin.index, mutation.node
                )
                continue
            summary.violations.append(
                self._violation(
                    source.rel_path, mutation.node,
                    "mutates shared protected state on a trial path with "
                    "no restore on the exception exit edges (no fresh "
                    "receiver, journal, try/finally, or declared commit)",
                )
            )
        if is_commit and latest:
            self._check_commit_atomicity(
                source, fn, flow, list(latest.values())
            )

        self.summaries[qname] = summary
        self.by_file.setdefault(source.rel_path, []).extend(summary.violations)

    def _check_commit_atomicity(
        self,
        source: SourceFile,
        fn: ast.FunctionDef,
        flow: FlowResult,
        mutations: List[Mutation],
    ) -> None:
        reaches_raise = flow.cfg.can_reach(RAISE_EXIT)
        flagged: Set[Tuple[int, int]] = set()
        for mutation in mutations:
            # Locate the narrowest CFG statement covering the mutation.
            node: Optional[int] = None
            best_span: Optional[int] = None
            for cand, cand_stmt in flow.cfg.stmts.items():
                if cand_stmt is None:
                    continue
                end = getattr(cand_stmt, "end_lineno", cand_stmt.lineno)
                if cand_stmt.lineno <= mutation.node.lineno <= end:
                    span = end - cand_stmt.lineno
                    if best_span is None or span < best_span:
                        node, best_span = cand, span
            if node is None:
                continue
            exceptional_after = any(
                succ in reaches_raise or succ == RAISE_EXIT
                for succ in flow.cfg.succs.get(node, ())
            )
            key = (mutation.node.lineno, mutation.node.col_offset)
            if exceptional_after and key not in flagged:
                flagged.add(key)
                self.by_file.setdefault(source.rel_path, []).append(
                    self._violation(
                        source.rel_path, mutation.node,
                        f"commit function {fn.name} can exit exceptionally "
                        "after this mutation: a declared commit must apply "
                        "atomically with respect to raise edges",
                    )
                )

    # -- transfer ------------------------------------------------------
    def _transfer(
        self,
        stmt: ast.stmt,
        env: Dict[str, object],
        mod: Optional[ModuleSymbols],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = self._eval(stmt.value, env, mod)
                if value is not None:
                    env[target.id] = value
                else:
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ) and stmt.value is not None:
            value = self._eval(stmt.value, env, mod)
            if value is not None:
                env[stmt.target.id] = value
            else:
                env.pop(stmt.target.id, None)
        # set_journal flow: attach/detach on the receiver's name.
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set_journal"
                and isinstance(node.func.value, ast.Name)
            ):
                name = node.func.value.id
                current = env.get(name)
                attached = bool(node.args) and not (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if isinstance(current, AbsVal):
                    env[name] = AbsVal(current.origin, attached)
                elif attached:
                    env[name] = AbsVal(Shared(), True)

    def _eval(
        self,
        expr: ast.expr,
        env: Dict[str, object],
        mod: Optional[ModuleSymbols],
    ) -> Optional[AbsVal]:
        if isinstance(expr, ast.Name):
            value = env.get(expr.id)
            return value if isinstance(value, AbsVal) else None
        if isinstance(expr, ast.Call):
            cls = self._constructed_class(expr, mod)
            if cls is not None:
                return AbsVal(Fresh(cls))
            if self._is_fresh_maker(expr, mod):
                return AbsVal(Fresh())
            return None
        if isinstance(expr, ast.Attribute):
            # Attribute loads of protected classes are shared state.
            cls = self._attr_protected_class(expr, mod)
            if cls is not None:
                return AbsVal(Shared())
            return None
        return None

    # -- receiver classification ---------------------------------------
    def _mutation_at(
        self,
        node: ast.AST,
        env: Dict[str, object],
        mod: Optional[ModuleSymbols],
    ) -> Optional[Mutation]:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method not in MUTATOR_METHODS:
                return None
            receiver = node.func.value
            value = self._receiver_value(receiver, env, mod)
            if value is None:
                return None
            name = receiver.id if isinstance(receiver, ast.Name) else None
            return Mutation(node, name, value, False)
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    value = self._receiver_value(target.value, env, mod)
                    if value is not None:
                        name = (
                            target.value.id
                            if isinstance(target.value, ast.Name) else None
                        )
                        return Mutation(node, name, value, False)
        return None

    def _receiver_value(
        self,
        receiver: ast.expr,
        env: Dict[str, object],
        mod: Optional[ModuleSymbols],
    ) -> Optional[AbsVal]:
        """AbsVal of a receiver *known to be a protected class*."""
        if isinstance(receiver, ast.Name):
            value = env.get(receiver.id)
            if isinstance(value, AbsVal):
                if isinstance(value.origin, Fresh) and value.origin.cls:
                    if not self._class_protected(value.origin.cls):
                        return None
                return value
            return None
        if isinstance(receiver, ast.Attribute):
            cls = self._attr_protected_class(receiver, mod)
            if cls is not None:
                return AbsVal(Shared())
        return None

    def _class_protected(self, qname: str) -> bool:
        return (
            qname in self.protected_classes
            or qname.rsplit(".", 1)[-1] in self.protected_basenames
        )

    def _constructed_class(
        self, call: ast.Call, mod: Optional[ModuleSymbols]
    ) -> Optional[str]:
        """Class qname when ``call`` constructs a scanned class."""
        dotted = _dotted(call.func)
        if dotted is None or mod is None:
            return None
        resolved = self.project.symbols.resolve(mod, dotted)
        if resolved is None:
            return None
        if self.project.symbols.lookup_class(resolved) is not None:
            return resolved
        return None

    def _is_fresh_maker(
        self, call: ast.Call, mod: Optional[ModuleSymbols]
    ) -> bool:
        """True when ``call`` resolves to a function returning a fresh
        protected instance (e.g. ``build_occupancy``)."""
        dotted = _dotted(call.func)
        if dotted is None or mod is None:
            return False
        resolved = self.project.symbols.resolve(mod, dotted)
        if resolved is None:
            return False
        cached = self._fresh_makers.get(resolved)
        if cached is not None:
            return cached
        info = self.project.symbols.lookup_function(resolved)
        fresh = False
        if info is not None:
            fn_mod = self.project.symbols.by_path.get(info.rel_path)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Call
                ):
                    cls = self._constructed_class(node.value, fn_mod)
                    if cls is not None and self._class_protected(cls):
                        fresh = True
                        break
        self._fresh_makers[resolved] = fresh
        return fresh

    def _attr_protected_class(
        self, attr: ast.Attribute, mod: Optional[ModuleSymbols]
    ) -> Optional[str]:
        """Protected-class qname of an attribute chain like
        ``self.occupancy`` / ``legalizer.occupancy``."""
        if not isinstance(attr, ast.Attribute):
            return None
        # Attribute name matching the lowercase of a protected class is
        # the repo convention (occupancy, context); confirm via the
        # symbol table when possible.
        leaf = attr.attr
        for qname in self.protected_classes:
            basename = qname.rsplit(".", 1)[-1]
            if leaf == basename.lower() or leaf == f"_{basename.lower()}":
                return qname
        return None

    def _is_protected_annotation(
        self, mod: Optional[ModuleSymbols], arg: ast.arg
    ) -> bool:
        if arg.annotation is None:
            # Untyped params named after a protected class still count:
            # the repo's trial modules pass occupancies positionally.
            return arg.arg in {
                qname.rsplit(".", 1)[-1].lower()
                for qname in self.protected_classes
            }
        dotted = _dotted(arg.annotation)
        if dotted is None:
            return False
        if mod is not None:
            resolved = self.project.symbols.resolve(mod, dotted)
            if resolved is not None:
                return self._class_protected(resolved)
        return self._class_protected(dotted)

    # -- try/finally sanction ------------------------------------------
    def _restoring_try_ranges(
        self, fn: ast.FunctionDef
    ) -> List[Tuple[int, int, Set[str]]]:
        """(body start, body end, receiver names restored) per try."""
        ranges: List[Tuple[int, int, Set[str]]] = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            restored: Set[str] = set()
            for block in [node.finalbody] + [
                handler.body for handler in node.handlers
            ]:
                for stmt in block:
                    for inner in ast.walk(stmt):
                        if isinstance(inner, ast.Name):
                            restored.add(inner.id)
                        elif isinstance(inner, ast.Attribute):
                            restored.add(inner.attr)
            if not restored:
                continue
            start = node.body[0].lineno if node.body else node.lineno
            end = max(
                getattr(stmt, "end_lineno", stmt.lineno)
                for stmt in node.body
            )
            ranges.append((start, end, restored))
        return ranges

    def _inside_restoring_try(
        self,
        node: ast.AST,
        receiver_name: Optional[str],
        ranges: Sequence[Tuple[int, int, Set[str]]],
    ) -> bool:
        line = getattr(node, "lineno", None)
        if line is None:
            return False
        for start, end, restored in ranges:
            if start <= line <= end:
                if receiver_name is None or receiver_name in restored:
                    return True
        return False

    # -- deferred call-site resolution ---------------------------------
    def _resolve_deferred(self) -> None:
        deferred = {
            qname: summary
            for qname, summary in self.summaries.items()
            if summary.deferred
        }
        if not deferred:
            return
        for depth in range(_MAX_CALL_DEPTH):
            new_deferrals = self._call_site_pass(deferred)
            if not new_deferrals:
                break
            deferred = new_deferrals

    def _call_site_pass(
        self, deferred: Dict[str, FunctionSummary]
    ) -> Dict[str, FunctionSummary]:
        """Evaluate every call site of deferred functions; returns the
        next layer of deferrals (callers passing their own params)."""
        next_layer: Dict[str, FunctionSummary] = {}
        for source in self.project.files:
            mod = self.project.symbols.by_path.get(source.rel_path)
            if mod is None:
                continue
            for fn in iter_function_defs(source.tree):
                calls = [
                    (node, target)
                    for node in ast.walk(fn)
                    if isinstance(node, ast.Call)
                    for target in [self._resolve_call(node, mod)]
                    if target is not None and target in deferred
                ]
                if not calls:
                    continue
                env_flow = self._freshness_flow(source, mod, fn)
                for call, target in calls:
                    callee = deferred[target]
                    self._judge_call_site(
                        source, mod, fn, call, callee, env_flow, next_layer
                    )
        return next_layer

    def _judge_call_site(
        self,
        source: SourceFile,
        mod: Optional[ModuleSymbols],
        fn: ast.FunctionDef,
        call: ast.Call,
        callee: FunctionSummary,
        flow: FlowResult,
        next_layer: Dict[str, FunctionSummary],
    ) -> None:
        stmt = _enclosing_stmt(fn, call)
        env = flow.env_at(stmt) if stmt is not None else {}
        is_method_call = isinstance(call.func, ast.Attribute)
        for index in sorted(callee.deferred):
            arg_index = index - 1 if is_method_call and index > 0 else index
            if is_method_call and index == 0:
                continue  # self receiver: judged via attr heuristics
            if arg_index >= len(call.args):
                # Keyword-passed receiver.
                name = callee.params[index] if index < len(
                    callee.params
                ) else None
                arg = next(
                    (kw.value for kw in call.keywords if kw.arg == name),
                    None,
                )
            else:
                arg = call.args[arg_index]
            if arg is None:
                continue
            value = self._eval(arg, dict(env), mod)
            if value is None and isinstance(arg, ast.Name):
                bound = env.get(arg.id)
                value = bound if isinstance(bound, AbsVal) else None
            if value is None:
                # Unknown origin: stay silent (soundness boundary).
                continue
            if isinstance(value.origin, Fresh) or value.journaled:
                continue
            if isinstance(value.origin, Param):
                caller_qname = self._qname_of(source, fn)
                entry = next_layer.setdefault(
                    caller_qname,
                    FunctionSummary(
                        qname=caller_qname,
                        rel_path=source.rel_path,
                        fn=fn,
                        params=[a.arg for a in fn.args.args],
                    ),
                )
                entry.deferred.setdefault(value.origin.index, call)
                continue
            self.by_file.setdefault(source.rel_path, []).append(
                self._violation(
                    source.rel_path, call,
                    f"passes shared protected state into "
                    f"{callee.qname.rsplit('.', 1)[-1]}(), which mutates "
                    "it on a trial path without a restore on its "
                    "exception exit edges",
                )
            )

    def _freshness_flow(
        self,
        source: SourceFile,
        mod: Optional[ModuleSymbols],
        fn: ast.FunctionDef,
    ) -> FlowResult:
        initial: Dict[str, object] = {}
        for index, arg in enumerate(fn.args.args):
            if self._is_protected_annotation(mod, arg):
                initial[arg.arg] = AbsVal(Param(index))

        def transfer(stmt: ast.stmt, env: Dict[str, object]) -> Dict[str, object]:
            self._transfer(stmt, env, mod)
            return env

        return analyze_forward(
            fn, initial=initial, transfer=transfer, join_value=_join
        )

    def _resolve_call(
        self, call: ast.Call, mod: ModuleSymbols
    ) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is not None:
            resolved = self.project.symbols.resolve(mod, dotted)
            if resolved is not None and resolved in self.summaries:
                return resolved
        # Method calls: match by name against deferred method summaries.
        if isinstance(call.func, ast.Attribute):
            leaf = call.func.attr
            matches = [
                qname for qname in self.summaries
                if qname.rsplit(".", 1)[-1] == leaf
                and self.summaries[qname].deferred
            ]
            if len(matches) == 1:
                return matches[0]
        return None

    def _qname_of(self, source: SourceFile, fn: ast.FunctionDef) -> str:
        mod = self.project.symbols.by_path.get(source.rel_path)
        if mod is not None:
            for info in mod.functions.values():
                if info.node is fn:
                    return info.qname
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    if method.node is fn:
                        return method.qname
        return f"{source.rel_path}:{fn.name}"

    def _violation(
        self, rel_path: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rel_path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            "E001",
            message,
        )


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _enclosing_stmt(fn: ast.FunctionDef, target: ast.AST) -> Optional[ast.stmt]:
    """Innermost statement of ``fn`` containing ``target`` (by identity)."""
    best: Optional[ast.stmt] = None
    for node in ast.walk(fn):
        if isinstance(node, ast.stmt):
            for inner in ast.walk(node):
                if inner is target:
                    best = node  # walk order visits outer first
                    break
    return best


class TrialMutationRule(Rule):
    code = "E001"
    summary = "trial-path protected mutation with no restore on exit edges"

    def __init__(self) -> None:
        self._memo: Optional[Tuple[int, _ProjectAnalysis]] = None

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if self._memo is None or self._memo[0] != id(project):
            self._memo = (id(project), _ProjectAnalysis(project, config))
        analysis = self._memo[1]
        return list(analysis.by_file.get(source.rel_path, ()))
