"""Determinism rules D001-D004.

These encode the reproduction's standing invariants (docs/STATIC_ANALYSIS.md):

* **D001** — all randomness flows through an explicitly seeded
  ``random.Random`` / ``numpy.random.Generator`` instance; module-level RNG
  calls (global hidden state) are banned everywhere.
* **D002** — ordering-sensitive modules (``core/``, ``flow/``) must not
  iterate bare sets or ``dict.keys()`` views without ``sorted(...)``:
  set order depends on hash seeds and insertion history, which silently
  breaks the §3.5 any-thread-count-identical-result guarantee.
* **D003** — geometry/occupancy code must not compare floats with
  ``==``/``!=``; use site-integer math or the epsilon helpers in
  :mod:`repro.model.approx`.
* **D004** — algorithm modules must not read the wall clock
  (``time.time``, ``datetime.now``, ...): results must be a pure function
  of the inputs.  Monotonic duration probes (``perf_counter`` etc.) are
  allowed — they measure stages without steering them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.rules import Rule
from tools.repro_lint.violations import Violation

# ----------------------------------------------------------------------
# Shared import-alias tracking
# ----------------------------------------------------------------------


class ImportAliases:
    """Maps local names back to the modules/attributes they came from."""

    def __init__(self, tree: ast.Module):
        # local alias -> imported module path, e.g. {"np": "numpy"}.
        self.modules: Dict[str, str] = {}
        # local name -> (module path, original name) for from-imports,
        # e.g. {"shuffle": ("random", "shuffle")}.
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = (node.module, alias.name)

    def call_target(self, func: ast.expr) -> Optional[Tuple[str, str]]:
        """Resolve a call's function to ``(module path, attribute)``.

        Handles ``module.attr(...)``, ``pkg.sub.attr(...)`` and
        from-imported ``attr(...)``; returns None for anything else
        (methods on objects, locals, ...).
        """
        if isinstance(func, ast.Name):
            return self.names.get(func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if not isinstance(value, ast.Name):
                return None
            root = value.id
            parts_rev = list(reversed(parts))
            if root in self.modules:
                module = ".".join([self.modules[root]] + parts_rev[:-1])
                return module, parts_rev[-1]
            if root in self.names:
                base_module, base_name = self.names[root]
                module = ".".join([base_module, base_name] + parts_rev[:-1])
                return module, parts_rev[-1]
        return None


# ----------------------------------------------------------------------
# D001 — unseeded module-level randomness
# ----------------------------------------------------------------------

#: Module-level functions of ``random`` that use the hidden global RNG.
RANDOM_MODULE_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: ``numpy.random`` module-level functions (legacy global RandomState).
NUMPY_RANDOM_FUNCS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "laplace", "logistic",
    "lognormal", "multinomial", "multivariate_normal", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_integers", "random_sample", "ranf", "rayleigh", "sample",
    "seed", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "uniform",
    "weibull", "zipf",
}

#: Constructors that are only deterministic when given an explicit seed.
SEEDED_CONSTRUCTORS = {
    ("random", "Random"),
    ("random", "SystemRandom"),  # never acceptable, seeded or not
    ("numpy.random", "default_rng"),
    ("numpy.random", "RandomState"),
    ("numpy.random", "Generator"),
}


class UnseededRandomRule(Rule):
    code = "D001"
    summary = "module-level / unseeded RNG use"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        aliases = ImportAliases(source.tree)
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = aliases.call_target(node.func)
            if target is None:
                continue
            module, attr = target
            if module == "random" and attr in RANDOM_MODULE_FUNCS:
                violations.append(self._hit(
                    source, node,
                    f"call to global-state 'random.{attr}'; route all "
                    f"randomness through a seeded random.Random instance",
                ))
            elif module == "numpy.random" and attr in NUMPY_RANDOM_FUNCS:
                violations.append(self._hit(
                    source, node,
                    f"call to global-state 'numpy.random.{attr}'; use a "
                    f"seeded numpy.random.Generator (default_rng(seed))",
                ))
            elif (module, attr) in SEEDED_CONSTRUCTORS:
                if attr == "SystemRandom":
                    violations.append(self._hit(
                        source, node,
                        "SystemRandom is entropy-based and never "
                        "reproducible",
                    ))
                elif not node.args and not node.keywords:
                    violations.append(self._hit(
                        source, node,
                        f"'{attr}()' without an explicit seed is "
                        f"time/entropy-seeded and not reproducible",
                    ))
        return violations

    def _hit(self, source: SourceFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            source.rel_path, node.lineno, node.col_offset, self.code, message
        )


# ----------------------------------------------------------------------
# D002 — iteration over unordered collections
# ----------------------------------------------------------------------

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


class _UnorderedTracker:
    """Per-scope tracking of names bound to unordered (set-like) values."""

    def __init__(self, outer: Optional["_UnorderedTracker"] = None):
        self.unordered: Set[str] = set(outer.unordered) if outer else set()

    def classify(self, node: ast.expr) -> bool:
        """True when ``node`` evaluates to an unordered iterable."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.classify(node.left) or self.classify(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                # list(s)/tuple(s)/iter(s)/reversed(s) preserve the
                # (unordered) input order; sorted(s) repairs it.
                if func.id in ("list", "tuple", "iter", "reversed") and node.args:
                    return self.classify(node.args[0])
                return False
            if isinstance(func, ast.Attribute):
                if func.attr == "keys" and not node.args:
                    return True
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference"):
                    return self.classify(func.value)
                if func.attr == "copy":
                    return self.classify(func.value)
        return False

    def bind(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if self.classify(value):
                self.unordered.add(target.id)
            else:
                self.unordered.discard(target.id)


class UnorderedIterationRule(Rule):
    code = "D002"
    summary = "iteration over bare set/dict.keys() in ordering-sensitive module"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not LintConfig.in_scope(source.rel_path, config.ordering_sensitive):
            return []
        violations: List[Violation] = []
        self._check_scope(source, source.tree.body, _UnorderedTracker(), violations)
        return violations

    def _check_scope(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        tracker: _UnorderedTracker,
        violations: List[Violation],
    ) -> None:
        for stmt in body:
            self._check_stmt(source, stmt, tracker, violations)

    def _check_stmt(
        self,
        source: SourceFile,
        stmt: ast.stmt,
        tracker: _UnorderedTracker,
        violations: List[Violation],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_scope(
                source, stmt.body, _UnorderedTracker(tracker), violations
            )
            return
        if isinstance(stmt, ast.ClassDef):
            self._check_scope(source, stmt.body, _UnorderedTracker(tracker), violations)
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                tracker.bind(target, stmt.value)
            self._check_expr_tree(source, stmt.value, tracker, violations)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tracker.bind(stmt.target, stmt.value)
            self._check_expr_tree(source, stmt.value, tracker, violations)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if tracker.classify(stmt.iter):
                violations.append(Violation(
                    source.rel_path, stmt.iter.lineno, stmt.iter.col_offset,
                    self.code,
                    "iterating an unordered set/dict.keys() view; wrap in "
                    "sorted(...) to pin the order",
                ))
            self._check_expr_tree(source, stmt.iter, tracker, violations)
            self._check_scope(source, stmt.body, tracker, violations)
            self._check_scope(source, stmt.orelse, tracker, violations)
            return
        # Generic statement: recurse into sub-statements and expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._check_stmt(source, child, tracker, violations)
            elif isinstance(child, ast.expr):
                self._check_expr_tree(source, child, tracker, violations)
            elif isinstance(child, (ast.excepthandler, ast.withitem)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._check_stmt(source, sub, tracker, violations)
                    elif isinstance(sub, ast.expr):
                        self._check_expr_tree(source, sub, tracker, violations)

    def _check_expr_tree(
        self,
        source: SourceFile,
        expr: ast.expr,
        tracker: _UnorderedTracker,
        violations: List[Violation],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for generator in node.generators:
                    if tracker.classify(generator.iter):
                        violations.append(Violation(
                            source.rel_path,
                            generator.iter.lineno,
                            generator.iter.col_offset,
                            self.code,
                            "comprehension over an unordered set/dict.keys() "
                            "view; wrap in sorted(...) to pin the order",
                        ))


# ----------------------------------------------------------------------
# D003 — float equality in geometry/occupancy code
# ----------------------------------------------------------------------


class _FloatTracker:
    """Local inference of float-typed expressions within one function."""

    def __init__(self) -> None:
        self.float_names: Set[str] = set()

    @staticmethod
    def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
        return isinstance(annotation, ast.Name) and annotation.id == "float"

    def seed_function(self, node: ast.FunctionDef) -> None:
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if self._is_float_annotation(arg.annotation):
                self.float_names.add(arg.arg)

    def is_floatish(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.float_names
        if isinstance(node, ast.UnaryOp):
            return self.is_floatish(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True  # true division always yields a float
            return self.is_floatish(node.left) or self.is_floatish(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"
                and func.attr not in ("floor", "ceil", "isqrt", "comb",
                                      "factorial", "gcd", "lcm", "perm")
            ):
                return True
        return False

    def bind(self, target: ast.expr, value: Optional[ast.expr],
             annotation: Optional[ast.expr] = None) -> None:
        if not isinstance(target, ast.Name):
            return
        if self._is_float_annotation(annotation) or (
            value is not None and self.is_floatish(value)
        ):
            self.float_names.add(target.id)


class FloatEqualityRule(Rule):
    code = "D003"
    summary = "float ==/!= comparison in geometry/occupancy module"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not LintConfig.in_scope(source.rel_path, config.float_sensitive):
            return []
        violations: List[Violation] = []
        module_tracker = _FloatTracker()
        self._scan_body(source, source.tree.body, module_tracker, violations)
        return violations

    def _scan_body(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        tracker: _FloatTracker,
        violations: List[Violation],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.FunctionDef):
                inner = _FloatTracker()
                inner.float_names |= tracker.float_names
                inner.seed_function(stmt)
                self._scan_body(source, stmt.body, inner, violations)
                continue
            if isinstance(stmt, ast.ClassDef):
                class_tracker = _FloatTracker()
                # Dataclass-style annotated fields seed attribute *names*
                # so `x == other.x` patterns are not missed entirely; only
                # bare-name comparisons use this (conservative).
                self._scan_body(source, stmt.body, class_tracker, violations)
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    tracker.bind(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                tracker.bind(stmt.target, stmt.value, stmt.annotation)
            for node in ast.walk(stmt):
                if isinstance(node, ast.Compare):
                    self._check_compare(source, node, tracker, violations)
            # Recurse into nested statements for function defs inside
            # control flow.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                    self._scan_body(source, [child], tracker, violations)

    def _check_compare(
        self,
        source: SourceFile,
        node: ast.Compare,
        tracker: _FloatTracker,
        violations: List[Violation],
    ) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if tracker.is_floatish(left) or tracker.is_floatish(right):
                violations.append(Violation(
                    source.rel_path, node.lineno, node.col_offset, self.code,
                    "float ==/!= is unstable under rounding; use "
                    "site-integer math or repro.model.approx helpers",
                ))
                return


# ----------------------------------------------------------------------
# D004 — wall-clock reads in algorithm modules
# ----------------------------------------------------------------------

#: Wall-clock reads whose values depend on when the code runs.
WALL_CLOCK_TIME_FUNCS = {
    "time", "time_ns", "localtime", "gmtime", "ctime", "asctime",
    "strftime", "mktime",
}

#: Monotonic duration probes: allowed (they time stages, not steer them).
MONOTONIC_TIME_FUNCS = {
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "process_time", "process_time_ns", "thread_time", "thread_time_ns",
}

DATETIME_CLASS_FUNCS = {"now", "today", "utcnow", "fromtimestamp"}


class WallClockRule(Rule):
    code = "D004"
    summary = "wall-clock read inside algorithm module"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not LintConfig.in_scope(source.rel_path, config.algorithm_modules):
            return []
        aliases = ImportAliases(source.tree)
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = aliases.call_target(node.func)
            if target is None:
                continue
            module, attr = target
            if module == "time" and attr in WALL_CLOCK_TIME_FUNCS:
                violations.append(Violation(
                    source.rel_path, node.lineno, node.col_offset, self.code,
                    f"'time.{attr}' reads the wall clock; algorithm results "
                    f"must not depend on when they run "
                    f"(perf_counter/monotonic are fine for durations)",
                ))
            elif (
                module in ("datetime", "datetime.datetime", "datetime.date")
                and attr in DATETIME_CLASS_FUNCS
            ):
                violations.append(Violation(
                    source.rel_path, node.lineno, node.col_offset, self.code,
                    f"'{module}.{attr}' reads the wall clock; algorithm "
                    f"results must not depend on when they run",
                ))
        return violations
