"""Contract rule C002: declared purity contracts hold project-wide.

The reproduction's determinism argument names a handful of callables
that must be *pure evaluations* no matter who calls them: the
``evaluate_insert`` the §3.5 scheduler fans out to its thread pool, and
the ``repro.core.parallel`` worker entry point that replays journal
deltas against a process-local mirror.  ``[tool.repro-lint]
pure-contracts`` lists them; this rule verifies each one transitively —
across module boundaries, into methods of locally constructed objects
that capture shared state — using the shared
:class:`~tools.repro_lint.purity.PurityWalker`.

A contract may sanction writes through specific *scratch* parameters —
``"...evaluate_insert(cache)"`` marks ``cache`` as caller-owned scratch
state (the documented "pool submissions must leave cache as None"
contract: only single-owner callers pass a private GapCache).

Violations are attached to the contract's ``def`` line in its defining
file; the message cites the offending write site.  The incremental
cache invalidates the defining file whenever anything in the contract's
call-graph closure changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.purity import SCRATCH, SHARED, PurityWalker, Val
from tools.repro_lint.rules import Rule
from tools.repro_lint.symbols import FunctionInfo, _all_args
from tools.repro_lint.violations import Violation


class PurityContractRule(Rule):
    code = "C002"
    summary = "declared purity contract writes shared state"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        violations: List[Violation] = []
        symbols = project.symbols
        for contract in config.contracts():
            fn = symbols.lookup_function(contract.qname)
            if fn is None:
                # The contract names nothing in this scan.  If its owning
                # module *is* scanned, a stale config must fail loudly
                # instead of silently checking nothing; if the whole
                # subsystem is outside this scan (fixture runs, partial
                # targets), stay quiet.
                owner = self._owner_module_path(project, contract.qname)
                if owner is not None and owner == source.rel_path:
                    violations.append(Violation(
                        source.rel_path, 1, 0, self.code,
                        f"pure contract '{contract.qname}' does not resolve "
                        f"to a scanned function; update "
                        f"[tool.repro-lint] pure-contracts",
                    ))
                continue
            if fn.rel_path != source.rel_path:
                continue
            walker = PurityWalker(symbols)
            env = self._contract_env(walker, fn, contract.scratch_params)
            walker.walk_function(fn, env)
            for finding in walker.findings:
                violations.append(Violation(
                    source.rel_path, fn.node.lineno, fn.node.col_offset,
                    self.code,
                    f"pure contract '{contract.qname}' is violated: "
                    f"{finding.what} ({finding.rel_path}:{finding.line})",
                ))
        return violations

    # ------------------------------------------------------------------

    @staticmethod
    def _owner_module_path(project: Project, qname: str) -> Optional[str]:
        parts = qname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = project.symbols.modules.get(".".join(parts[:cut]))
            if mod is not None:
                return mod.rel_path
        return None

    @staticmethod
    def _contract_env(
        walker: PurityWalker, fn: FunctionInfo, scratch: Tuple[str, ...]
    ) -> Dict[str, Val]:
        symbols = walker.symbols
        mod = symbols.by_path.get(fn.rel_path)
        env: Dict[str, Val] = {}
        for arg in _all_args(fn.node):
            cls = (
                symbols.annotation_class(mod, arg.annotation)
                if mod is not None and arg.annotation is not None else None
            )
            if arg.arg in ("self", "cls"):
                env[arg.arg] = Val(SHARED, fn.class_qname)
            elif arg.arg in scratch:
                env[arg.arg] = Val(SCRATCH, cls)
            else:
                env[arg.arg] = Val(SHARED, cls)
        return env
