"""Rule registry.

Every rule is a class with a ``code``, a one-line ``summary``, and a
``check_file`` hook returning :class:`~tools.repro_lint.violations.Violation`
instances.  The engine applies suppressions and scoping around the rules.
"""

from __future__ import annotations

from typing import List, Type

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.violations import Violation


class Rule:
    """Base class: one statically checkable determinism/invariant hazard."""

    code: str = ""
    summary: str = ""

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        raise NotImplementedError


def all_rules() -> List[Rule]:
    """Instantiate the full rule set."""
    from tools.repro_lint.rules.arrays import (
        MixedFloatDtypeRule,
        ReductionOrderedKeyRule,
        UnstableArraySortRule,
    )
    from tools.repro_lint.rules.concurrency import SchedulerRaceRule
    from tools.repro_lint.rules.contracts import PurityContractRule
    from tools.repro_lint.rules.determinism import (
        FloatEqualityRule,
        UnorderedIterationRule,
        UnseededRandomRule,
        WallClockRule,
    )
    from tools.repro_lint.rules.exceptions import TrialMutationRule
    from tools.repro_lint.rules.mutation import SanctionedMutationRule
    from tools.repro_lint.rules.protocol import PipeProtocolRule
    from tools.repro_lint.rules.taint import NondeterminismTaintRule

    classes: List[Type[Rule]] = [
        UnseededRandomRule,
        UnorderedIterationRule,
        FloatEqualityRule,
        WallClockRule,
        NondeterminismTaintRule,
        SchedulerRaceRule,
        PurityContractRule,
        SanctionedMutationRule,
        UnstableArraySortRule,
        MixedFloatDtypeRule,
        ReductionOrderedKeyRule,
        TrialMutationRule,
        PipeProtocolRule,
    ]
    return [cls() for cls in classes]
