"""Concurrency rule C001: thread-pool shared-state race detector.

The §3.5 scheduler is only deterministic because everything submitted to
its ``ThreadPoolExecutor`` is a *pure evaluation*: the docstring
contract is "evaluation never mutates state".  This rule enforces that
contract statically.  For every ``<pool>.submit(fn, ...)`` in a
scheduler module it resolves ``fn`` through the project symbol table —
a local def, lambda, ``self.method``, or a method of an
annotation/constructor-typed receiver — and hands it to the shared
:class:`~tools.repro_lint.purity.PurityWalker`, which follows the call
tree across module boundaries, *including into methods of locally
constructed objects that capture shared state* (the hole the original
per-file walker documented).

Call-site awareness matters: parameters the submission does not pass
take their default-value classification, so ``evaluate_insert``'s
``cache=None`` contract is checked as actually submitted.  An
unresolvable submission target is itself a violation: the scheduler
must only submit callables the race analyzer can check.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple, Union

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.purity import SHARED_VAL, PurityWalker, Val
from tools.repro_lint.rules import Rule
from tools.repro_lint.symbols import (
    FunctionInfo,
    ModuleSymbols,
    SymbolTable,
    dotted_name,
)
from tools.repro_lint.violations import Violation


class SchedulerRaceRule(Rule):
    code = "C001"
    summary = "thread-pool submission writes shared state"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not LintConfig.in_scope(source.rel_path, config.scheduler_modules):
            return []
        violations: List[Violation] = []
        for class_name, call in self._submit_calls(source.tree):
            violations.extend(
                self._check_submission(source, project, class_name, call)
            )
        return violations

    # ------------------------------------------------------------------

    @staticmethod
    def _submit_calls(
        tree: ast.Module,
    ) -> List[Tuple[Optional[str], ast.Call]]:
        """All ``<x>.submit(...)`` calls, tagged with the enclosing class."""
        found: List[Tuple[Optional[str], ast.Call]] = []

        def visit(node: ast.AST, class_name: Optional[str]) -> None:
            if isinstance(node, ast.ClassDef):
                class_name = node.name
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                found.append((class_name, node))
            for child in ast.iter_child_nodes(node):
                visit(child, class_name)

        visit(tree, None)
        return found

    def _check_submission(
        self,
        source: SourceFile,
        project: Project,
        class_name: Optional[str],
        call: ast.Call,
    ) -> List[Violation]:
        target = call.args[0]
        symbols = project.symbols
        mod = symbols.by_path.get(source.rel_path)
        walker = PurityWalker(symbols)
        resolved_name: str

        if isinstance(target, ast.Lambda):
            resolved_name = "<lambda>"
            walker.walk_lambda(
                source.rel_path, mod.name if mod else "", target
            )
        else:
            info = self._resolve_target(project, source, class_name, target)
            if info is None:
                label = ast.unparse(target)
                return [Violation(
                    source.rel_path, call.lineno, call.col_offset, self.code,
                    f"cannot resolve thread-pool submission target "
                    f"'{label}'; submit only callables the race analyzer "
                    f"can check",
                )]
            resolved_name = info.name
            # Everything handed to the pool is shared across threads by
            # construction; unpassed parameters keep their defaults.
            arg_vals = [SHARED_VAL for _ in call.args[1:]]
            kwarg_vals = {
                kw.arg: SHARED_VAL for kw in call.keywords
                if kw.arg is not None
            }
            self_val: Optional[Val] = None
            if info.class_qname is not None:
                self_val = Val("shared", info.class_qname)
            env = walker.bind_call(info, call, arg_vals, kwarg_vals, self_val)
            walker.walk_function(info, env)

        violations = []
        for finding in walker.findings:
            violations.append(Violation(
                source.rel_path, call.lineno, call.col_offset, self.code,
                f"'{resolved_name}' runs on the scheduler thread pool but "
                f"writes shared state: {finding.what} "
                f"({finding.rel_path}:{finding.line}); "
                f"evaluation must be pure (§3.5)",
            ))
        return violations

    @staticmethod
    def _resolve_target(
        project: Project,
        source: SourceFile,
        class_name: Optional[str],
        target: ast.expr,
    ) -> Optional[FunctionInfo]:
        symbols = project.symbols
        mod = symbols.by_path.get(source.rel_path)
        if mod is None:
            return None
        if isinstance(target, ast.Name):
            resolved = symbols.resolve(mod, target.id)
            if resolved is not None:
                return symbols.lookup_function(resolved)
            return None
        if not isinstance(target, ast.Attribute):
            return None
        # ``self.method`` / ``self.attr.method`` / ``local.method`` where
        # the receiver's class is known from annotations or constructors.
        receiver_cls = SchedulerRaceRule._receiver_class(
            symbols, mod, source, class_name, target.value
        )
        if receiver_cls is not None:
            return symbols.lookup_method(receiver_cls, target.attr)
        # Module-attached function: ``module.func``.
        dotted = dotted_name(target)
        if dotted is not None:
            resolved = symbols.resolve(mod, dotted)
            if resolved is not None:
                return symbols.lookup_function(resolved)
        return None

    @staticmethod
    def _receiver_class(
        symbols: SymbolTable,
        mod: ModuleSymbols,
        source: SourceFile,
        class_name: Optional[str],
        receiver: ast.expr,
    ) -> Optional[str]:
        """Class of the submission receiver, via shallow type inference."""
        class_qname = (
            symbols.resolve(mod, class_name) if class_name else None
        )
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                return class_qname
            # Search the enclosing function for a typing binding of the
            # local: annotation, constructor call, or typed self-attr.
            fn = _enclosing_function(source.tree, receiver)
            if fn is None:
                return None
            return _local_class(symbols, mod, class_qname, fn, receiver.id)
        if isinstance(receiver, ast.Attribute):
            base = SchedulerRaceRule._receiver_class(
                symbols, mod, source, class_name, receiver.value
            )
            if base is not None:
                return symbols.attr_class(base, receiver.attr)
        return None


_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _enclosing_function(
    tree: ast.Module, needle: ast.expr
) -> Optional[_FunctionDef]:
    """Innermost function definition containing ``needle``."""
    found: List[_FunctionDef] = []

    def visit(node: ast.AST, current: Optional[_FunctionDef]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node
        if node is needle and current is not None:
            found.append(current)
        for child in ast.iter_child_nodes(node):
            visit(child, current)

    visit(tree, None)
    return found[0] if found else None


def _local_class(
    symbols: SymbolTable,
    mod: ModuleSymbols,
    class_qname: Optional[str],
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    name: str,
) -> Optional[str]:
    """Shallow class inference for local ``name`` inside ``fn``."""
    for arg in (
        list(fn.args.posonlyargs) + list(fn.args.args)
        + list(fn.args.kwonlyargs)
    ):
        if arg.arg == name and arg.annotation is not None:
            return symbols.annotation_class(mod, arg.annotation)
    for sub in ast.walk(fn):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target, value = sub.targets[0], sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.annotation is not None:
            if isinstance(sub.target, ast.Name) and sub.target.id == name:
                return symbols.annotation_class(mod, sub.annotation)
            continue
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                resolved = symbols.resolve(mod, dotted)
                if resolved is not None and resolved in symbols.classes:
                    return resolved
        elif isinstance(value, ast.Attribute) and isinstance(
            value.value, ast.Name
        ) and value.value.id == "self" and class_qname is not None:
            return symbols.attr_class(class_qname, value.attr)
    return None
