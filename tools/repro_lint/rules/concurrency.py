"""Concurrency rule C001: thread-pool shared-state race detector.

The §3.5 scheduler is only deterministic because everything submitted to
its ``ThreadPoolExecutor`` is a *pure evaluation*: the docstring contract
is "evaluation never mutates state".  This rule enforces that contract
statically.  For every ``<pool>.submit(fn, ...)`` in a scheduler module it
resolves ``fn`` (local def, lambda, ``self.method``, or a method name
unique across the project) and walks the callee — transitively, through
``self.*`` calls and uniquely-named project methods — looking for writes
to shared state:

* assignments (incl. ``+=`` and subscript stores) whose target is rooted
  at ``self`` or at a parameter/closure name,
* assignments to ``global``/``nonlocal`` names,
* mutating method calls (``append``, ``update``, ``pop``, ...) on
  receivers rooted at shared objects.

Names bound inside the callee to fresh containers/objects (literals,
comprehensions, constructor calls) are thread-local and exempt.  Known
limitation: the walk does not follow into methods invoked on those fresh
locals — a fresh object that internally captures shared state can hide a
write.  An unresolvable submission target is itself a violation: the
scheduler must only submit callables the analyzer can prove pure.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import MethodInfo, Project, SourceFile
from tools.repro_lint.rules import Rule
from tools.repro_lint.violations import Violation

#: Container/object methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "add", "discard", "update",
    "setdefault", "sort", "reverse", "rotate", "write", "put",
    "difference_update", "intersection_update", "symmetric_difference_update",
}

_MAX_DEPTH = 4


def _root_name(node: ast.expr) -> Optional[str]:
    """The base name of an attribute/subscript chain (``a.b[c].d`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_fresh_value(node: ast.expr) -> bool:
    """True when ``node`` constructs a new (thread-local) object."""
    return isinstance(node, (
        ast.List, ast.Dict, ast.Set, ast.Tuple,
        ast.ListComp, ast.DictComp, ast.SetComp, ast.GeneratorExp,
        ast.Call, ast.Constant, ast.BinOp, ast.Compare, ast.BoolOp,
        ast.UnaryOp, ast.IfExp, ast.JoinedStr,
    ))


class _SharedWriteFinder:
    """Collects shared-state writes inside one submitted callable."""

    def __init__(self, project: Project):
        self.project = project
        self.findings: List[Tuple[str, int, str]] = []  # (rel_path, line, what)
        self.visited: Set[Tuple[str, Optional[str], str]] = set()

    # -- entry points ---------------------------------------------------

    def analyze_function(self, info: MethodInfo, depth: int = 0) -> None:
        key = (info.rel_path, info.class_name, info.node.name)
        if key in self.visited or depth > _MAX_DEPTH:
            return
        self.visited.add(key)
        node = info.node

        params = {arg.arg for arg in (
            list(node.args.posonlyargs) + list(node.args.args)
            + list(node.args.kwonlyargs)
        )}
        params.discard("self")
        fresh = self._fresh_locals(node, params)
        declared_shared = self._declared_global_nonlocal(node)

        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: Sequence[ast.expr]
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                else:
                    targets = [sub.target]
                for target in targets:
                    self._check_store(
                        info, target, params, fresh, declared_shared, sub.lineno
                    )
            elif isinstance(sub, ast.Call):
                self._check_call(info, sub, params, fresh, depth)

    def analyze_lambda(self, rel_path: str, node: ast.Lambda) -> None:
        # A lambda body is one expression: only mutator calls and walrus
        # stores can write state, and every name it sees is shared
        # (closure) or an argument bound to shared work items.
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    self.findings.append((
                        rel_path, sub.lineno,
                        f"mutating call '.{func.attr}(...)' in lambda",
                    ))
            elif isinstance(sub, ast.NamedExpr):
                continue  # walrus binds a lambda-local name: safe

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _fresh_locals(node: ast.FunctionDef, params: Set[str]) -> Set[str]:
        """Names whose every binding in the function is a fresh value."""
        fresh: Set[str] = set()
        tainted: Set[str] = set(params)
        for sub in ast.walk(node):
            bindings: List[Tuple[ast.expr, Optional[ast.expr]]] = []
            if isinstance(sub, ast.Assign):
                bindings = [(t, sub.value) for t in sub.targets]
            elif isinstance(sub, ast.AnnAssign):
                bindings = [(sub.target, sub.value)]
            elif isinstance(sub, ast.NamedExpr):
                bindings = [(sub.target, sub.value)]
            for target, value in bindings:
                if not isinstance(target, ast.Name):
                    continue
                if value is not None and _is_fresh_value(value):
                    fresh.add(target.id)
                else:
                    tainted.add(target.id)
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                # Loop targets alias elements of the iterated (possibly
                # shared) container.
                for name_node in ast.walk(sub.target):
                    if isinstance(name_node, ast.Name):
                        tainted.add(name_node.id)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                for name_node in ast.walk(sub.optional_vars):
                    if isinstance(name_node, ast.Name):
                        tainted.add(name_node.id)
        return fresh - tainted

    @staticmethod
    def _declared_global_nonlocal(node: ast.FunctionDef) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                names.update(sub.names)
        return names

    def _check_store(
        self,
        info: MethodInfo,
        target: ast.expr,
        params: Set[str],
        fresh: Set[str],
        declared_shared: Set[str],
        lineno: int,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(
                    info, element, params, fresh, declared_shared, lineno
                )
            return
        if isinstance(target, ast.Name):
            if target.id in declared_shared:
                self.findings.append((
                    info.rel_path, lineno,
                    f"assignment to global/nonlocal '{target.id}' in "
                    f"'{info.node.name}'",
                ))
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root is None or root in fresh:
                return
            if root == "self" or root in params or root in declared_shared:
                where = "self" if root == "self" else f"parameter '{root}'"
                self.findings.append((
                    info.rel_path, lineno,
                    f"store into state rooted at {where} in "
                    f"'{info.node.name}'",
                ))
            else:
                # Unknown root: an alias of something shared, or a module
                # global.  Conservatively shared.
                self.findings.append((
                    info.rel_path, lineno,
                    f"store through non-local name '{root}' in "
                    f"'{info.node.name}'",
                ))

    def _check_call(
        self,
        info: MethodInfo,
        call: ast.Call,
        params: Set[str],
        fresh: Set[str],
        depth: int,
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS:
                root = _root_name(func.value)
                if root is not None and root in fresh:
                    return
                self.findings.append((
                    info.rel_path, call.lineno,
                    f"mutating call '.{func.attr}(...)' on shared object in "
                    f"'{info.node.name}'",
                ))
                return
            # Transitive: self.<m>() within the same class, or a method
            # name defined exactly once project-wide on a shared receiver.
            root = _root_name(func.value)
            if root is not None and root in fresh:
                return  # methods of thread-local objects: out of scope
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and info.class_name is not None
            ):
                callee = self.project.class_methods.get(
                    (info.class_name, func.attr)
                )
                if callee is not None:
                    self.analyze_function(callee, depth + 1)
                    return
            callee = self.project.resolve_unique(func.attr)
            if callee is not None:
                self.analyze_function(callee, depth + 1)
        elif isinstance(func, ast.Name):
            callee = self.project.resolve_unique(func.id)
            if callee is not None and callee.class_name is None:
                self.analyze_function(callee, depth + 1)


class SchedulerRaceRule(Rule):
    code = "C001"
    summary = "thread-pool submission writes shared state"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not LintConfig.in_scope(source.rel_path, config.scheduler_modules):
            return []
        violations: List[Violation] = []
        for class_name, call in self._submit_calls(source.tree):
            violations.extend(
                self._check_submission(source, project, class_name, call)
            )
        return violations

    # ------------------------------------------------------------------

    @staticmethod
    def _submit_calls(
        tree: ast.Module,
    ) -> List[Tuple[Optional[str], ast.Call]]:
        """All ``<x>.submit(...)`` calls, tagged with the enclosing class."""
        found: List[Tuple[Optional[str], ast.Call]] = []

        def visit(node: ast.AST, class_name: Optional[str]) -> None:
            if isinstance(node, ast.ClassDef):
                class_name = node.name
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                found.append((class_name, node))
            for child in ast.iter_child_nodes(node):
                visit(child, class_name)

        visit(tree, None)
        return found

    def _check_submission(
        self,
        source: SourceFile,
        project: Project,
        class_name: Optional[str],
        call: ast.Call,
    ) -> List[Violation]:
        target = call.args[0]
        finder = _SharedWriteFinder(project)
        resolved_name: Optional[str] = None

        if isinstance(target, ast.Lambda):
            resolved_name = "<lambda>"
            finder.analyze_lambda(source.rel_path, target)
        else:
            info = self._resolve_target(project, class_name, target)
            if info is None:
                label = ast.unparse(target)
                return [Violation(
                    source.rel_path, call.lineno, call.col_offset, self.code,
                    f"cannot resolve thread-pool submission target "
                    f"'{label}'; submit only callables the race analyzer "
                    f"can check",
                )]
            resolved_name = info.node.name
            finder.analyze_function(info)

        violations = []
        for rel_path, line, what in finder.findings:
            violations.append(Violation(
                source.rel_path, call.lineno, call.col_offset, self.code,
                f"'{resolved_name}' runs on the scheduler thread pool but "
                f"writes shared state: {what} ({rel_path}:{line}); "
                f"evaluation must be pure (§3.5)",
            ))
        return violations

    @staticmethod
    def _resolve_target(
        project: Project,
        class_name: Optional[str],
        target: ast.expr,
    ) -> Optional[MethodInfo]:
        if isinstance(target, ast.Name):
            return project.resolve_unique(target.id)
        if isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and class_name is not None
            ):
                info = project.class_methods.get((class_name, target.attr))
                if info is not None:
                    return info
            return project.resolve_unique(target.attr)
        return None
