"""Pipe-protocol rule P001: worker payloads must be canonical.

The parallel and shard pools keep bit-identity across worker counts
only because every message on the pipe is a pure function of the
batch inputs.  **P001** checks each ``conn.send(...)`` in the
configured ``pipe-modules``:

* the payload must be a tuple literal (or a name flow-bound to one)
  whose first element is a string tag — the repo's message protocol;
* every element must be *canonical*: constants, f-strings, parameters,
  attribute/subscript loads, arithmetic over canonical parts,
  comprehensions, accumulator lists built from canonical appends,
  constructions of scanned classes, and calls that resolve to **pure
  builders** (verified through :mod:`tools.repro_lint.purity` or
  declared in ``pure-contracts``) or to the serialization allowlist
  (``pickle.dumps``, the sanctioned monotonic clock);
* set/dict displays, set/dict comprehensions and generator expressions
  are rejected outright — their iteration order is hash-dependent, so
  a payload built from one desynchronizes workers silently;
* calls that resolve to a scanned function that is *not* pure are
  rejected: an impure builder can fold shared mutable state into the
  message;
* independently, every ``json.dumps`` in a pipe module must pass
  ``sort_keys=True`` — canonical serialization is what makes payload
  hashes comparable.

Unresolvable names (closed-over state, module globals) pass silently —
the documented soundness boundary shared with C002/M001.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.purity import FRESH, PurityWalker, Val
from tools.repro_lint.rules import Rule
from tools.repro_lint.symbols import dotted_name
from tools.repro_lint.violations import Violation

#: Modules whose top-level callables may appear in payloads without a
#: purity proof: stdlib serialization and the sanctioned clock.
_CALL_ALLOWLIST_MODULES = {"pickle", "json", "struct", "hashlib"}
_CALL_ALLOWLIST_FUNCS = {"monotonic", "len", "int", "float", "str", "bool",
                         "tuple", "list", "sorted", "repr", "min", "max",
                         "range", "zip", "enumerate", "isinstance"}


class _FileChecker:
    def __init__(
        self, source: SourceFile, project: Project, config: LintConfig
    ):
        self.source = source
        self.project = project
        self.config = config
        self.mod = project.symbols.by_path.get(source.rel_path)
        self.violations: List[Violation] = []
        self._purity_cache: Dict[str, bool] = {}
        self._pure_contract_names = {
            contract.split("(")[0] for contract in config.pure_contracts
        }

    def run(self) -> List[Violation]:
        for fn_node in ast.walk(self.source.tree):
            if isinstance(fn_node, ast.FunctionDef):
                self._check_function(fn_node)
        self._check_json_dumps()
        return self.violations

    # -- send-site discovery -------------------------------------------
    def _check_function(self, fn: ast.FunctionDef) -> None:
        # Flow-insensitive local binding map is enough here: payload
        # tuples are built once and sent; rebinding a payload name
        # between build and send does not occur in protocol code, and
        # if it did, the *last* binding is the conservative one.
        bindings: Dict[str, ast.expr] = {}
        appends: Dict[str, List[ast.Call]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    bindings[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ) and node.value is not None:
                bindings[node.target.id] = node.value
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
            ):
                appends.setdefault(node.func.value.id, []).append(node)
        params = {arg.arg for arg in fn.args.args}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
                and node.args
            ):
                self._check_send(node, bindings, appends, params)

    def _check_send(
        self,
        call: ast.Call,
        bindings: Dict[str, ast.expr],
        appends: Dict[str, List[ast.Call]],
        params: Set[str],
    ) -> None:
        payload = call.args[0]
        resolved = payload
        if isinstance(payload, ast.Name):
            bound = bindings.get(payload.id)
            if bound is not None:
                resolved = bound
        if not isinstance(resolved, ast.Tuple):
            self._flag(
                call,
                "pipe payload is not a tuple literal: the worker "
                "protocol requires a (tag, ...) tuple so the message "
                "shape is reviewable",
            )
            return
        if not resolved.elts or not (
            isinstance(resolved.elts[0], ast.Constant)
            and isinstance(resolved.elts[0].value, str)
        ):
            self._flag(
                call,
                "pipe payload does not lead with a string tag: every "
                "protocol message starts with its message kind",
            )
            return
        for element in resolved.elts[1:]:
            problem = self._canonical_problem(
                element, bindings, appends, params, depth=0
            )
            if problem is not None:
                self._flag(
                    element,
                    f"non-canonical pipe payload element: {problem}",
                )

    # -- canonicality --------------------------------------------------
    def _canonical_problem(
        self,
        expr: ast.expr,
        bindings: Dict[str, ast.expr],
        appends: Dict[str, List[ast.Call]],
        params: Set[str],
        depth: int,
    ) -> Optional[str]:
        """None when canonical, else a short description of the issue."""
        if depth > 8:
            return None  # give unboundedly nested shapes the benefit
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set displays iterate in hash order"
        if isinstance(expr, (ast.DictComp, ast.GeneratorExp)):
            return "comprehension over an unordered source cannot be " \
                   "proven canonical; build a list from a sorted iterable"
        if isinstance(expr, ast.Dict):
            return "dict displays in payloads hide key order; use a " \
                   "pure builder that serializes with sorted keys"
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.JoinedStr):
            return None
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                problem = self._canonical_problem(
                    element, bindings, appends, params, depth + 1
                )
                if problem is not None:
                    return problem
            return None
        if isinstance(expr, ast.ListComp):
            problem = self._canonical_problem(
                expr.elt, bindings, appends, params, depth + 1
            )
            if problem is not None:
                return problem
            for gen in expr.generators:
                if isinstance(gen.iter, (ast.Set, ast.SetComp)):
                    return "comprehension iterates a set"
                if (
                    isinstance(gen.iter, ast.Call)
                    and isinstance(gen.iter.func, ast.Name)
                    and gen.iter.func.id in ("set", "frozenset")
                ):
                    return "comprehension iterates a set"
            return None
        if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare,
                             ast.BoolOp, ast.IfExp)):
            return None  # arithmetic/logic over canonical leaves
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            return None  # loads from inputs; D002/M001 guard the rest
        if isinstance(expr, ast.Name):
            if expr.id in params:
                return None
            if expr.id in appends:
                for append in appends[expr.id]:
                    if append.args:
                        problem = self._canonical_problem(
                            append.args[0], bindings, appends, params,
                            depth + 1,
                        )
                        if problem is not None:
                            return problem
                return None
            bound = bindings.get(expr.id)
            if bound is not None and bound is not expr:
                return self._canonical_problem(
                    bound, bindings, appends, params, depth + 1
                )
            return None  # unresolved origin: soundness boundary
        if isinstance(expr, ast.Call):
            return self._call_problem(expr, bindings, appends, params, depth)
        return None

    def _call_problem(
        self,
        call: ast.Call,
        bindings: Dict[str, ast.expr],
        appends: Dict[str, List[ast.Call]],
        params: Set[str],
        depth: int,
    ) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted in ("json.dumps", "json.dump"):
            # Canonical iff sort_keys=True — enforced for the whole
            # module by _check_json_dumps; don't double-flag the dict
            # argument here.
            return None
        for arg in call.args:
            problem = self._canonical_problem(
                arg, bindings, appends, params, depth + 1
            )
            if problem is not None:
                return problem
        func = call.func
        if isinstance(func, ast.Name) and func.id in _CALL_ALLOWLIST_FUNCS:
            return None
        if dotted is not None and self.mod is not None:
            resolved = self.project.symbols.resolve(self.mod, dotted)
            if resolved is not None:
                if self.project.symbols.lookup_class(resolved) is not None:
                    return None  # fresh construction from canonical args
                if resolved in self._pure_contract_names:
                    return None
                info = self.project.symbols.lookup_function(resolved)
                if info is not None:
                    if self._is_pure(resolved):
                        return None
                    return (
                        f"builder {resolved.rsplit('.', 1)[-1]}() is not "
                        "verifiably pure; payloads must come from pure "
                        "builders"
                    )
            root = dotted.split(".")[0]
            if root in _CALL_ALLOWLIST_MODULES:
                return None
            alias = self.mod.imports.get(root)
            if alias is not None and alias.split(".")[0] in (
                _CALL_ALLOWLIST_MODULES
            ):
                return None
        if isinstance(func, ast.Attribute) and func.attr in (
            "dumps", "pack", "hexdigest", "digest", "tolist", "copy",
        ):
            return None
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return "payload built from a set constructor"
        # Method calls on locals and unresolved helpers: allow; the
        # structural blacklist above catches the unordered shapes.
        return None

    def _is_pure(self, qname: str) -> bool:
        cached = self._purity_cache.get(qname)
        if cached is not None:
            return cached
        info = self.project.symbols.lookup_function(qname)
        pure = False
        if info is not None:
            walker = PurityWalker(self.project.symbols)
            env: Dict[str, Val] = {
                arg.arg: Val(FRESH) for arg in info.node.args.args
            }
            walker.walk_function(info, env, 0)
            pure = not walker.findings
        self._purity_cache[qname] = pure
        return pure

    # -- json.dumps ----------------------------------------------------
    def _check_json_dumps(self) -> None:
        for node in ast.walk(self.source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted not in ("json.dumps", "json.dump"):
                continue
            sort_keys = next(
                (kw.value for kw in node.keywords if kw.arg == "sort_keys"),
                None,
            )
            if not (
                isinstance(sort_keys, ast.Constant)
                and sort_keys.value is True
            ):
                self._flag(
                    node,
                    f"{dotted} without sort_keys=True in a pipe module: "
                    "serialized payloads must be canonical so hashes "
                    "compare across workers",
                )

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                self.source.rel_path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                "P001",
                message,
            )
        )


class PipeProtocolRule(Rule):
    code = "P001"
    summary = "worker pipe payload is not canonical / unsorted serialization"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        if not config.in_scope(source.rel_path, config.pipe_modules):
            return []
        return _FileChecker(source, project, config).run()
