"""Mutation rule M001: protected-class internals are API-only.

The delta-journal protocol (`repro.core.parallel`) and the planned
sharded halo-reconciliation both rest on one invariant: every mutation
of an :class:`Occupancy` goes through its own methods, so the journal
sees it and row versions bump.  A stray ``occ._xs[row][i] = x`` or
``occ.journal.append(...)`` from another module silently desynchronizes
every worker mirror.

``[tool.repro-lint] mutation-protected`` lists the guarded classes.
Outside a class's home module, this rule flags:

* attribute/subscript **stores** that pass through an attribute of an
  expression whose class is inferred as protected
  (``occ.placement.x[0] = 9`` — bypasses the journal);
* the same through a **private attribute name** registered to exactly
  one protected class, even when the receiver's type cannot be inferred
  (``thing._xs[0][0] = 999`` — fixtures and tests have no annotations);
* **mutating method calls** (``append``, ``update``, ...) on such
  internals (``occ.journal.append(op)``).

Reads are unrestricted, and calling the protected object's own methods
(``occ.add(...)``) is exactly the sanctioned path.  Type inference is
the symbol table's shallow kind: parameter annotations, constructor
calls, annotated/inferred ``self`` attributes.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple, Union

from tools.repro_lint.config import LintConfig
from tools.repro_lint.project import Project, SourceFile
from tools.repro_lint.purity import MUTATOR_METHODS
from tools.repro_lint.rules import Rule
from tools.repro_lint.symbols import (
    ClassInfo,
    ModuleSymbols,
    SymbolTable,
    dotted_name,
)
from tools.repro_lint.violations import Violation

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class SanctionedMutationRule(Rule):
    code = "M001"
    summary = "protected-class internals written outside their home module"

    def check_file(
        self, source: SourceFile, project: Project, config: LintConfig
    ) -> List[Violation]:
        symbols = project.symbols
        protected: Dict[str, ClassInfo] = {}
        for qname in config.mutation_protected:
            info = symbols.lookup_class(qname)
            if info is not None and info.rel_path != source.rel_path:
                protected[qname] = info
        if not protected:
            return []
        # Private attribute -> owning class, for untyped receivers.
        # Names claimed by several protected classes stay ambiguous but
        # still point at *some* protected internals, so keep them.
        private_attrs: Dict[str, str] = {}
        for qname, info in protected.items():
            for attr in info.attr_names:
                if attr.startswith("_") and not attr.startswith("__"):
                    private_attrs[attr] = qname

        mod = symbols.by_path.get(source.rel_path)
        if mod is None:
            return []
        violations: List[Violation] = []
        checker = _FileChecker(
            source, symbols, mod, protected, private_attrs, self.code
        )
        checker.run()
        violations.extend(checker.violations)
        return violations


class _FileChecker:
    """Scans one file's functions with a shallow per-scope type env."""

    def __init__(
        self,
        source: SourceFile,
        symbols: SymbolTable,
        mod: ModuleSymbols,
        protected: Dict[str, ClassInfo],
        private_attrs: Dict[str, str],
        code: str,
    ) -> None:
        self.source = source
        self.symbols = symbols
        self.mod = mod
        self.protected = protected
        self.private_attrs = private_attrs
        self.code = code
        self.violations: List[Violation] = []

    def run(self) -> None:
        self._scan_body(self.source.tree.body, class_qname=None, types={})

    def _scan_body(
        self,
        body: List[ast.stmt],
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                qname = self.symbols.resolve(self.mod, stmt.name)
                self._scan_body(stmt.body, qname, {})
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(stmt, class_qname)
            else:
                self._scan_stmt(stmt, class_qname, dict(types))

    def _scan_function(
        self, fn: _FunctionDef, class_qname: Optional[str]
    ) -> None:
        types = self._param_types(fn)
        for stmt in fn.body:
            self._scan_stmt(stmt, class_qname, types)

    def _param_types(self, fn: _FunctionDef) -> Dict[str, Optional[str]]:
        types: Dict[str, Optional[str]] = {}
        for arg in (
            list(fn.args.posonlyargs) + list(fn.args.args)
            + list(fn.args.kwonlyargs)
        ):
            if arg.annotation is not None:
                types[arg.arg] = self.symbols.annotation_class(
                    self.mod, arg.annotation
                )
        return types

    def _scan_stmt(
        self,
        stmt: ast.stmt,
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
    ) -> None:
        # Nested defs keep (a copy of) the enclosing bindings.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(types)
            inner.update(self._param_types(stmt))
            for sub in stmt.body:
                self._scan_stmt(sub, class_qname, inner)
            return
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_write(target, class_qname, types)
                self._bind(node.targets, node.value, class_qname, types)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._check_write(node.target, class_qname, types)
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    types[node.target.id] = self.symbols.annotation_class(
                        self.mod, node.annotation
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_write(
                        target, class_qname, types, verb="delete of"
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    self._check_receiver(node, class_qname, types)

    def _bind(
        self,
        targets: List[ast.expr],
        value: ast.expr,
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
    ) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        inferred: Optional[str] = None
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                resolved = self.symbols.resolve(self.mod, dotted)
                if resolved is not None and resolved in self.symbols.classes:
                    inferred = resolved
        else:
            inferred = self._expr_class(value, class_qname, types)
        types[name] = inferred

    # ------------------------------------------------------------------

    def _check_write(
        self,
        target: ast.expr,
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
        verb: str = "write to",
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_write(element, class_qname, types, verb)
            return
        if isinstance(target, ast.Starred):
            self._check_write(target.value, class_qname, types, verb)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        hit = self._protected_hop(target, class_qname, types)
        if hit is not None:
            owner, attr = hit
            self._report(
                target,
                f"{verb} internals of protected class {owner} "
                f"(attribute '{attr}'); mutate it through its own API "
                f"in its home module",
            )

    def _check_receiver(
        self,
        call: ast.Call,
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
    ) -> None:
        func = call.func
        assert isinstance(func, ast.Attribute)
        receiver = func.value
        if not isinstance(receiver, (ast.Attribute, ast.Subscript)):
            return  # plain ``obj.add(...)``: the sanctioned API itself
        hit = self._protected_hop(receiver, class_qname, types)
        if hit is not None:
            owner, attr = hit
            self._report(
                call,
                f"mutating call '.{func.attr}(...)' on internals of "
                f"protected class {owner} (attribute '{attr}'); mutate it "
                f"through its own API in its home module",
            )

    def _protected_hop(
        self,
        target: ast.expr,
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
    ) -> Optional[Tuple[str, str]]:
        """(owner class, attribute) of the first protected hop in a chain.

        Walks ``base.attr1.attr2[...]`` outside-in: a hop is protected
        when its base's inferred class is a protected class, or when the
        attribute name is a registered protected private attribute and
        the base is not ``self`` (the home module is already excluded;
        ``self._x`` elsewhere is some other class's private state).
        """
        # Build the access chain from the inside out.
        chain: List[ast.expr] = []
        node: ast.expr = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            chain.append(node)
            node = node.value
        base = node
        chain.reverse()  # base-most access first
        current_cls = self._expr_class(base, class_qname, types)
        base_is_self = isinstance(base, ast.Name) and base.id == "self"
        for access in chain:
            if not isinstance(access, ast.Attribute):
                # Subscript: element types are untracked.
                current_cls = None
                continue
            if current_cls is not None and current_cls in self.protected:
                return (current_cls, access.attr)
            if (
                not base_is_self
                and access.attr in self.private_attrs
            ):
                return (self.private_attrs[access.attr], access.attr)
            current_cls = (
                self.symbols.attr_class(current_cls, access.attr)
                if current_cls is not None else None
            )
        return None

    def _expr_class(
        self,
        expr: ast.expr,
        class_qname: Optional[str],
        types: Dict[str, Optional[str]],
    ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return class_qname
            return types.get(expr.id)
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None:
                resolved = self.symbols.resolve(self.mod, dotted)
                if resolved is not None and resolved in self.symbols.classes:
                    return resolved
            return None
        if isinstance(expr, ast.Attribute):
            base = self._expr_class(expr.value, class_qname, types)
            if base is not None:
                return self.symbols.attr_class(base, expr.attr)
            return None
        return None

    def _report(self, node: ast.expr, message: str) -> None:
        self.violations.append(Violation(
            self.source.rel_path, node.lineno, node.col_offset,
            self.code, message,
        ))
