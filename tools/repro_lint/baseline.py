"""Baseline capture/compare for staged rule adoption.

A baseline file records the findings a tree is *known* to have, so a
new rule can gate CI immediately: pre-existing findings are accepted
(until fixed), new ones fail the build.  Matching is a **multiset** over
``(path, rule, message)`` — line and column are deliberately ignored so
unrelated edits that shift a known finding up or down the file do not
resurrect it.  Each baseline entry absorbs at most as many findings as
it was recorded with; extra occurrences of the same message are new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from tools.repro_lint.violations import Violation

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def _key(violation: Violation) -> _Key:
    return (violation.path, violation.rule, violation.message)


def write_baseline(path: Path, violations: List[Violation]) -> None:
    data = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "path": v.path,
                "rule": v.rule,
                "message": v.message,
                # Recorded for human readers; ignored when matching.
                "line": v.line,
                "col": v.col,
            }
            for v in sorted(violations)
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> "Counter[_Key]":
    """Baseline as a multiset; raises ValueError on a malformed file."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"malformed baseline {path}: no entries list")
    counts: "Counter[_Key]" = Counter()
    for entry in entries:
        try:
            counts[(entry["path"], entry["rule"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ValueError(f"malformed baseline entry in {path}") from exc
    return counts


def apply_baseline(
    violations: List[Violation], baseline: "Counter[_Key]"
) -> Tuple[List[Violation], int]:
    """Split findings against the baseline.

    Returns ``(new, fixed)``: the violations *not* absorbed by the
    baseline, and the number of baseline entries no current finding
    matched (candidates for re-capturing a shrunk baseline).
    """
    remaining = Counter(baseline)
    new: List[Violation] = []
    for violation in sorted(violations):
        key = _key(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(violation)
    fixed = sum(remaining.values())
    return new, fixed
