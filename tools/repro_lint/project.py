"""Parsed-source containers shared by all rules.

A :class:`SourceFile` is one parsed module plus its suppression state; a
:class:`Project` is the whole scanned file set together with the
project-wide :class:`~tools.repro_lint.symbols.SymbolTable` and the
file-level :class:`~tools.repro_lint.callgraph.CallGraph` the
cross-module rules (C001/C002/M001) and the incremental cache build on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from tools.repro_lint.callgraph import CallGraph
from tools.repro_lint.suppress import Suppressions, parse_suppressions
from tools.repro_lint.symbols import SymbolTable


@dataclass
class SourceFile:
    """One parsed Python module."""

    rel_path: str  # repo-relative POSIX path
    text: str
    tree: ast.Module
    suppressions: Suppressions


@dataclass
class Project:
    """All scanned files plus whole-program symbol/call-graph indexes."""

    files: List[SourceFile] = field(default_factory=list)
    symbols: SymbolTable = field(default_factory=SymbolTable)
    callgraph: CallGraph = field(default_factory=CallGraph)

    @classmethod
    def build(cls, sources: Sequence[SourceFile]) -> "Project":
        pairs = [(source.rel_path, source.tree) for source in sources]
        symbols = SymbolTable.build(pairs)
        callgraph = CallGraph.build(symbols, pairs)
        return cls(files=list(sources), symbols=symbols, callgraph=callgraph)

    def source(self, rel_path: str) -> Optional[SourceFile]:
        for candidate in self.files:
            if candidate.rel_path == rel_path:
                return candidate
        return None


def parse_source(rel_path: str, text: str) -> SourceFile:
    """Parse one module (raises :class:`SyntaxError` on bad input)."""
    tree = ast.parse(text, filename=rel_path)
    return SourceFile(
        rel_path=rel_path,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )
