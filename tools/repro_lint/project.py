"""Parsed-source containers shared by all rules.

A :class:`SourceFile` is one parsed module plus its suppression state; a
:class:`Project` is the whole scanned file set with a cross-module method
index, which the concurrency rule (C001) uses to resolve callables
submitted to thread pools.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from tools.repro_lint.suppress import Suppressions, parse_suppressions


@dataclass
class SourceFile:
    """One parsed Python module."""

    rel_path: str  # repo-relative POSIX path
    text: str
    tree: ast.Module
    suppressions: Suppressions


@dataclass
class MethodInfo:
    """Where one function/method definition lives."""

    rel_path: str
    class_name: Optional[str]  # None for module-level functions
    node: ast.FunctionDef


@dataclass
class Project:
    """All scanned files plus a (class, method)-name index."""

    files: List[SourceFile] = field(default_factory=list)
    # method name -> definitions across the project (module-level functions
    # and class methods alike).
    methods: Dict[str, List[MethodInfo]] = field(default_factory=dict)
    # (class name, method name) -> definition, for self.<m>() resolution.
    class_methods: Dict[Tuple[str, str], MethodInfo] = field(default_factory=dict)

    def add(self, source: SourceFile) -> None:
        self.files.append(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        info = MethodInfo(source.rel_path, node.name, item)
                        self.methods.setdefault(item.name, []).append(info)
                        self.class_methods[(node.name, item.name)] = info
            elif isinstance(node, ast.Module):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        info = MethodInfo(source.rel_path, None, item)
                        self.methods.setdefault(item.name, []).append(info)

    def resolve_unique(self, method_name: str) -> Optional[MethodInfo]:
        """The definition of ``method_name`` when the project has exactly one."""
        candidates = self.methods.get(method_name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


def parse_source(rel_path: str, text: str) -> SourceFile:
    """Parse one module (raises :class:`SyntaxError` on bad input)."""
    tree = ast.parse(text, filename=rel_path)
    return SourceFile(
        rel_path=rel_path,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )
