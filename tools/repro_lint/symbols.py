"""Project-wide symbol table.

Maps every scanned file to a module name (``src/repro/core/mgl.py`` ->
``repro.core.mgl``), indexes its imports, module-level functions,
classes and their methods, and resolves dotted references across module
boundaries.  This is what lets the cross-module rules (C001/C002/M001)
answer "which function does ``legalizer.evaluate_insert`` name?" and
"is ``self._caches`` a ``threading.local`` subclass?" without executing
anything.

Type information is deliberately shallow: a class is inferred for a name
when an annotation names one, or when the binding is a visible
constructor call.  That covers the codebase's idiom (annotated
``__init__`` parameters, ``x = ClassName(...)`` locals) without
attempting full inference.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Annotation wrappers stripped when looking for the underlying class.
_ANNOTATION_WRAPPERS = {"Optional", "Final", "ClassVar", "Annotated"}


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a repo-relative path.

    The ``src/`` layout prefix is stripped so ``src/repro/core/mgl.py``
    becomes ``repro.core.mgl`` (matching how the code imports it);
    everything else maps positionally (``tools/repro_lint/cli.py`` ->
    ``tools.repro_lint.cli``).
    """
    path = rel_path[:-3] if rel_path.endswith(".py") else rel_path
    parts = [p for p in path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str  # e.g. "repro.core.mgl.MGLegalizer.evaluate_insert"
    module: str
    rel_path: str
    class_qname: Optional[str]  # None for module-level functions
    node: FunctionNode

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition plus its shallow attribute type map."""

    qname: str
    module: str
    rel_path: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_qnames: Tuple[str, ...] = ()
    #: ``self.X`` / dataclass-field attribute -> class qname when inferable.
    attr_types: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def attr_names(self) -> Set[str]:
        return set(self.attr_types)


@dataclass
class ModuleSymbols:
    """Symbols and import aliases of one module."""

    name: str
    rel_path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``f = g`` aliasing (local name -> local name).
    aliases: Dict[str, str] = field(default_factory=dict)


class SymbolTable:
    """All modules of one lint run, with cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.by_path: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[str, ast.Module]]) -> "SymbolTable":
        """Index ``(rel_path, tree)`` pairs, then resolve type references."""
        table = cls()
        for rel_path, tree in files:
            table._index_module(rel_path, tree)
        table._resolve_deferred()
        return table

    def _index_module(self, rel_path: str, tree: ast.Module) -> None:
        name = module_name_for(rel_path)
        mod = ModuleSymbols(name=name, rel_path=rel_path)
        self.modules[name] = mod
        self.by_path[rel_path] = mod
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[bound] = target
                    if alias.asname is None and "." in alias.name:
                        # ``import a.b.c`` also makes the dotted chain
                        # resolvable from its root package name.
                        mod.imports.setdefault(alias.name, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_from_base(name, rel_path, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    mod.imports[bound] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(node, _FUNCTION_NODES):
                info = FunctionInfo(
                    qname=f"{name}.{node.name}" if name else node.name,
                    module=name, rel_path=rel_path, class_qname=None, node=node,
                )
                mod.functions[node.name] = info
                self.functions[info.qname] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(mod, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Name):
                    mod.aliases[target.id] = node.value.id

    @staticmethod
    def _import_from_base(
        module: str, rel_path: str, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: drop ``level`` components from the package path
        # (the module itself counts as one unless it is a package).
        parts = module.split(".") if module else []
        if not rel_path.endswith("/__init__.py") and parts:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _index_class(self, mod: ModuleSymbols, node: ast.ClassDef) -> None:
        qname = f"{mod.name}.{node.name}" if mod.name else node.name
        info = ClassInfo(
            qname=qname, module=mod.name, rel_path=mod.rel_path, node=node,
        )
        mod.classes[node.name] = info
        self.classes[qname] = info
        for item in node.body:
            if isinstance(item, _FUNCTION_NODES):
                method = FunctionInfo(
                    qname=f"{qname}.{item.name}", module=mod.name,
                    rel_path=mod.rel_path, class_qname=qname, node=item,
                )
                info.methods[item.name] = method
                self.functions[method.qname] = method
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                # Dataclass-style field declaration.
                info.attr_types.setdefault(item.target.id, None)

    # ------------------------------------------------------------------
    # Deferred resolution (needs every module indexed first)
    # ------------------------------------------------------------------

    def _resolve_deferred(self) -> None:
        for info in list(self.classes.values()):
            mod = self.by_path[info.rel_path]
            bases = []
            for base in info.node.bases:
                dotted = dotted_name(base)
                if dotted is None:
                    continue
                bases.append(self.resolve(mod, dotted) or dotted)
            info.base_qnames = tuple(bases)
            self._infer_attr_types(mod, info)

    def _infer_attr_types(self, mod: ModuleSymbols, info: ClassInfo) -> None:
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                info.attr_types[item.target.id] = self.annotation_class(
                    mod, item.annotation
                )
        for method in info.methods.values():
            params = {
                arg.arg: self.annotation_class(mod, arg.annotation)
                for arg in _all_args(method.node)
                if arg.annotation is not None
            }
            for sub in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value, annotation = sub.target, sub.value, sub.annotation
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                inferred: Optional[str] = None
                if annotation is not None:
                    inferred = self.annotation_class(mod, annotation)
                if inferred is None and value is not None:
                    inferred = self._value_class(mod, params, value)
                if inferred is not None or attr not in info.attr_types:
                    info.attr_types[attr] = inferred or info.attr_types.get(attr)

    def _value_class(
        self,
        mod: ModuleSymbols,
        params: Dict[str, Optional[str]],
        value: ast.expr,
    ) -> Optional[str]:
        """Class constructed/passed by ``value``, when visible."""
        if isinstance(value, ast.IfExp):
            return (
                self._value_class(mod, params, value.body)
                or self._value_class(mod, params, value.orelse)
            )
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is None:
                return None
            resolved = self.resolve(mod, dotted)
            if resolved is not None and resolved in self.classes:
                return resolved
            return None
        if isinstance(value, ast.Name):
            return params.get(value.id)
        return None

    # ------------------------------------------------------------------
    # Resolution API
    # ------------------------------------------------------------------

    def resolve(
        self, mod: ModuleSymbols, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Canonical qname that ``dotted`` names inside module ``mod``.

        Follows import aliases and module-level ``f = g`` aliasing, then
        chases one level of re-export through intermediate modules.
        Returns None for names that resolve to nothing known (builtins,
        third-party modules are returned verbatim as their dotted path).
        """
        if _depth > 4:
            return None
        head, _, rest = dotted.partition(".")
        base: Optional[str] = None
        if head in mod.classes:
            base = mod.classes[head].qname
        elif head in mod.functions:
            base = mod.functions[head].qname
        elif head in mod.aliases:
            return self.resolve(
                mod,
                mod.aliases[head] + (f".{rest}" if rest else ""),
                _depth + 1,
            )
        elif head in mod.imports:
            base = mod.imports[head]
        else:
            return None
        qname = f"{base}.{rest}" if rest else base
        return self._canonical(qname, _depth)

    def _canonical(self, qname: str, _depth: int = 0) -> str:
        """Chase re-exports: ``repro.core.Occupancy`` -> its home qname."""
        if qname in self.functions or qname in self.classes or _depth > 4:
            return qname
        parts = qname.split(".")
        # Longest known module prefix, then re-resolve the remainder in it.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            target_mod = self.modules.get(prefix)
            if target_mod is None:
                continue
            rest = ".".join(parts[cut:])
            resolved = self.resolve(target_mod, rest, _depth + 1)
            return resolved if resolved is not None else qname
        return qname

    def lookup_function(self, qname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qname)

    def lookup_class(self, qname: str) -> Optional[ClassInfo]:
        return self.classes.get(qname)

    def lookup_method(
        self, class_qname: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Resolve ``method`` on ``class_qname`` walking base classes."""
        seen = _seen if _seen is not None else set()
        if class_qname in seen:
            return None
        seen.add(class_qname)
        info = self.classes.get(class_qname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.base_qnames:
            found = self.lookup_method(base, method, seen)
            if found is not None:
                return found
        return None

    def attr_class(self, class_qname: str, attr: str) -> Optional[str]:
        """Declared/inferred class of ``<class_qname> instance>.<attr>``."""
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types and info.attr_types[attr] is not None:
                return info.attr_types[attr]
            queue.extend(info.base_qnames)
        return None

    def is_thread_local(self, class_qname: Optional[str]) -> bool:
        """True when the class derives from ``threading.local``."""
        if class_qname is None:
            return False
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            if current in ("threading.local", "_thread._local"):
                return True
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.base_qnames)
        return False

    def annotation_class(
        self, mod: ModuleSymbols, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        """Class qname an annotation expression names, if any.

        ``Optional[X]``, ``X | None``, string annotations, and the
        common typing wrappers are unwrapped; containers (``List[X]``)
        resolve to nothing — element types are not tracked.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            base = dotted_name(annotation.value)
            if base is not None and base.split(".")[-1] in _ANNOTATION_WRAPPERS:
                inner = annotation.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.annotation_class(mod, inner)
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            left = self.annotation_class(mod, annotation.left)
            if left is not None:
                return left
            return self.annotation_class(mod, annotation.right)
        dotted = dotted_name(annotation)
        if dotted is None or dotted == "None":
            return None
        resolved = self.resolve(mod, dotted)
        if resolved is not None and resolved in self.classes:
            return resolved
        return None


def _all_args(node: FunctionNode) -> List[ast.arg]:
    args = node.args
    return (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
