"""Flow-sensitive intraprocedural dataflow over statement-ordered CFGs.

The taint rule (D005) walks statements in order but merges branch
environments by fiat and cannot see exit edges.  The A/E/P rule
families need both: branch joins (a fact must hold however control
arrived) and explicit exit-edge modeling (a mutation is only safe when
*every* way out of the function restores it).  This module builds a
statement-granularity control-flow graph over the already-parsed ASTs
and runs a generic monotone forward analysis on it.

Graph model
-----------

Three synthetic nodes frame every function: ``ENTRY``, ``EXIT`` (normal
return / fall-off-the-end), and ``RAISE_EXIT`` (an exception escaping
the function).  Every simple statement becomes one node.  Compound
statements contribute their header (``if``/``while``/``for`` tests bind
or branch) plus the recursively-built bodies.

Exception edges are approximated the way a linter can afford:

* an explicit ``raise`` (and ``assert``) jumps to the innermost
  enclosing handler/finally, or to ``RAISE_EXIT``;
* every statement lexically inside a ``try`` body gets an implicit
  exceptional edge to that try's handlers (and finally), because calls
  inside a guarded region are guarded precisely because they may raise;
* statements *outside* any ``try`` are not assumed to raise — without
  that restriction every mutation would trivially reach ``RAISE_EXIT``
  and the E-series rule would flag all code everywhere.

``finally`` blocks are entered from normal completion, from ``return``,
and from exceptional paths; their exits fan out to the corresponding
continuations (an over-approximation of the runtime's duplicated
finally contexts, which is the conservative direction for a monotone
analysis).

The analysis driver (:func:`analyze_forward`) is a textbook worklist
fixpoint: clients supply the transfer function and the per-value join;
environments are plain ``dict``s from local names to client facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

ENTRY = 0
EXIT = 1
RAISE_EXIT = 2


@dataclass
class CFG:
    """Statement-granularity control-flow graph of one function body."""

    #: Node id -> statement.  Synthetic nodes (ENTRY/EXIT/RAISE_EXIT)
    #: carry ``None``.
    stmts: Dict[int, Optional[ast.stmt]] = field(default_factory=dict)
    succs: Dict[int, Set[int]] = field(default_factory=dict)

    def node_ids(self) -> Iterator[int]:
        return iter(self.stmts)

    def preds(self) -> Dict[int, Set[int]]:
        result: Dict[int, Set[int]] = {node: set() for node in self.stmts}
        for node, outs in self.succs.items():
            for succ in outs:
                result.setdefault(succ, set()).add(node)
        return result

    def can_reach(self, target: int) -> Set[int]:
        """All nodes from which ``target`` is reachable (excl. target)."""
        preds = self.preds()
        seen: Set[int] = set()
        stack = list(preds.get(target, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(preds.get(node, ()))
        return seen


@dataclass
class _TryFrame:
    """One enclosing ``try``: where in-body exceptions are routed."""

    handler_entries: List[int] = field(default_factory=list)
    finally_entry: Optional[int] = None


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        for node in (ENTRY, EXIT, RAISE_EXIT):
            self.cfg.stmts[node] = None
            self.cfg.succs[node] = set()
        self._next_id = RAISE_EXIT + 1
        self._loops: List[Tuple[int, List[int]]] = []  # (head, break srcs)
        self._tries: List[_TryFrame] = []

    # -- primitives ----------------------------------------------------
    def new_node(self, stmt: ast.stmt) -> int:
        node = self._next_id
        self._next_id += 1
        self.cfg.stmts[node] = stmt
        self.cfg.succs[node] = set()
        return node

    def new_join(self) -> int:
        """Synthetic no-op node (handler/finally entry point)."""
        node = self._next_id
        self._next_id += 1
        self.cfg.stmts[node] = None
        self.cfg.succs[node] = set()
        return node

    def edge(self, src: int, dst: int) -> None:
        self.cfg.succs[src].add(dst)

    def _connect(self, frontier: Sequence[int], dst: int) -> None:
        for src in frontier:
            self.edge(src, dst)

    def _exception_targets(self) -> List[int]:
        """Where an exception raised *here* goes first."""
        for frame in reversed(self._tries):
            targets = list(frame.handler_entries)
            if frame.finally_entry is not None:
                targets.append(frame.finally_entry)
            if targets:
                return targets
        return [RAISE_EXIT]

    def _route_exception(self, node: int) -> None:
        for target in self._exception_targets():
            self.edge(node, target)

    # -- statement lowering --------------------------------------------
    def build_body(
        self, stmts: Sequence[ast.stmt], frontier: List[int]
    ) -> List[int]:
        """Lower ``stmts``; returns the fall-through frontier."""
        for stmt in stmts:
            if not frontier:
                # Unreachable code after return/raise/break: keep
                # lowering so facts exist, but nothing flows in.
                frontier = []
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _build_stmt(
        self, stmt: ast.stmt, frontier: List[int]
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            head = self.new_node(stmt)
            self._connect(frontier, head)
            then_out = self.build_body(stmt.body, [head])
            else_out = self.build_body(stmt.orelse, [head])
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self.new_node(stmt)
            self._connect(frontier, head)
            breaks: List[int] = []
            self._loops.append((head, breaks))
            body_out = self.build_body(stmt.body, [head])
            self._loops.pop()
            self._connect(body_out, head)
            else_out = self.build_body(stmt.orelse, [head])
            return (else_out if stmt.orelse else [head]) + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self.new_node(stmt)
            self._connect(frontier, head)
            return self.build_body(stmt.body, [head])
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            node = self.new_node(stmt)
            self._connect(frontier, node)
            if isinstance(stmt, ast.Return):
                self._route_return(node)
                return []
            if isinstance(stmt, ast.Raise):
                self._route_exception(node)
                return []
            # assert: may raise, may fall through.
            self._route_exception(node)
            return [node]
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self.new_node(stmt)
            self._connect(frontier, node)
            if self._loops:
                head, breaks = self._loops[-1]
                if isinstance(stmt, ast.Break):
                    breaks.append(node)
                else:
                    self.edge(node, head)
            return []
        # Simple statement (incl. nested def/class, treated opaquely).
        node = self.new_node(stmt)
        self._connect(frontier, node)
        if self._tries:
            # Anything inside a guarded region may raise into it.
            self._route_exception(node)
        return [node]

    def _route_return(self, node: int) -> None:
        # A return runs every enclosing finally before leaving.
        for frame in reversed(self._tries):
            if frame.finally_entry is not None:
                self.edge(node, frame.finally_entry)
                return
        self.edge(node, EXIT)

    def _build_try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        head = self.new_join()
        self._connect(frontier, head)

        frame = _TryFrame(
            finally_entry=self.new_join() if stmt.finalbody else None,
        )
        frame.handler_entries = [self.new_join() for _ in stmt.handlers]

        self._tries.append(frame)
        body_out = self.build_body(stmt.body, [head])
        self._tries.pop()

        # try/else runs unguarded; handler bodies raise into *outer*
        # frames (the frame is popped before either is lowered).
        outs = list(self.build_body(stmt.orelse, body_out))
        for handler, entry in zip(stmt.handlers, frame.handler_entries):
            outs.extend(self.build_body(handler.body, [entry]))

        if frame.finally_entry is not None:
            self._connect(outs, frame.finally_entry)
            finally_out = self.build_body(
                stmt.finalbody, [frame.finally_entry]
            )
            exits = finally_out or [frame.finally_entry]
            # The finally's exit continues normally, or re-propagates
            # when it was entered exceptionally / from a return — an
            # over-approximation of the duplicated finally contexts.
            for src in exits:
                self.edge(src, EXIT)
                for target in self._exception_targets():
                    self.edge(src, target)
            return list(exits)
        return outs


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of a function (or module treated as a zero-arg function)."""
    builder = _Builder()
    body = getattr(fn, "body", [])
    out = builder.build_body(list(body), [ENTRY])
    builder._connect(out, EXIT)
    return builder.cfg


# ----------------------------------------------------------------------
# Generic forward analysis
# ----------------------------------------------------------------------

Fact = TypeVar("Fact")
Env = Dict[str, Fact]


def join_envs(
    a: Env[Fact],
    b: Env[Fact],
    join_value: Callable[[Optional[Fact], Optional[Fact]], Optional[Fact]],
) -> Env[Fact]:
    merged: Env[Fact] = {}
    for name in a.keys() | b.keys():
        value = join_value(a.get(name), b.get(name))
        if value is not None:
            merged[name] = value
    return merged


@dataclass
class FlowResult:
    """Fixpoint environments of one function."""

    cfg: CFG
    #: Environment *before* each node executes.
    before: Dict[int, Dict[str, object]]
    #: ``id(stmt)`` -> node id, for O(1) environment lookups.
    stmt_nodes: Dict[int, int] = field(default_factory=dict)

    def env_at(self, stmt: ast.stmt) -> Dict[str, object]:
        node = self.stmt_nodes.get(id(stmt))
        if node is None:
            return {}
        return self.before.get(node, {})

    def node_of(self, stmt: ast.stmt) -> Optional[int]:
        return self.stmt_nodes.get(id(stmt))


def analyze_forward(
    fn: ast.AST,
    *,
    initial: Dict[str, object],
    transfer: Callable[[ast.stmt, Dict[str, object]], Dict[str, object]],
    join_value: Callable[[Optional[object], Optional[object]], Optional[object]],
    max_passes: int = 50,
) -> FlowResult:
    """Run a monotone forward analysis to fixpoint over ``fn``'s CFG.

    ``transfer`` receives the statement and the entry environment and
    returns the exit environment (it must not mutate its input).
    ``join_value`` merges facts at control-flow joins; either side may
    be ``None`` (the name is unbound on that path).  ``max_passes``
    bounds worklist iterations per node so a non-monotone client cannot
    loop forever.
    """
    cfg = build_cfg(fn)
    before: Dict[int, Dict[str, object]] = {ENTRY: dict(initial)}
    visits: Dict[int, int] = {}
    worklist: List[int] = [ENTRY]
    while worklist:
        node = worklist.pop(0)
        if visits.get(node, 0) >= max_passes:
            continue
        visits[node] = visits.get(node, 0) + 1
        env = before.get(node, {})
        stmt = cfg.stmts.get(node)
        out = transfer(stmt, dict(env)) if stmt is not None else dict(env)
        for succ in cfg.succs.get(node, ()):
            prior = before.get(succ)
            merged = out if prior is None else join_envs(
                prior, out, join_value
            )
            if prior is None or merged != prior:
                before[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    stmt_nodes = {
        id(node_stmt): node
        for node, node_stmt in cfg.stmts.items()
        if node_stmt is not None
    }
    return FlowResult(cfg=cfg, before=before, stmt_nodes=stmt_nodes)


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef]:
    """Every (sync) function/method definition in the module, outermost
    first, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node
