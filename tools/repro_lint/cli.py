"""Command-line entry point: ``python -m tools.repro_lint src tests ...``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.repro_lint.config import load_config
from tools.repro_lint.engine import run_lint
from tools.repro_lint.rules import all_rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & invariant analyzer for the "
            "mixed-cell-height legalization reproduction "
            "(see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "targets", nargs="*", default=["src"],
        help="files or directories to lint (relative to --root)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    root = Path(args.root).resolve()
    missing = [t for t in args.targets if not (root / t).exists()]
    if missing:
        print(
            f"repro-lint: no such target(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    config = load_config(root)
    violations = run_lint(root, args.targets, config)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repro-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
