"""Command-line entry point: ``python -m tools.repro_lint src tests ...``.

Exit codes: 0 clean, 1 findings (or sanitizer divergence), 2 internal
error — a broken analyzer, bad baseline, or missing target, so CI can
tell a dirty tree from a broken tool.

``python -m tools.repro_lint sanitize ...`` dispatches to the runtime
determinism sanitizer (:mod:`tools.repro_lint.sanitize`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.repro_lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.repro_lint.config import load_config
from tools.repro_lint.engine import lint
from tools.repro_lint.formats import render_json, render_sarif, render_text
from tools.repro_lint.rules import all_rules

DEFAULT_TARGETS = ["src", "tests", "benchmarks", "tools"]


def main(argv: Optional[List[str]] = None) -> int:
    args_list = list(sys.argv[1:] if argv is None else argv)
    if args_list and args_list[0] == "sanitize":
        from tools.repro_lint.sanitize import sanitize_main

        return sanitize_main(args_list[1:])

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Whole-program determinism & invariant analyzer for the "
            "mixed-cell-height legalization reproduction "
            "(see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "targets", nargs="*", default=DEFAULT_TARGETS,
        help="files or directories to lint (relative to --root; "
             f"default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="findings format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write findings to FILE instead of stdout",
    )
    parser.add_argument(
        "--cache", metavar="FILE", nargs="?", const=".repro-lint-cache.json",
        help="incremental cache file (default location when given "
             "without a value: .repro-lint-cache.json under --root)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in this baseline file; "
             "only new findings fail the run",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="capture current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-rule counts, cache mode, and wall time to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(args_list)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    root = Path(args.root).resolve()
    missing = [t for t in args.targets if not (root / t).exists()]
    if missing:
        print(
            f"repro-lint: no such target(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    config = load_config(root)
    cache_path: Optional[Path] = None
    if args.cache is not None:
        cache_path = Path(args.cache)
        if not cache_path.is_absolute():
            cache_path = root / cache_path
    try:
        result = lint(root, args.targets, config, cache_path=cache_path)
    except Exception as exc:  # noqa: BLE001 - analyzer crash != findings
        print(
            f"repro-lint: internal analyzer error: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2
    violations = result.violations

    if args.write_baseline:
        write_baseline(_resolve(root, args.write_baseline), violations)
        print(
            f"repro-lint: baseline of {len(violations)} finding(s) written "
            f"to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    fixed = 0
    if args.baseline:
        try:
            known = load_baseline(_resolve(root, args.baseline))
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        violations, fixed = apply_baseline(violations, known)

    if args.format == "sarif":
        rendered = render_sarif(violations, all_rules())
    elif args.format == "json":
        rendered = render_json(violations, result.stats.as_dict())
    else:
        rendered = render_text(violations)

    if args.output:
        out_path = _resolve(root, args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            rendered + ("\n" if rendered else ""), encoding="utf-8"
        )
    elif rendered:
        print(rendered)

    if args.stats:
        stats = result.stats
        counts = ", ".join(
            f"{rule}={count}" for rule, count in sorted(stats.per_rule.items())
        ) or "none"
        print(
            f"repro-lint: {stats.files_total} file(s), "
            f"{stats.files_replayed} replayed from cache "
            f"({stats.cache_mode}), {stats.wall_seconds:.3f}s; "
            f"findings: {counts}",
            file=sys.stderr,
        )
    if fixed:
        print(
            f"repro-lint: {fixed} baseline entr(y/ies) no longer found; "
            f"consider re-capturing with --write-baseline",
            file=sys.stderr,
        )
    if violations:
        print(f"repro-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


def _resolve(root: Path, value: str) -> Path:
    path = Path(value)
    return path if path.is_absolute() else root / path


if __name__ == "__main__":
    sys.exit(main())
