"""Successive shortest paths (SSP) min-cost-flow solver.

A simple, well-understood reference solver used to cross-check the
network simplex and to solve small instances in tests.  Negative arc
costs are handled by the classic transformation of saturating every
negative arc up-front (shifting node excesses), after which the residual
graph is non-negative and plain Dijkstra-with-potentials applies.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.flow.graph import FlowGraph, FlowResult
from repro.flow.network_simplex import InfeasibleFlowError


def solve_ssp(graph: FlowGraph) -> FlowResult:
    """Solve ``graph`` by successive shortest paths.

    Raises:
        InfeasibleFlowError: when the supplies cannot be routed.
        UnboundedFlowError: when a negative-cost cycle makes the optimum
            unbounded below.
    """
    if graph.total_supply_imbalance() != 0:
        raise ValueError(
            f"supplies sum to {graph.total_supply_imbalance()}, expected 0"
        )

    n = graph.num_nodes
    caps = graph.resolved_capacities()
    num_edges = graph.num_edges

    # Residual representation: arc 2*e is edge e forward, 2*e+1 backward.
    arc_to: List[int] = []
    arc_cost: List[int] = []
    arc_residual: List[int] = []
    adjacency: List[List[int]] = [[] for _ in range(n)]
    excess = list(graph.supplies)
    for index, edge in enumerate(graph.edges):
        arc_to.extend((edge.head, edge.tail))
        arc_cost.extend((edge.cost, -edge.cost))
        if edge.cost < 0:
            # Saturate negative arcs so every residual arc has cost >= 0.
            arc_residual.extend((0, caps[index]))
            excess[edge.tail] -= caps[index]
            excess[edge.head] += caps[index]
        else:
            arc_residual.extend((caps[index], 0))
        adjacency[edge.tail].append(2 * index)
        adjacency[edge.head].append(2 * index + 1)

    potentials = [0] * n
    iterations = 0
    while True:
        sources = [v for v in range(n) if excess[v] > 0]
        if not sources:
            break
        path = _dijkstra_augmenting_path(
            n, adjacency, arc_to, arc_cost, arc_residual, potentials, sources, excess
        )
        if path is None:
            raise InfeasibleFlowError("no augmenting path to a deficit node")
        iterations += 1
        source, sink, pred_arc = path
        bottleneck = min(excess[source], -excess[sink])
        node = sink
        while node != source:
            arc = pred_arc[node]
            bottleneck = min(bottleneck, arc_residual[arc])
            node = arc_to[arc ^ 1]
        node = sink
        while node != source:
            arc = pred_arc[node]
            arc_residual[arc] -= bottleneck
            arc_residual[arc ^ 1] += bottleneck
            node = arc_to[arc ^ 1]
        excess[source] -= bottleneck
        excess[sink] += bottleneck

    flows = [arc_residual[2 * e + 1] for e in range(num_edges)]
    cost = sum(f * e.cost for f, e in zip(flows, graph.edges))
    return FlowResult(flows=flows, potentials=potentials, cost=cost,
                      iterations=iterations)


def _dijkstra_augmenting_path(
    n: int,
    adjacency: List[List[int]],
    arc_to: List[int],
    arc_cost: List[int],
    arc_residual: List[int],
    potentials: List[int],
    sources: List[int],
    excess: List[int],
) -> Optional[Tuple[int, int, List[int]]]:
    """Shortest path (by reduced cost) from any source to any deficit node.

    On success updates ``potentials`` in place and returns
    ``(source, sink, pred_arc)`` where ``pred_arc[v]`` is the residual arc
    entering ``v`` on the path.
    """
    INF = float("inf")
    dist: List[float] = [INF] * n
    pred_arc: List[int] = [-1] * n
    origin: List[int] = [-1] * n
    heap: List[Tuple[int, int]] = []
    for source in sources:
        dist[source] = 0
        origin[source] = source
        heapq.heappush(heap, (0, source))

    visited = [False] * n
    best_sink = -1
    while heap:
        d, node = heapq.heappop(heap)
        if visited[node]:
            continue
        visited[node] = True
        if excess[node] < 0:
            best_sink = node
            break
        for arc in adjacency[node]:
            if arc_residual[arc] <= 0:
                continue
            target = arc_to[arc]
            if visited[target]:
                continue
            reduced = arc_cost[arc] + potentials[node] - potentials[target]
            candidate = d + reduced
            if candidate < dist[target]:
                dist[target] = candidate
                pred_arc[target] = arc
                origin[target] = origin[node]
                heapq.heappush(heap, (candidate, target))

    if best_sink < 0:
        return None

    sink_dist = dist[best_sink]
    for node in range(n):
        # Unreached nodes (dist = INF) and unfinalized heap nodes advance by
        # sink_dist; this keeps every residual arc's reduced cost >= 0.
        potentials[node] += int(min(dist[node], sink_dist))
    return origin[best_sink], best_sink, pred_arc
