"""Min-cost bipartite perfect matching.

The maximum-displacement optimization (paper §3.2) needs, per (cell type,
fence) group, a min-cost perfect matching between the group's cells and
the multiset of their current positions.  The paper solves this as a
min-cost flow [20]; we provide that formulation on our own solvers plus a
dense Hungarian-style backend via :func:`scipy.optimize.linear_sum_assignment`
for speed on large groups, selected automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.flow.graph import FlowGraph
from repro.flow.ssp import solve_ssp

#: Largest integer magnitude exactly representable in float64; above this,
#: the scipy backend could mis-rank costs, so the exact solver is forced.
_FLOAT64_EXACT_LIMIT = 2**52


@dataclass
class AssignmentResult:
    """A perfect matching: ``columns[i]`` is the column assigned to row i."""

    columns: List[int]
    cost: int


def min_cost_assignment(
    costs: Sequence[Sequence[int]],
    backend: str = "auto",
) -> AssignmentResult:
    """Solve the square min-cost perfect-matching problem.

    Args:
        costs: square matrix of non-negative integer costs;
            ``costs[i][j]`` is the cost of assigning row ``i`` (a cell) to
            column ``j`` (a position).
        backend: ``"scipy"`` (dense, fast), ``"flow"`` (our exact MCF, as
            in the paper), or ``"auto"`` (scipy unless exactness would be
            lost to float64 rounding).

    Returns:
        The optimal assignment with its exact integer cost.

    Raises:
        ValueError: for a non-square matrix or unknown backend.
    """
    n = len(costs)
    if any(len(row) != n for row in costs):
        raise ValueError("cost matrix must be square")
    if n == 0:
        return AssignmentResult(columns=[], cost=0)

    if backend == "auto":
        max_cost = max(max(abs(int(c)) for c in row) for row in costs)
        backend = "scipy" if max_cost <= _FLOAT64_EXACT_LIMIT else "flow"

    if backend == "scipy":
        columns = _solve_scipy(costs)
    elif backend == "flow":
        columns = _solve_flow(costs)
    else:
        raise ValueError(f"unknown assignment backend {backend!r}")

    total = sum(int(costs[i][columns[i]]) for i in range(n))
    return AssignmentResult(columns=columns, cost=total)


def _solve_scipy(costs: Sequence[Sequence[int]]) -> List[int]:
    from scipy.optimize import linear_sum_assignment

    matrix = np.asarray(costs, dtype=float)
    row_indices, col_indices = linear_sum_assignment(matrix)
    columns = [0] * len(costs)
    for row, col in zip(row_indices, col_indices):
        columns[int(row)] = int(col)
    return columns


def _solve_flow(costs: Sequence[Sequence[int]]) -> List[int]:
    """Paper-style formulation: source -> cells -> positions -> sink MCF."""
    n = len(costs)
    graph = FlowGraph()
    source = graph.add_node(supply=n)
    sink = graph.add_node(supply=-n)
    rows = [graph.add_node() for _ in range(n)]
    cols = [graph.add_node() for _ in range(n)]
    for row in rows:
        graph.add_edge(source, row, capacity=1, cost=0)
    for col in cols:
        graph.add_edge(col, sink, capacity=1, cost=0)
    cell_edges: List[List[int]] = []
    for i in range(n):
        edge_row: List[int] = []
        for j in range(n):
            edge_row.append(
                graph.add_edge(rows[i], cols[j], capacity=1, cost=int(costs[i][j]))
            )
        cell_edges.append(edge_row)

    result = solve_ssp(graph)
    columns = [-1] * n
    for i in range(n):
        for j in range(n):
            if result.flows[cell_edges[i][j]] == 1:
                columns[i] = j
                break
    if any(col < 0 for col in columns):
        raise RuntimeError("flow solution is not a perfect matching")
    return columns


def assignment_cost_matrix(
    n: int, cost_of: Callable[[int, int], int]
) -> List[List[int]]:
    """Materialize an ``n x n`` cost matrix from a cost function."""
    return [[int(cost_of(i, j)) for j in range(n)] for i in range(n)]
