"""Min-cost flow substrate.

The paper solves its matching and fixed-row-fixed-order formulations with
LEMON's network simplex; this subpackage is our from-scratch replacement:

* :mod:`repro.flow.graph` — the flow-network representation;
* :mod:`repro.flow.network_simplex` — primal network simplex with the
  first-eligible pivot rule (the solver configuration named in §3.3.1);
* :mod:`repro.flow.ssp` — successive shortest paths with potentials, a
  simpler reference solver used for cross-checking;
* :mod:`repro.flow.assignment` — min-cost bipartite perfect matching on
  top of the flow solvers (plus a dense scipy backend);
* :mod:`repro.flow.validate` — feasibility/optimality certificates.

All arithmetic is exact (Python integers), so optimality checks are exact
equalities, never tolerances.
"""

from repro.flow.graph import INFINITE, FlowEdge, FlowGraph, FlowResult
from repro.flow.network_simplex import NetworkSimplex, solve_min_cost_flow
from repro.flow.ssp import solve_ssp
from repro.flow.assignment import min_cost_assignment
from repro.flow.validate import (
    check_complementary_slackness,
    check_feasible_flow,
    flow_cost,
)

__all__ = [
    "FlowEdge",
    "FlowGraph",
    "FlowResult",
    "INFINITE",
    "NetworkSimplex",
    "check_complementary_slackness",
    "check_feasible_flow",
    "flow_cost",
    "min_cost_assignment",
    "solve_min_cost_flow",
    "solve_ssp",
]
