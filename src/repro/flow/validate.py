"""Certificates for min-cost-flow solutions.

Because all solver arithmetic is exact, optimality can be *proved* for any
solution by checking primal feasibility plus complementary slackness with
the returned potentials — no tolerance, no reference solver needed.  Tests
lean on these checks heavily.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.flow.graph import FlowGraph, FlowResult


def flow_cost(graph: FlowGraph, flows: Sequence[int]) -> int:
    """Exact total cost of a flow vector."""
    return sum(f * e.cost for f, e in zip(flows, graph.edges))


def check_feasible_flow(graph: FlowGraph, flows: Sequence[int]) -> List[str]:
    """Return a list of feasibility violations (empty when feasible).

    Checks capacity bounds per edge and flow conservation per node against
    the declared supplies.
    """
    problems: List[str] = []
    if len(flows) != graph.num_edges:
        return [f"flow vector has {len(flows)} entries for {graph.num_edges} edges"]

    caps = graph.resolved_capacities()
    for index, (edge, flow) in enumerate(zip(graph.edges, flows)):
        label = edge.name or f"edge#{index}"
        if flow < 0:
            problems.append(f"{label}: negative flow {flow}")
        if flow > caps[index]:
            problems.append(f"{label}: flow {flow} exceeds capacity {caps[index]}")

    balance = list(graph.supplies)
    for edge, flow in zip(graph.edges, flows):
        balance[edge.tail] -= flow
        balance[edge.head] += flow
    for node, residual in enumerate(balance):
        if residual != 0:
            problems.append(f"node {node}: conservation violated by {residual}")
    return problems


def check_complementary_slackness(
    graph: FlowGraph, result: FlowResult
) -> List[str]:
    """Return complementary-slackness violations (empty when optimal).

    With reduced cost ``rc = cost + pi[tail] - pi[head]``:

    * ``flow < capacity`` requires ``rc >= 0``;
    * ``flow > 0`` requires ``rc <= 0``.

    Together with feasibility this certifies optimality of the flow.
    """
    problems = check_feasible_flow(graph, result.flows)
    caps = graph.resolved_capacities()
    pi = result.potentials
    for index, (edge, flow) in enumerate(zip(graph.edges, result.flows)):
        label = edge.name or f"edge#{index}"
        reduced = edge.cost + pi[edge.tail] - pi[edge.head]
        if flow < caps[index] and reduced < 0:
            problems.append(
                f"{label}: reduced cost {reduced} < 0 with slack capacity"
            )
        if flow > 0 and reduced > 0:
            problems.append(f"{label}: reduced cost {reduced} > 0 with positive flow")
    return problems


def assert_optimal(graph: FlowGraph, result: FlowResult) -> None:
    """Raise :class:`AssertionError` when ``result`` is not provably optimal."""
    problems = check_complementary_slackness(graph, result)
    if problems:
        raise AssertionError("; ".join(problems[:10]))
