"""Flow-network representation.

A :class:`FlowGraph` is a directed multigraph with integer node supplies
and integer edge capacities/costs (lower bounds are zero).  "Infinite"
capacity is the sentinel :data:`INFINITE`; solvers replace it with a safe
finite bound derived from the instance (total supply plus total finite
capacity), which is valid whenever the optimum is bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Sentinel capacity meaning "unbounded".
INFINITE = None


@dataclass
class FlowEdge:
    """One directed edge ``tail -> head``.

    Attributes:
        tail: source node id.
        head: target node id.
        capacity: integer upper bound, or :data:`INFINITE`.
        cost: integer cost per unit of flow (may be negative).
        name: optional label used in validation error messages.
    """

    tail: int
    head: int
    capacity: Optional[int]
    cost: int
    name: str = ""


class FlowGraph:
    """A min-cost-flow instance builder.

    Node supplies follow the usual convention: positive supply means the
    node produces flow, negative means it consumes.  A valid instance has
    supplies summing to zero.
    """

    def __init__(self) -> None:
        self.supplies: List[int] = []
        self.edges: List[FlowEdge] = []
        self._names: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def add_node(self, supply: int = 0, name: str = "") -> int:
        """Add a node and return its id."""
        self.supplies.append(int(supply))
        node = len(self.supplies) - 1
        if name:
            if name in self._names:
                raise ValueError(f"duplicate node name {name!r}")
            self._names[name] = node
        return node

    def node_named(self, name: str) -> int:
        """Id of a node registered with ``name``."""
        return self._names[name]

    def add_supply(self, node: int, amount: int) -> None:
        """Increase the supply of ``node`` by ``amount`` (may be negative)."""
        self.supplies[node] += int(amount)

    def add_edge(
        self,
        tail: int,
        head: int,
        capacity: Optional[int],
        cost: int,
        name: str = "",
    ) -> int:
        """Add an edge and return its id.

        Raises:
            ValueError: for negative finite capacity or unknown endpoints.
        """
        n = len(self.supplies)
        if not (0 <= tail < n and 0 <= head < n):
            raise ValueError(f"edge endpoints ({tail}, {head}) out of range")
        if capacity is not None and capacity < 0:
            raise ValueError("edge capacity must be non-negative")
        self.edges.append(FlowEdge(tail, head, capacity, int(cost), name))
        return len(self.edges) - 1

    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.supplies)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def total_supply_imbalance(self) -> int:
        """Sum of supplies; nonzero means the instance is malformed."""
        return sum(self.supplies)

    def infinite_capacity_bound(self) -> int:
        """A finite capacity safely standing in for :data:`INFINITE`.

        Any basic optimal solution routes, through each unbounded edge, at
        most the total flow that bounded edges and supplies can inject;
        the bound below dominates that.
        """
        supply_total = sum(abs(s) for s in self.supplies)
        finite_cap_total = sum(
            e.capacity for e in self.edges if e.capacity is not None
        )
        return supply_total + finite_cap_total + 1

    def resolved_capacities(self) -> List[int]:
        """Per-edge capacities with :data:`INFINITE` replaced by the bound."""
        bound = self.infinite_capacity_bound()
        return [bound if e.capacity is None else e.capacity for e in self.edges]

    def __repr__(self) -> str:
        return f"FlowGraph({self.num_nodes} nodes, {self.num_edges} edges)"


@dataclass
class FlowResult:
    """Solution of a min-cost-flow instance.

    Attributes:
        flows: per-edge flow values, aligned with ``graph.edges``.
        potentials: per-node potentials (dual values) certifying
            optimality; conventions are solver-specific but always satisfy
            complementary slackness as checked by
            :func:`repro.flow.validate.check_complementary_slackness`.
        cost: total cost ``sum(flow_e * cost_e)``.
        iterations: solver iterations (pivots or augmentations).
    """

    flows: List[int]
    potentials: List[int]
    cost: int
    iterations: int = 0

    def flow_on(self, edge: int) -> int:
        return self.flows[edge]


def edges_by_name(graph: FlowGraph) -> Dict[str, int]:
    """Map edge names to edge ids (named edges only)."""
    return {e.name: i for i, e in enumerate(graph.edges) if e.name}
