"""Primal network simplex with the first-eligible pivot rule.

This is the solver configuration the paper names in §3.3.1 ("a network
simplex algorithm with first eligible pivot rule"), reimplemented from
scratch.  The implementation follows the classic strongly-feasible-tree
method (Ahuja, Magnanti & Orlin, *Network Flows*, §11):

* an artificial root with big-cost artificial arcs provides the initial
  strongly feasible spanning tree;
* the entering arc is the first arc violating its optimality condition in
  a cyclic scan (Cunningham's first-eligible rule, guaranteeing finite
  termination on strongly feasible trees);
* the leaving arc is the *last* blocking arc encountered when traversing
  the pivot cycle in its orientation starting from the apex, which
  preserves strong feasibility.

All arithmetic is exact integer arithmetic.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.flow.graph import FlowGraph, FlowResult


class InfeasibleFlowError(Exception):
    """Raised when the instance admits no feasible flow."""


class UnboundedFlowError(Exception):
    """Raised when the instance has unbounded (negative-cycle) optimum."""


class NetworkSimplex:
    """Network simplex solver for one :class:`FlowGraph` instance.

    Usage::

        result = NetworkSimplex(graph).solve()

    The graph is not modified; "infinite" capacities are replaced
    internally by :meth:`FlowGraph.infinite_capacity_bound`.
    """

    def __init__(self, graph: FlowGraph):
        if graph.total_supply_imbalance() != 0:
            raise ValueError(
                f"supplies sum to {graph.total_supply_imbalance()}, expected 0"
            )
        self.graph = graph
        n = graph.num_nodes
        self._root = n

        # Edge arrays: original edges first, then n artificial arcs.
        self._tail: List[int] = [e.tail for e in graph.edges]
        self._head: List[int] = [e.head for e in graph.edges]
        self._cap: List[int] = graph.resolved_capacities()
        self._cost: List[int] = [e.cost for e in graph.edges]
        self._flow: List[int] = [0] * graph.num_edges

        big_cost = 1 + sum(abs(c) for c in self._cost)
        art_cap = graph.infinite_capacity_bound()
        self._num_real_edges = graph.num_edges
        for node, supply in enumerate(graph.supplies):
            if supply >= 0:
                self._tail.append(node)
                self._head.append(self._root)
            else:
                self._tail.append(self._root)
                self._head.append(node)
            self._cap.append(art_cap)
            self._cost.append(big_cost)
            self._flow.append(abs(supply))

        # Spanning-tree state: the initial tree is the star of artificials.
        self._parent: List[Optional[int]] = [self._root] * n + [None]
        self._parent_edge: List[int] = [
            self._num_real_edges + i for i in range(n)
        ] + [-1]
        self._depth: List[int] = [1] * n + [0]
        self._pi: List[int] = [0] * (n + 1)
        for node in range(n):
            edge = self._parent_edge[node]
            # Tree arcs have zero reduced cost: cost + pi[tail] - pi[head] = 0.
            if self._tail[edge] == node:  # node -> root
                self._pi[node] = -big_cost
            else:  # root -> node
                self._pi[node] = big_cost

        # Basic-edge adjacency for subtree rebuilds after pivots.
        self._adj: List[List[int]] = [[] for _ in range(n + 1)]
        for node in range(n):
            edge = self._parent_edge[node]
            self._adj[node].append(edge)
            self._adj[self._root].append(edge)

        self._scan_pos = 0
        self.iterations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(self, max_iterations: Optional[int] = None) -> FlowResult:
        """Run pivots to optimality and return the solution.

        Raises:
            InfeasibleFlowError: when supplies cannot be routed.
            RuntimeError: when ``max_iterations`` is exceeded (a safety
                valve; the algorithm itself is finite).
        """
        num_edges_total = len(self._tail)
        if max_iterations is None:
            # Generous bound; Cunningham's rule is finite but we keep a
            # hard stop so a bug can never hang a run.
            max_iterations = 200 * num_edges_total * max(1, self.graph.num_nodes) + 10000

        while True:
            entering = self._find_entering_edge()
            if entering is None:
                break
            self.iterations += 1
            if self.iterations > max_iterations:
                raise RuntimeError("network simplex exceeded iteration budget")
            self._pivot(entering)

        for edge in range(self._num_real_edges, num_edges_total):
            if self._flow[edge] > 0:
                raise InfeasibleFlowError(
                    "no feasible flow: artificial arc still carries flow"
                )

        flows = self._flow[: self._num_real_edges]
        cost = sum(f * c for f, c in zip(flows, self._cost))
        potentials = self._pi[: self.graph.num_nodes]
        return FlowResult(flows=flows, potentials=potentials, cost=cost,
                          iterations=self.iterations)

    # ------------------------------------------------------------------
    # Pivoting
    # ------------------------------------------------------------------

    def _reduced_cost(self, edge: int) -> int:
        return self._cost[edge] + self._pi[self._tail[edge]] - self._pi[self._head[edge]]

    def _find_entering_edge(self) -> Optional[int]:
        """First-eligible rule: cyclic scan for a violating non-tree arc."""
        num_edges_total = len(self._tail)
        for offset in range(num_edges_total):
            edge = (self._scan_pos + offset) % num_edges_total
            if self._cap[edge] == 0:
                continue  # Zero-capacity arcs can never enter the basis.
            flow = self._flow[edge]
            if flow == 0:
                if self._reduced_cost(edge) < 0:
                    self._scan_pos = (edge + 1) % num_edges_total
                    return edge
            elif flow == self._cap[edge]:
                if self._reduced_cost(edge) > 0:
                    self._scan_pos = (edge + 1) % num_edges_total
                    return edge
            # Arcs strictly between bounds are basic (tree) arcs with zero
            # reduced cost, or degenerate non-tree arcs that cannot improve.
        return None

    def _pivot(self, entering: int) -> None:
        """Perform one pivot with ``entering`` as the entering arc."""
        # Orientation: push along the arc if it sits at its lower bound,
        # against it if it sits at its upper bound.
        forward = self._flow[entering] == 0
        if forward:
            start, end = self._tail[entering], self._head[entering]
        else:
            start, end = self._head[entering], self._tail[entering]

        apex = self._find_apex(start, end)
        # Cycle in flow direction: apex -> ... -> start (down the tree,
        # reversed path), entering arc, end -> ... -> apex (up the tree).
        cycle: List[Tuple[int, bool]] = []  # (edge, traversed_forward)
        down_path = self._path_to_ancestor(start, apex)
        for edge, child in reversed(down_path):
            # Traversing from apex toward `start`: the tree arc is walked
            # from parent to child, i.e. forward iff its head is the child.
            cycle.append((edge, self._head[edge] == child))
        cycle.append((entering, forward))
        for edge, child in self._path_to_ancestor(end, apex):
            # Traversing from `end` up toward apex: forward iff its tail is
            # the child.
            cycle.append((edge, self._tail[edge] == child))

        # Max augmentation and leaving arc: last blocking arc from apex.
        delta: Optional[int] = None
        leaving_index = -1
        for index, (edge, fwd) in enumerate(cycle):
            residual = self._cap[edge] - self._flow[edge] if fwd else self._flow[edge]
            if delta is None or residual < delta:
                delta = residual
                leaving_index = index
            elif residual == delta:
                leaving_index = index
        assert delta is not None
        leaving, _ = cycle[leaving_index]

        if delta > 0:
            for edge, fwd in cycle:
                if fwd:
                    self._flow[edge] += delta
                else:
                    self._flow[edge] -= delta

        if leaving == entering:
            return  # The entering arc moved between its bounds; tree unchanged.

        self._replace_tree_edge(leaving, entering)

    def _find_apex(self, a: int, b: int) -> int:
        """Lowest common ancestor of ``a`` and ``b`` in the tree."""
        while a != b:
            if self._depth[a] >= self._depth[b]:
                a = self._parent[a]  # type: ignore[assignment]
            else:
                b = self._parent[b]  # type: ignore[assignment]
        return a

    def _path_to_ancestor(self, node: int, ancestor: int) -> List[Tuple[int, int]]:
        """Tree path as ``(edge, child_node)`` pairs from ``node`` up."""
        path: List[Tuple[int, int]] = []
        while node != ancestor:
            path.append((self._parent_edge[node], node))
            node = self._parent[node]  # type: ignore[assignment]
        return path

    def _replace_tree_edge(self, leaving: int, entering: int) -> None:
        """Swap arcs in the basis and rebuild the detached subtree."""
        self._adj[self._tail[leaving]].remove(leaving)
        self._adj[self._head[leaving]].remove(leaving)
        self._adj[self._tail[entering]].append(entering)
        self._adj[self._head[entering]].append(entering)

        # The child side of the leaving arc is detached from the root.
        if self._parent[self._tail[leaving]] == self._head[leaving]:
            detached_seed = self._tail[leaving]
        else:
            detached_seed = self._head[leaving]

        detached = self._collect_component(detached_seed, avoid=entering)
        # One endpoint of the entering arc lies in the detached component;
        # it becomes the component's attachment point.
        if self._tail[entering] in detached:
            attach = self._tail[entering]
        else:
            attach = self._head[entering]
        self._parent[attach] = (
            self._head[entering] if self._tail[entering] == attach
            else self._tail[entering]
        )
        self._parent_edge[attach] = entering
        self._rebuild_subtree(attach, detached)

    def _collect_component(self, seed: int, avoid: int) -> Set[int]:
        """Nodes reachable from ``seed`` over basic arcs, skipping ``avoid``."""
        seen = {seed}
        stack = [seed]
        while stack:
            node = stack.pop()
            for edge in self._adj[node]:
                if edge == avoid:
                    continue
                other = self._head[edge] if self._tail[edge] == node else self._tail[edge]
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        return seen

    def _rebuild_subtree(self, attach: int, component: Set[int]) -> None:
        """Recompute parent/depth/potentials inside ``component``.

        ``attach`` already has its parent/parent_edge set to the entering
        arc; everything else in the component re-hangs below it.
        """
        parent_of_attach = self._parent[attach]
        assert parent_of_attach is not None
        self._depth[attach] = self._depth[parent_of_attach] + 1
        edge = self._parent_edge[attach]
        if self._tail[edge] == attach:
            self._pi[attach] = self._pi[self._head[edge]] - self._cost[edge]
        else:
            self._pi[attach] = self._pi[self._tail[edge]] + self._cost[edge]

        stack = [attach]
        visited = {attach}
        while stack:
            node = stack.pop()
            for edge in self._adj[node]:
                other = self._head[edge] if self._tail[edge] == node else self._tail[edge]
                if other in visited or other not in component:
                    continue
                if other == self._parent[node] and self._parent_edge[node] == edge:
                    continue
                visited.add(other)
                self._parent[other] = node
                self._parent_edge[other] = edge
                self._depth[other] = self._depth[node] + 1
                if self._tail[edge] == node:
                    self._pi[other] = self._pi[node] + self._cost[edge]
                else:
                    self._pi[other] = self._pi[node] - self._cost[edge]
                stack.append(other)


def solve_min_cost_flow(graph: FlowGraph) -> FlowResult:
    """Solve ``graph`` with :class:`NetworkSimplex` (convenience wrapper)."""
    return NetworkSimplex(graph).solve()
