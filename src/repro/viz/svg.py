"""SVG rendering of designs and placements.

No plotting library is assumed; the functions emit plain SVG strings.
Coordinates are mapped so one site is ``pixels_per_site`` px wide and one
row ``pixels_per_row`` px tall, with y flipped (row 0 at the bottom, as in
the paper's figures).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.model.placement import Placement

_HEIGHT_COLORS = {
    1: "#9ecae1",
    2: "#fdae6b",
    3: "#a1d99b",
    4: "#bcbddc",
}
_FENCE_COLORS = ["#fee0d2", "#e5f5e0", "#deebf7", "#fff7bc"]


class _SvgBuilder:
    def __init__(self, width: float, height: float):
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
            f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
            f'<rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" '
            f'fill="white"/>',
        ]

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             stroke: str = "#555", opacity: float = 1.0,
             stroke_width: float = 0.5) -> None:
        self.parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}" '
            f'fill-opacity="{opacity}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, stroke: str,
             width: float = 1.0) -> None:
        self.parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(self, x: float, y: float, content: str, size: float = 10.0) -> None:
        self.parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif">{content}</text>'
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def render_placement_svg(
    placement: Placement,
    pixels_per_site: float = 4.0,
    pixels_per_row: float = 12.0,
    show_rails: bool = True,
    highlight: Optional[Iterable[int]] = None,
) -> str:
    """Render a placement: fences, rails, and cells colored by height."""
    design = placement.design
    svg = _SvgBuilder(
        design.num_sites * pixels_per_site, design.num_rows * pixels_per_row
    )

    def to_px(x_sites: float, y_rows: float) -> Tuple[float, float]:
        return (
            x_sites * pixels_per_site,
            svg.height - y_rows * pixels_per_row,
        )

    for index, fence in enumerate(design.fences):
        for rect in fence.rects:
            x, y = to_px(rect.xlo, rect.yhi)
            svg.rect(
                x, y, rect.width * pixels_per_site, rect.height * pixels_per_row,
                fill=_FENCE_COLORS[index % len(_FENCE_COLORS)],
                stroke="#c33", stroke_width=1.0,
            )

    if show_rails:
        x_scale = pixels_per_site / design.site_width
        y_scale = pixels_per_row / design.row_height
        for rail in design.rails.rails:
            if rail.orientation == "h":
                for stripe in rail.stripes_in(rail.span.lo, rail.span.hi):
                    y_px = svg.height - stripe.hi * y_scale
                    svg.rect(0, y_px, svg.width,
                             max(1.0, (stripe.hi - stripe.lo) * y_scale),
                             fill="#e6550d", stroke="none", opacity=0.35)
            else:
                for stripe in rail.stripes_in(rail.span.lo, rail.span.hi):
                    x_px = stripe.lo * x_scale
                    svg.rect(x_px, 0,
                             max(1.0, (stripe.hi - stripe.lo) * x_scale),
                             svg.height, fill="#756bb1", stroke="none",
                             opacity=0.35)

    chosen = set(highlight or ())
    for cell in range(design.num_cells):
        cell_type = design.cell_type_of(cell)
        rect = placement.rect(cell)
        x, y = to_px(rect.xlo, rect.yhi)
        fill = (
            "#e34a33" if cell in chosen
            else _HEIGHT_COLORS.get(cell_type.height, "#cccccc")
        )
        svg.rect(
            x, y, rect.width * pixels_per_site, rect.height * pixels_per_row,
            fill=fill,
        )
    return svg.render()


def render_displacement_svg(
    placement: Placement,
    cells: Optional[Sequence[int]] = None,
    pixels_per_site: float = 4.0,
    pixels_per_row: float = 12.0,
) -> str:
    """Fig. 6 style: cells plus red lines to their GP positions."""
    design = placement.design
    base = render_placement_svg(
        placement, pixels_per_site, pixels_per_row,
        show_rails=False, highlight=cells,
    )
    lines: List[str] = []
    height_px = design.num_rows * pixels_per_row
    for cell in cells if cells is not None else range(design.num_cells):
        cell_type = design.cell_type_of(cell)
        cx = (placement.x[cell] + cell_type.width / 2.0) * pixels_per_site
        cy = height_px - (placement.y[cell] + cell_type.height / 2.0) * pixels_per_row
        gx = (design.gp_x[cell] + cell_type.width / 2.0) * pixels_per_site
        gy = height_px - (design.gp_y[cell] + cell_type.height / 2.0) * pixels_per_row
        lines.append(
            f'<line x1="{cx:.2f}" y1="{cy:.2f}" x2="{gx:.2f}" y2="{gy:.2f}" '
            f'stroke="#d62728" stroke-width="1.2" stroke-opacity="0.8"/>'
        )
    return base.replace("</svg>", "\n".join(lines) + "\n</svg>")
