"""Placement visualization (dependency-free SVG writer).

Renders placements in the style of the paper's figures: cell rectangles
colored by height, fence regions, P/G rail stripes, and the red
displacement vectors of Fig. 6 connecting cells to their GP positions.
"""

from repro.viz.svg import render_placement_svg, render_displacement_svg

__all__ = ["render_displacement_svg", "render_placement_svg"]
