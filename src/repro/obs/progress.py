"""Streaming progress events for long legalization runs.

A :class:`ProgressEmitter` turns the run's milestones into structured
events — phase transitions, cells placed / total, displacement-so-far,
shard and worker heartbeats, deferred/re-evaluation counters, and a
monotonic-clock ETA — delivered to an in-process callback and/or a
JSONL sink while the run is still going.  A stalled worker or a
pathological window is visible from the event stream long before the
run finishes.

Events are **observational only**: emitting them never changes the
legalization result.  The emitter is injected next to the tracer and
recorder (see :func:`repro.core.legalizer.legalize`); the shared
:data:`NULL_PROGRESS` null object is the default, so un-instrumented
runs pay one attribute read per milestone.  Expensive event fields
(displacement-so-far is an O(placed) sum) are passed as callables and
only evaluated when the throttle actually lets an event through.

Event schema (one JSON object per line on the sink)::

    {"event": "phase", "phase": "mgl", "elapsed": 0.01, ...}
    {"event": "cells", "placed": 512, "total": 5634, "disp": 812.4,
     "eta_seconds": 12.3, "elapsed": 1.52, ...}
    {"event": "heartbeat", "kind": "shard", "shard": 2, ...}

``elapsed`` is seconds since the emitter was created, measured on the
sanctioned monotonic clock (:mod:`repro.obs.clock`) — never wall time.
All other fields are JSON scalars; extra keyword fields pass through
verbatim, so call sites can attach counters (re-evaluations, deferred
cells, live workers) without schema churn.
"""

from __future__ import annotations

import json
from typing import IO, Callable, Dict, Optional, Union

from repro.obs.clock import monotonic

__all__ = [
    "NULL_PROGRESS",
    "NullProgress",
    "ProgressEmitter",
    "ProgressEvent",
    "render_event",
]

#: One emitted event: JSON-scalar values keyed by field name.
ProgressEvent = Dict[str, object]

#: Extra event fields are JSON scalars so every sink line is lossless.
FieldValue = Union[bool, int, float, str, None]

#: Displacement-so-far is expensive to compute; call sites pass a thunk
#: and the emitter only invokes it for events that pass the throttle.
DispValue = Union[float, Callable[[], float], None]


class NullProgress:
    """Zero-overhead default emitter (and the emitter interface).

    Every method is a no-op; instrumented code gates any per-event
    computation it cannot defer behind :attr:`enabled`.
    """

    enabled: bool = False

    def phase(self, name: str, **fields: FieldValue) -> None:
        """Record entry into a named run phase (always emitted)."""
        return None

    def cells(
        self,
        placed: int,
        total: int,
        disp: DispValue = None,
        **fields: FieldValue,
    ) -> None:
        """Record placement progress (throttled; final event always out)."""
        return None

    def heartbeat(self, kind: str, **fields: FieldValue) -> None:
        """Record a liveness signal from a shard/worker (always emitted)."""
        return None

    def close(self) -> None:
        """Flush the sink, if any."""
        return None


#: Shared default instance; modules use this when no emitter is injected.
NULL_PROGRESS = NullProgress()


class ProgressEmitter(NullProgress):
    """The recording emitter: callback and/or JSONL sink delivery.

    Args:
        callback: called with each event dict, in emission order.
        sink: text stream receiving one JSON object per line, flushed
            per event so ``tail -f`` works on a live run.
        min_interval: minimum seconds between ``cells`` events (phase
            transitions and heartbeats always go out); 0 emits every
            update.
    """

    enabled = True

    def __init__(
        self,
        callback: Optional[Callable[[ProgressEvent], None]] = None,
        sink: Optional[IO[str]] = None,
        min_interval: float = 0.5,
    ) -> None:
        self.callback = callback
        self.sink = sink
        self.min_interval = min_interval
        self.events_emitted = 0
        self._t0 = monotonic()
        self._last_cells = self._t0 - min_interval

    # ------------------------------------------------------------------

    def phase(self, name: str, **fields: FieldValue) -> None:
        event: ProgressEvent = {"event": "phase", "phase": name}
        event.update(fields)
        self._emit(event, monotonic())

    def cells(
        self,
        placed: int,
        total: int,
        disp: DispValue = None,
        **fields: FieldValue,
    ) -> None:
        now = monotonic()
        final = placed >= total
        if not final and now - self._last_cells < self.min_interval:
            return
        self._last_cells = now
        event: ProgressEvent = {
            "event": "cells",
            "placed": placed,
            "total": total,
        }
        value = disp() if callable(disp) else disp
        if value is not None:
            event["disp"] = round(float(value), 3)
        elapsed = now - self._t0
        if 0 < placed < total and elapsed > 0:
            remaining = (total - placed) * elapsed / placed
            event["eta_seconds"] = round(remaining, 3)
        event.update(fields)
        self._emit(event, now)

    def heartbeat(self, kind: str, **fields: FieldValue) -> None:
        event: ProgressEvent = {"event": "heartbeat", "kind": kind}
        event.update(fields)
        self._emit(event, monotonic())

    def close(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    # ------------------------------------------------------------------

    def _emit(self, event: ProgressEvent, now: float) -> None:
        event["elapsed"] = round(now - self._t0, 6)
        self.events_emitted += 1
        if self.callback is not None:
            self.callback(event)
        if self.sink is not None:
            self.sink.write(json.dumps(event, sort_keys=True) + "\n")
            self.sink.flush()


def render_event(event: ProgressEvent) -> str:
    """One human-readable line per event (the ``--progress`` tty view)."""
    elapsed = event.get("elapsed", 0.0)
    stamp = f"[{float(elapsed):8.2f}s]" if isinstance(
        elapsed, (int, float)
    ) else "[       ?]"
    kind = event.get("event")
    skip = {"event", "elapsed"}
    if kind == "phase":
        head = f"{stamp} phase {event.get('phase')}"
        skip.add("phase")
    elif kind == "cells":
        placed, total = event.get("placed", 0), event.get("total", 0)
        head = f"{stamp} placed {placed}/{total}"
        if isinstance(placed, int) and isinstance(total, int) and total:
            head += f" ({100.0 * placed / total:.1f}%)"
        if "disp" in event:
            head += f" disp {event['disp']}"
            skip.add("disp")
        if "eta_seconds" in event:
            head += f" eta {event['eta_seconds']}s"
            skip.add("eta_seconds")
        skip.update(("placed", "total"))
    else:
        head = f"{stamp} {event.get('kind', kind)}"
        skip.add("kind")
    extras = " ".join(
        f"{key}={event[key]}" for key in sorted(event) if key not in skip
    )
    return f"{head} {extras}".rstrip()
