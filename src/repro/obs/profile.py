"""Span profiles: time attribution folded out of a trace forest.

A profile answers "where did the run spend its time" from the span tree
alone: per-kind **self** time (the span's duration minus its children's
— the time the span itself burned), **total** time, and counts, plus
the same self-time attributed per worker (from the non-structural
``meta["worker"]``) and per shard (from the nearest enclosing ``shard``
/ ``reconcile`` span).  The fold also produces a collapsed-stack export
— the ``stack;sub;leaf <microseconds>`` lines flamegraph.pl and
speedscope load directly — so one traced run renders as a flamegraph
without any extra tooling.

Profiles are plain data: :meth:`SpanProfile.as_dict` /
:func:`profile_from_dict` round-trip through JSON (the run store keeps
one per run), :func:`diff_profiles` renders the delta between two runs,
and :func:`load_trace_jsonl` rebuilds a span forest from the
``trace.jsonl`` a run directory already contains — so ``repro report
--profile`` works on any previously recorded run.

Timing caveat: spans merged from worker processes carry synthetic start
times but true durations (see ``SpanTracer.attach_payloads``), so their
self time is exact while their placement on the timeline is not — which
is fine, because profiles never read the timeline, only durations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, cast

from repro.obs.tracer import AttrValue, Span

__all__ = [
    "ProfileRow",
    "SpanProfile",
    "diff_profiles",
    "fold_spans",
    "load_trace_jsonl",
    "profile_from_dict",
    "render_profile",
]


@dataclass
class ProfileRow:
    """Aggregate for one span kind."""

    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0


class SpanProfile:
    """The folded profile: per-kind rows plus attribution tables."""

    def __init__(self) -> None:
        self.kinds: Dict[str, ProfileRow] = {}
        #: Self-seconds per worker label ("main", "w0", "w1", …) per kind.
        self.by_worker: Dict[str, Dict[str, float]] = {}
        #: Self-seconds per shard label ("shard0", …, "reconcile", "-").
        self.by_shard: Dict[str, Dict[str, float]] = {}
        #: Collapsed call stacks: ";"-joined span path -> self seconds.
        self.collapsed: Dict[str, float] = {}
        self.span_count = 0
        self.total_seconds = 0.0

    # -- exports -------------------------------------------------------

    def collapsed_stacks(self) -> str:
        """flamegraph.pl / speedscope "folded stacks" text.

        One ``path;to;span <value>`` line per distinct stack, value in
        integer microseconds, sorted by path for diff-stable output.
        """
        lines = [
            f"{stack} {max(1, round(seconds * 1e6))}"
            for stack, seconds in sorted(self.collapsed.items())
            if seconds > 0.0
        ]
        return "\n".join(lines) + "\n" if lines else ""

    def as_dict(self) -> Dict[str, object]:
        """JSON form (the run store's ``span_profile.json``)."""
        return {
            "span_count": self.span_count,
            "total_seconds": round(self.total_seconds, 6),
            "kinds": {
                kind: {
                    "count": row.count,
                    "total_seconds": round(row.total_seconds, 6),
                    "self_seconds": round(row.self_seconds, 6),
                }
                for kind, row in sorted(self.kinds.items())
            },
            "by_worker": {
                label: {
                    kind: round(seconds, 6)
                    for kind, seconds in sorted(table.items())
                }
                for label, table in sorted(self.by_worker.items())
            },
            "by_shard": {
                label: {
                    kind: round(seconds, 6)
                    for kind, seconds in sorted(table.items())
                }
                for label, table in sorted(self.by_shard.items())
            },
            "collapsed": {
                stack: round(seconds, 6)
                for stack, seconds in sorted(self.collapsed.items())
            },
        }


def profile_from_dict(payload: Dict[str, object]) -> SpanProfile:
    """Rebuild a profile from :meth:`SpanProfile.as_dict` JSON."""
    profile = SpanProfile()
    count = payload.get("span_count", 0)
    profile.span_count = int(count) if isinstance(count, (int, float)) else 0
    total = payload.get("total_seconds", 0.0)
    profile.total_seconds = (
        float(total) if isinstance(total, (int, float)) else 0.0
    )
    kinds = payload.get("kinds")
    if isinstance(kinds, dict):
        for kind, row in kinds.items():
            if not isinstance(row, dict):
                continue
            profile.kinds[str(kind)] = ProfileRow(
                count=int(row.get("count", 0)),
                total_seconds=float(row.get("total_seconds", 0.0)),
                self_seconds=float(row.get("self_seconds", 0.0)),
            )
    for field_name in ("by_worker", "by_shard"):
        table = payload.get(field_name)
        if isinstance(table, dict):
            out = getattr(profile, field_name)
            for label, sub in table.items():
                if isinstance(sub, dict):
                    out[str(label)] = {
                        str(kind): float(cast(float, seconds))
                        for kind, seconds in sub.items()
                    }
    collapsed = payload.get("collapsed")
    if isinstance(collapsed, dict):
        profile.collapsed = {
            str(stack): float(cast(float, seconds))
            for stack, seconds in collapsed.items()
        }
    return profile


def fold_spans(roots: Sequence[Span]) -> SpanProfile:
    """Fold a span forest into a :class:`SpanProfile`.

    Self time is ``duration - sum(child durations)`` clamped at zero
    (workers' merged spans can make a parent's recorded window slightly
    tighter than its children's summed durations).  Shard attribution
    follows the nearest enclosing ``shard`` span's ``index`` attribute,
    with the ``reconcile`` subtree its own bucket and everything else
    under ``"-"``; worker attribution reads the non-structural
    ``meta["worker"]`` stamped on merged spans.
    """
    profile = SpanProfile()

    def visit(span: Span, path: str, shard_label: str) -> None:
        profile.span_count += 1
        stack = f"{path};{span.name}" if path else span.name
        duration = span.duration or 0.0
        children_total = sum(
            child.duration or 0.0 for child in span.children
        )
        self_seconds = max(0.0, duration - children_total)

        row = profile.kinds.setdefault(span.name, ProfileRow())
        row.count += 1
        row.total_seconds += duration
        row.self_seconds += self_seconds

        profile.collapsed[stack] = (
            profile.collapsed.get(stack, 0.0) + self_seconds
        )

        worker = span.meta.get("worker")
        worker_label = f"w{worker}" if isinstance(worker, int) else "main"
        worker_table = profile.by_worker.setdefault(worker_label, {})
        worker_table[span.name] = (
            worker_table.get(span.name, 0.0) + self_seconds
        )

        label = shard_label
        if span.name == "shard":
            index = span.attrs.get("index")
            label = f"shard{index}" if index is not None else "shard?"
        elif span.name == "reconcile":
            label = "reconcile"
        shard_table = profile.by_shard.setdefault(label, {})
        shard_table[span.name] = shard_table.get(span.name, 0.0) + self_seconds

        for child in span.children:
            visit(child, stack, label)

    for root in roots:
        profile.total_seconds += root.duration or 0.0
        visit(root, "", "-")
    return profile


def load_trace_jsonl(path: str) -> List[Span]:
    """Rebuild a span forest from ``SpanTracer.to_jsonl`` output.

    The JSONL is depth-first with an explicit ``depth`` per record, so
    a stack of open ancestors is enough to re-nest it.  Records that
    are not span events (future event kinds) are skipped.
    """
    roots: List[Span] = []
    stack: List[Span] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("event") != "span":
                continue
            name = record.get("name")
            depth = record.get("depth")
            if not isinstance(name, str) or not isinstance(depth, int):
                raise ValueError(f"malformed span record: {line[:120]}")
            attrs = record.get("attrs") or {}
            span = Span(name, cast(Dict[str, AttrValue], attrs))
            t_start = record.get("t_start")
            t_end = record.get("t_end")
            span.t_start = (
                float(t_start) if isinstance(t_start, (int, float)) else None
            )
            span.t_end = (
                float(t_end) if isinstance(t_end, (int, float)) else None
            )
            meta = record.get("meta")
            if isinstance(meta, dict):
                span.meta.update(cast(Dict[str, AttrValue], meta))
            del stack[depth:]
            if stack:
                stack[-1].children.append(span)
            else:
                roots.append(span)
            stack.append(span)
    return roots


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _kind_rows(profile: SpanProfile) -> List[Tuple[str, ProfileRow]]:
    return sorted(
        profile.kinds.items(),
        key=lambda item: (-item[1].self_seconds, item[0]),
    )


def render_profile(
    profile: SpanProfile, title: Optional[str] = None
) -> str:
    """The ``repro report --profile`` table view."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"span profile: {profile.span_count} spans, "
        f"{profile.total_seconds:.3f}s total"
    )
    lines.append(
        f"  {'kind':<14} {'count':>8} {'total(s)':>10} "
        f"{'self(s)':>10} {'self%':>7}"
    )
    denom = profile.total_seconds or 1.0
    for kind, row in _kind_rows(profile):
        lines.append(
            f"  {kind:<14} {row.count:>8} {row.total_seconds:>10.3f} "
            f"{row.self_seconds:>10.3f} "
            f"{100.0 * row.self_seconds / denom:>6.1f}%"
        )
    if len(profile.by_worker) > 1:
        lines.append("  self seconds by worker:")
        for label, table in sorted(profile.by_worker.items()):
            total = sum(table.values())
            detail = ", ".join(
                f"{kind} {seconds:.3f}"
                for kind, seconds in sorted(
                    table.items(), key=lambda kv: (-kv[1], kv[0])
                )[:4]
            )
            lines.append(f"    {label:<8} {total:>9.3f}s  ({detail})")
    shard_labels = [
        label for label in profile.by_shard if label.startswith("shard")
    ]
    if shard_labels:
        lines.append("  self seconds by shard:")
        for label, table in sorted(profile.by_shard.items()):
            if label == "-":
                continue
            lines.append(f"    {label:<10} {sum(table.values()):>9.3f}s")
    return "\n".join(lines)


def diff_profiles(
    before: SpanProfile,
    after: SpanProfile,
    min_delta_seconds: float = 0.0005,
) -> str:
    """Per-kind self-time and count deltas between two profiles."""
    lines = [
        "span profile delta (after - before):",
        f"  spans: {before.span_count} -> {after.span_count} "
        f"({after.span_count - before.span_count:+d}), "
        f"total: {before.total_seconds:.3f}s -> "
        f"{after.total_seconds:.3f}s",
    ]
    kinds = sorted(set(before.kinds) | set(after.kinds))
    emitted = 0
    for kind in kinds:
        b = before.kinds.get(kind, ProfileRow())
        a = after.kinds.get(kind, ProfileRow())
        delta_self = a.self_seconds - b.self_seconds
        delta_count = a.count - b.count
        if abs(delta_self) < min_delta_seconds and delta_count == 0:
            continue
        pct = (
            f" ({100.0 * delta_self / b.self_seconds:+.1f}%)"
            if b.self_seconds > 0
            else ""
        )
        lines.append(
            f"  {kind:<14} self {b.self_seconds:.3f}s -> "
            f"{a.self_seconds:.3f}s{pct}, count {b.count} -> {a.count} "
            f"({delta_count:+d})"
        )
        emitted += 1
    if emitted == 0:
        lines.append("  no per-kind changes above threshold")
    return "\n".join(lines)
