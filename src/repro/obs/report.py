"""Render and diff run artifacts (``repro report``).

A *run* is located either by a directory holding the conventional
``profile.json`` / ``manifest.json`` / ``trace.json`` trio (what
``repro legalize --run-dir`` writes) or by a profile JSON path whose
manifest sits beside it per
:func:`repro.obs.manifest.manifest_path_for`.  One run renders as a
readable summary; two runs render as a diff: manifest mismatches,
counter/timing deltas, histogram drift, and an explicit list of metrics
present in only one run (never silently skipped).

A ``BENCH_mgl.json``-shaped file (a ``suite`` plus per-case ``runs``,
what ``benchmarks/bench_perf.py`` writes) is recognized by shape and
renders as the benchmark table with its parallel / backend / trace
determinism sections; two bench reports diff case-by-case — wall-time
deltas and, fatally interesting, placement-hash changes.

When a run's profile carries the ``scheduler.batch_occupancy``
histogram and its manifest records the scheduler capacity, the summary
ends with :mod:`repro.obs.autotune`'s capacity advice; sharded runs add
its band-sizing advice.  A run directory's ``metrics.prom`` snapshot is
parsed (:func:`repro.obs.metrics.parse_prometheus`) so two-run diffs
include per-series Prometheus deltas, and its ``trace.jsonl`` feeds the
span-profile view (``repro report --profile``) via
:func:`span_profile_for`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.autotune import advice_for_run, band_advice_for_run
from repro.obs.manifest import diff_manifests, load_manifest, manifest_path_for
from repro.obs.metrics import parse_prometheus

__all__ = [
    "RunArtifacts",
    "load_run",
    "render_diff",
    "render_run",
    "span_profile_for",
]

PathLike = Union[str, Path]

JsonDict = Dict[str, Any]


@dataclass
class RunArtifacts:
    """Everything found for one run; absent artifacts stay None."""

    root: Path
    profile: Optional[JsonDict] = None
    manifest: Optional[JsonDict] = None
    trace_path: Optional[Path] = None
    trace_jsonl_path: Optional[Path] = None
    #: Flat series map parsed from the run dir's ``metrics.prom``.
    prom: Optional[Dict[str, float]] = None
    bench: Optional[JsonDict] = None
    problems: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return str(self.root)


def _read_json(path: Path) -> JsonDict:
    with open(path) as handle:
        data: JsonDict = json.load(handle)
    return data


def load_run(path: PathLike) -> RunArtifacts:
    """Locate a run's artifacts from a directory or a profile path."""
    root = Path(path)
    run = RunArtifacts(root=root)
    if root.is_dir():
        profile_path = root / "profile.json"
        manifest_path = root / "manifest.json"
        trace_path = root / "trace.json"
    elif root.exists():
        data = _read_json(root)
        if isinstance(data.get("runs"), list) and "suite" in data:
            run.bench = data  # bench_perf.py report, not a run trio
            return run
        profile_path = root
        manifest_path = manifest_path_for(root)
        trace_path = Path()  # No sidecar-trace convention for bare files.
    else:
        run.problems.append(f"{root}: no such run directory or profile")
        return run
    if profile_path.is_file():
        run.profile = _read_json(profile_path)
    else:
        run.problems.append(f"{root}: no profile ({profile_path.name} missing)")
    if manifest_path.is_file():
        run.manifest = load_manifest(manifest_path)
    else:
        run.problems.append(
            f"{root}: no manifest ({manifest_path.name} missing)"
        )
    if trace_path.is_file():
        run.trace_path = trace_path
    if root.is_dir():
        jsonl_path = root / "trace.jsonl"
        if jsonl_path.is_file():
            run.trace_jsonl_path = jsonl_path
        prom_path = root / "metrics.prom"
        if prom_path.is_file():
            run.prom = parse_prometheus(prom_path.read_text())
    return run


def span_profile_for(run: RunArtifacts) -> Optional[Any]:
    """The run's :class:`~repro.obs.profile.SpanProfile`, if derivable.

    Prefers a stored ``span_profile.json`` (what the run store keeps),
    falling back to folding the run dir's ``trace.jsonl``.  Returns
    None when the run carries neither.
    """
    from repro.obs.profile import (
        fold_spans,
        load_trace_jsonl,
        profile_from_dict,
    )

    stored = run.root / "span_profile.json" if run.root.is_dir() else None
    if stored is not None and stored.is_file():
        return profile_from_dict(_read_json(stored))
    if run.trace_jsonl_path is not None:
        return fold_spans(load_trace_jsonl(str(run.trace_jsonl_path)))
    return None


# ----------------------------------------------------------------------
# Single-run rendering
# ----------------------------------------------------------------------


def _section(profile: Optional[JsonDict], key: str) -> JsonDict:
    if not profile:
        return {}
    section = profile.get(key)
    return section if isinstance(section, dict) else {}


def _render_manifest(manifest: JsonDict, lines: List[str]) -> None:
    design = manifest.get("design") or {}
    lines.append("manifest")
    lines.append(
        f"  design          {design.get('name')} "
        f"({design.get('cells')} cells, {design.get('rows')} rows, "
        f"digest {design.get('digest')})"
    )
    lines.append(
        f"  run             workers={manifest.get('workers')} "
        f"seed={manifest.get('seed')} "
        f"placement_hash={manifest.get('placement_hash')}"
    )
    if manifest.get("trace_structure_hash"):
        lines.append(
            f"  trace           structure_hash="
            f"{manifest.get('trace_structure_hash')}"
        )
    lines.append(
        f"  environment     repro {manifest.get('package_version')}, "
        f"Python {manifest.get('python_version')}, "
        f"{manifest.get('platform')}"
    )
    params = manifest.get("params") or {}
    if params:
        rendered = " ".join(
            f"{key}={params[key]}" for key in sorted(params)
        )
        lines.append(f"  params          {rendered}")


def _render_histogram(name: str, data: JsonDict, lines: List[str]) -> None:
    counts = data.get("counts") or []
    bounds = data.get("bounds") or []
    lines.append(
        f"  {name}: count={data.get('count')} mean={data.get('mean')}"
    )
    peak = max((int(count) for count in counts), default=0)
    labels = [f"<={bound:g}" for bound in bounds] + ["inf"]
    for label, count in zip(labels, counts):
        if not count:
            continue
        bar = "#" * max(1, round(24 * int(count) / peak)) if peak else ""
        lines.append(f"    {label:>8s} {int(count):>8d} {bar}")


def _bench_runs(bench: JsonDict) -> Dict[str, JsonDict]:
    runs = bench.get("runs")
    if not isinstance(runs, list):
        return {}
    return {
        f"{record['name']}@{record['scale']}": record
        for record in runs
        if isinstance(record, dict)
    }


def _render_bench(bench: JsonDict, lines: List[str]) -> None:
    lines.append(
        f"benchmark suite: {bench.get('suite')} "
        f"(scales {bench.get('scales')})"
    )
    for key, record in sorted(_bench_runs(bench).items()):
        lines.append(
            f"  {str(record.get('name')):20s} scale={record.get('scale'):<6g} "
            f"cells={int(record.get('cells', 0)):>6d} "
            f"{float(record.get('seconds', 0.0)):>8.3f}s "
            f"{float(record.get('cells_per_sec', 0.0)):>8.1f} c/s "
            f"evals={int(record.get('insertions_evaluated', 0)):>8d} "
            f"hash={record.get('placement_hash')}"
        )
    parallel = bench.get("parallel")
    if isinstance(parallel, dict):
        lines.append(
            f"  parallel        {parallel.get('name')}: "
            f"workers={parallel.get('workers')} "
            f"speedup {parallel.get('speedup')}x "
            f"(on {parallel.get('cpu_count')} cpus) "
            f"hashes_match={parallel.get('hashes_match')}"
        )
    backend = bench.get("backend")
    if isinstance(backend, dict):
        lines.append(
            f"  backend         {backend.get('name')}: "
            f"vector {backend.get('vector_vs_scalar')}x serial, "
            f"stacked {backend.get('stacked_vs_scalar')}x "
            f"(on {backend.get('cpu_count')} cpus) "
            f"hashes_match={backend.get('hashes_match')} "
            f"evals_match={backend.get('evals_match')}"
        )
    trace = bench.get("trace_determinism")
    if isinstance(trace, dict):
        lines.append(
            f"  trace           {trace.get('name')}: "
            f"spans={trace.get('span_count')} "
            f"structure_match={trace.get('structure_match')} "
            f"hashes_match={trace.get('hashes_match')}"
        )


def render_run(run: RunArtifacts) -> str:
    """Human-readable summary of one run."""
    lines = [f"run: {run.label}"]
    for problem in run.problems:
        lines.append(f"  warning: {problem}")
    if run.bench is not None:
        _render_bench(run.bench, lines)
        return "\n".join(lines)
    if run.manifest:
        _render_manifest(run.manifest, lines)
    timings = _section(run.profile, "timings")
    if timings:
        lines.append("timings")
        total = sum(float(seconds) for seconds in timings.values())
        for name in sorted(timings, key=lambda key: -float(timings[key])):
            seconds = float(timings[name])
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {name:24s} {seconds:9.3f}s  {share:5.1f}%")
    counters = _section(run.profile, "counters")
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:32s} {int(counters[name]):>12d}")
    gauges = _section(run.profile, "gauges")
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:32s} {float(gauges[name]):>12.4f}")
    histograms = _section(run.profile, "histograms")
    if histograms:
        lines.append("histograms")
        for name in sorted(histograms):
            _render_histogram(name, histograms[name], lines)
    if run.trace_path is not None:
        lines.append(f"trace: {run.trace_path} (load at https://ui.perfetto.dev)")
    advice = advice_for_run(run.profile, run.manifest)
    if advice is not None:
        lines.append(f"autotune: {advice.render()}")
    bands = band_advice_for_run(run.profile, run.manifest)
    if bands is not None:
        lines.append(f"autotune: {bands.render()}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Two-run diff
# ----------------------------------------------------------------------


def _fmt_delta(old: float, new: float) -> str:
    if old == new:
        return "unchanged"
    if old == 0:
        return f"{old:g} -> {new:g}"
    return f"{old:g} -> {new:g} ({100.0 * (new / old - 1.0):+.1f}%)"


def _diff_numeric_section(
    a: JsonDict, b: JsonDict, title: str, lines: List[str]
) -> None:
    common = sorted(set(a) & set(b))
    changed = [key for key in common if a[key] != b[key]]
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    if not changed and not only_a and not only_b:
        return
    lines.append(title)
    for key in changed:
        lines.append(
            f"  {key:32s} {_fmt_delta(float(a[key]), float(b[key]))}"
        )
    if only_a:
        lines.append(f"  only in first:  {', '.join(only_a)}")
    if only_b:
        lines.append(f"  only in second: {', '.join(only_b)}")


def _diff_histograms(a: JsonDict, b: JsonDict, lines: List[str]) -> None:
    names = sorted(set(a) | set(b))
    rendered: List[str] = []
    for name in names:
        if name not in a or name not in b:
            where = "first" if name in a else "second"
            rendered.append(f"  {name}: only in {where}")
            continue
        ha, hb = a[name], b[name]
        if ha == hb:
            continue
        rendered.append(
            f"  {name}: count {_fmt_delta(float(ha.get('count', 0)), float(hb.get('count', 0)))}, "
            f"mean {_fmt_delta(float(ha.get('mean', 0.0)), float(hb.get('mean', 0.0)))}"
        )
        bounds = ha.get("bounds") or []
        labels = [f"<={bound:g}" for bound in bounds] + ["inf"]
        counts_a = ha.get("counts") or []
        counts_b = hb.get("counts") or []
        for label, count_a, count_b in zip(labels, counts_a, counts_b):
            if count_a != count_b:
                rendered.append(
                    f"    {label:>8s} {int(count_a)} -> {int(count_b)}"
                )
    if rendered:
        lines.append("histogram drift")
        lines.extend(rendered)


def _diff_bench(a: JsonDict, b: JsonDict, lines: List[str]) -> None:
    runs_a, runs_b = _bench_runs(a), _bench_runs(b)
    hash_changes = [
        f"  {key}: placement hash {runs_a[key].get('placement_hash')} -> "
        f"{runs_b[key].get('placement_hash')}"
        for key in sorted(set(runs_a) & set(runs_b))
        if runs_a[key].get("placement_hash") != runs_b[key].get("placement_hash")
    ]
    if hash_changes:
        lines.append("placement hash changes (determinism drift!)")
        lines.extend(hash_changes)
    else:
        lines.append("placement hashes agree on all common cases")
    _diff_numeric_section(
        {key: run.get("seconds", 0.0) for key, run in runs_a.items()},
        {key: run.get("seconds", 0.0) for key, run in runs_b.items()},
        "wall-time deltas (seconds)",
        lines,
    )
    _diff_numeric_section(
        {
            key: run.get("insertions_evaluated", 0)
            for key, run in runs_a.items()
        },
        {
            key: run.get("insertions_evaluated", 0)
            for key, run in runs_b.items()
        },
        "insertions-evaluated deltas",
        lines,
    )


def render_diff(a: RunArtifacts, b: RunArtifacts) -> str:
    """Diff of two runs: manifests, timings, counters, gauges, histograms."""
    lines = [f"diff: {a.label}  vs  {b.label}"]
    for run in (a, b):
        for problem in run.problems:
            lines.append(f"  warning: {problem}")
    if a.bench is not None and b.bench is not None:
        _diff_bench(a.bench, b.bench, lines)
        return "\n".join(lines)
    if a.bench is not None or b.bench is not None:
        lines.append(
            "  warning: one side is a benchmark report, the other a run "
            "directory — nothing comparable"
        )
        return "\n".join(lines)
    if a.manifest and b.manifest:
        mismatches = diff_manifests(a.manifest, b.manifest)
        if mismatches:
            lines.append("manifest diff")
            lines.extend(f"  {line}" for line in mismatches)
        else:
            lines.append("manifests agree")
    _diff_numeric_section(
        _section(a.profile, "timings"),
        _section(b.profile, "timings"),
        "timing deltas (seconds)",
        lines,
    )
    _diff_numeric_section(
        _section(a.profile, "counters"),
        _section(b.profile, "counters"),
        "counter deltas",
        lines,
    )
    _diff_numeric_section(
        _section(a.profile, "gauges"),
        _section(b.profile, "gauges"),
        "gauge deltas",
        lines,
    )
    _diff_histograms(
        _section(a.profile, "histograms"),
        _section(b.profile, "histograms"),
        lines,
    )
    if a.prom is not None and b.prom is not None:
        _diff_numeric_section(
            dict(a.prom),
            dict(b.prom),
            "prometheus series deltas (metrics.prom)",
            lines,
        )
    elif a.prom is not None or b.prom is not None:
        where = "first" if a.prom is not None else "second"
        lines.append(f"  note: metrics.prom present only in {where} run")
    if len(lines) == 1:
        lines.append("no differences found")
    return "\n".join(lines)
