"""Stdlib-logging setup for the CLI and other entry points.

Diagnostics ("wrote X", "imported Y") go through the ``repro`` logger
hierarchy to **stderr**; computed results (scores, summaries, tables)
stay on stdout, so pipelines consuming ``repro`` output never see
logging noise.  Library code only ever calls :func:`get_logger` —
:func:`setup_logging` is for executables, which own the handler policy
(the CLI wires it to ``--log-level`` / ``--log-format``).

Two formats: ``human`` (the default ``LEVEL name: message`` lines) and
``json`` — one JSON object per line with ``level``/``logger``/
``message`` keys, for log collectors that ingest structured stderr.
The stream and the message content are identical either way.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional, TextIO

__all__ = ["get_logger", "setup_logging"]

LEVELS = ("debug", "info", "warning", "error")

FORMATS = ("human", "json")


class _JsonFormatter(logging.Formatter):
    """One JSON object per record; keys sorted for diff-stable output."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")


def setup_logging(
    level: str = "info",
    stream: Optional[TextIO] = None,
    fmt: str = "human",
) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Replaces any handlers previously installed here (repeat CLI
    invocations in one process, e.g. the test suite, must not stack
    duplicates) and never touches the root logger, so embedding
    applications keep their own logging untouched.  ``fmt`` picks the
    line shape: ``human`` (default) or ``json``.
    """
    if level.lower() not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; pick one of {LEVELS}")
    if fmt not in FORMATS:
        raise ValueError(f"unknown log format {fmt!r}; pick one of {FORMATS}")
    logger = get_logger()
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    formatter: logging.Formatter = (
        _JsonFormatter()
        if fmt == "json"
        else logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler.setFormatter(formatter)
    logger.handlers[:] = [handler]
    logger.propagate = False
    return logger
