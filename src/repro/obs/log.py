"""Stdlib-logging setup for the CLI and other entry points.

Diagnostics ("wrote X", "imported Y") go through the ``repro`` logger
hierarchy to **stderr**; computed results (scores, summaries, tables)
stay on stdout, so pipelines consuming ``repro`` output never see
logging noise.  Library code only ever calls :func:`get_logger` —
:func:`setup_logging` is for executables, which own the handler policy
(the CLI wires it to ``--log-level``).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["get_logger", "setup_logging"]

LEVELS = ("debug", "info", "warning", "error")


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")


def setup_logging(
    level: str = "info", stream: Optional[TextIO] = None
) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Replaces any handlers previously installed here (repeat CLI
    invocations in one process, e.g. the test suite, must not stack
    duplicates) and never touches the root logger, so embedding
    applications keep their own logging untouched.
    """
    if level.lower() not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; pick one of {LEVELS}")
    logger = get_logger()
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.handlers[:] = [handler]
    logger.propagate = False
    return logger
