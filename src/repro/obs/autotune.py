"""Capacity and shard-band advice from observed run histograms.

Capacity advice reads ``scheduler.batch_occupancy``; shard-band advice
reads ``shard.occupancy`` (cells placed per shard interior, one sample
per shard) together with the manifest's ``shard_topology`` — the exact
per-band cell assignment.  An imbalanced topology (one band holding a
multiple of the mean) means the fence-aware cuts landed badly for this
design's GP density: the widest band bounds the sharded wall clock, so
evening the bands out (more shards, or fewer where fences force merges)
is wall-clock on multicore hosts with zero placement cost.

The window scheduler packs independent cells into batches of at most
``scheduler_capacity`` (the paper's L_p); the batch sizes it *actually*
achieves land in the ``scheduler.batch_occupancy`` histogram that
``repro legalize --run-dir`` persists in ``profile.json``.  The
distribution tells the capacity story directly:

* batches that keep **filling to capacity** mean the conflict graph had
  more independent windows to offer — a larger L_p widens every batch,
  which is wall-clock on multicore hosts (the pool drains whole batches)
  and has no placement cost (batching is bit-neutral by construction);
* batches that **never come close** mean the capacity is not the
  binding constraint, and lowering it costs nothing while shrinking the
  re-evaluation window (``scheduler_reevaluations``) after conflicts.

:func:`suggest_capacity` turns one profile into a
:class:`CapacityAdvice`; :func:`advice_for_run` pulls the capacity out
of the run's manifest so ``repro report`` can render the advice with no
extra arguments.  Quantiles are computed from bucket counts (inclusive
upper bounds), i.e. conservatively: a p95 of 8.0 means at least 95% of
batches held 8 or fewer windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "CapacityAdvice",
    "ShardBandAdvice",
    "advice_for_run",
    "band_advice_for_run",
    "suggest_capacity",
    "suggest_shard_bands",
]

#: Histogram the capacity advice reads (written per scheduler batch).
OCCUPANCY_METRIC = "scheduler.batch_occupancy"

#: Histogram the band advice reads (written per shard interior).
SHARD_METRIC = "shard.occupancy"

#: A topology is imbalanced when the widest band holds at least this
#: multiple of the mean band population.
IMBALANCE_THRESHOLD = 1.5

#: A batch is "full" when it reaches this share of the capacity.
FULL_FRACTION = 0.75

#: Raise capacity when at least this share of batches came in full.
RAISE_THRESHOLD = 0.5

#: Lower capacity when p95 occupancy is below this share of capacity.
LOWER_THRESHOLD = 0.5


@dataclass(frozen=True)
class CapacityAdvice:
    """One run's batch-occupancy summary and the capacity it suggests."""

    current: int
    suggested: int
    batches: int
    p50: float
    p95: float
    full_fraction: float
    rationale: str

    @property
    def changed(self) -> bool:
        return self.suggested != self.current

    def render(self) -> str:
        action = (
            f"suggest --capacity {self.suggested}"
            if self.changed
            else f"capacity {self.current} looks right"
        )
        return (
            f"{action} ({self.rationale}; {self.batches} batches, "
            f"p50<={self.p50:g}, p95<={self.p95:g}, "
            f"{100.0 * self.full_fraction:.0f}% full)"
        )


def _quantile_bound(
    bounds: "list[float]", counts: "list[int]", total: int, q: float
) -> float:
    """Smallest bucket bound covering quantile ``q`` (inf for overflow)."""
    need = q * total
    running = 0
    for bound, count in zip(bounds, counts):
        running += count
        if running >= need:
            return float(bound)
    return math.inf


def suggest_capacity(
    profile: Dict[str, Any], current_capacity: int
) -> Optional[CapacityAdvice]:
    """Advice from one profile dict, or None without occupancy data.

    ``profile`` is the ``profile.json`` shape (``MetricsRegistry.as_dict``):
    a ``histograms`` section mapping names to bounds/counts dicts.
    """
    histograms = profile.get("histograms")
    if not isinstance(histograms, dict):
        return None
    data = histograms.get(OCCUPANCY_METRIC)
    if not isinstance(data, dict):
        return None
    bounds = [float(bound) for bound in data.get("bounds") or []]
    counts = [int(count) for count in data.get("counts") or []]
    total = int(data.get("count") or 0)
    if total <= 0 or len(counts) != len(bounds) + 1:
        return None

    p50 = _quantile_bound(bounds, counts, total, 0.50)
    p95 = _quantile_bound(bounds, counts, total, 0.95)
    # Count batches at or above FULL_FRACTION * capacity: buckets whose
    # *lower* edge (previous bound) already reaches the threshold, which
    # under-counts at worst — the advice only errs toward "keep".
    threshold = FULL_FRACTION * current_capacity
    full = sum(
        count
        for previous, count in zip([0.0] + bounds, counts)
        if previous >= threshold
    )
    full_fraction = min(full, total) / total

    if current_capacity <= 1:
        suggested = current_capacity
        rationale = "serial run (capacity 1); batching disabled"
    elif full_fraction >= RAISE_THRESHOLD:
        suggested = 2 * current_capacity
        rationale = (
            "batches keep filling to capacity — the conflict graph "
            "offers more width than L_p admits"
        )
    elif p95 <= LOWER_THRESHOLD * current_capacity:
        suggested = max(2, int(math.ceil(p95)))
        rationale = (
            "p95 occupancy is well below capacity — a lower L_p loses "
            "no width and shrinks conflict re-evaluation"
        )
    else:
        suggested = current_capacity
        rationale = "occupancy tracks capacity without saturating it"
    return CapacityAdvice(
        current=current_capacity,
        suggested=suggested,
        batches=total,
        p50=p50,
        p95=p95,
        full_fraction=full_fraction,
        rationale=rationale,
    )


def advice_for_run(
    profile: Optional[Dict[str, Any]], manifest: Optional[Dict[str, Any]]
) -> Optional[CapacityAdvice]:
    """Advice for a loaded run: capacity comes from the manifest params."""
    if profile is None or manifest is None:
        return None
    params = manifest.get("params")
    if not isinstance(params, dict):
        return None
    capacity = params.get("scheduler_capacity")
    if not isinstance(capacity, int):
        return None
    return suggest_capacity(profile, capacity)


# ----------------------------------------------------------------------
# Shard-band advice
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardBandAdvice:
    """One sharded run's band-population summary and its verdict."""

    shards: int
    halo_rows: int
    mean_cells: float
    max_cells: int
    min_cells: int
    imbalance: float
    balanced: bool
    rationale: str

    def render(self) -> str:
        verdict = (
            f"{self.shards} bands look balanced"
            if self.balanced
            else f"IMBALANCED topology ({self.shards} bands)"
        )
        return (
            f"{verdict}: cells/band {self.min_cells}..{self.max_cells} "
            f"(mean {self.mean_cells:.0f}, widest {self.imbalance:.2f}x "
            f"mean); {self.rationale}"
        )


def suggest_shard_bands(
    profile: Dict[str, Any], shard_topology: Dict[str, Any]
) -> Optional[ShardBandAdvice]:
    """Band advice from one profile + the manifest's shard topology.

    The ``shard.occupancy`` histogram proves the run actually sharded
    (and carries the observed placed-per-interior distribution); the
    topology's per-band ``cells`` counts give the exact imbalance the
    buckets can only approximate.  Returns None for unsharded runs.
    """
    histograms = profile.get("histograms")
    data = (
        histograms.get(SHARD_METRIC)
        if isinstance(histograms, dict)
        else None
    )
    if not isinstance(data, dict) or not int(data.get("count") or 0):
        return None
    bands = shard_topology.get("bands")
    if not isinstance(bands, list) or not bands:
        return None
    populations = [
        int(band.get("cells", 0))
        for band in bands
        if isinstance(band, dict)
    ]
    if not populations:
        return None
    mean = sum(populations) / len(populations)
    widest = max(populations)
    imbalance = widest / mean if mean > 0 else 1.0
    balanced = imbalance < IMBALANCE_THRESHOLD or len(populations) == 1
    if len(populations) == 1:
        rationale = (
            "single band — fence spans or the tallest cell capped the "
            "shard count, so sharding is effectively off"
        )
    elif balanced:
        rationale = (
            "the widest band tracks the mean, so the fence-aware cuts "
            "split the work evenly"
        )
    else:
        rationale = (
            "the widest band bounds the sharded wall clock — try more "
            "shards, or check whether fence spans forced band merges"
        )
    return ShardBandAdvice(
        shards=len(populations),
        halo_rows=int(shard_topology.get("halo_rows") or 0),
        mean_cells=mean,
        max_cells=widest,
        min_cells=min(populations),
        imbalance=imbalance,
        balanced=balanced,
        rationale=rationale,
    )


def band_advice_for_run(
    profile: Optional[Dict[str, Any]], manifest: Optional[Dict[str, Any]]
) -> Optional[ShardBandAdvice]:
    """Band advice for a loaded run; topology comes from the manifest."""
    if profile is None or manifest is None:
        return None
    topology = manifest.get("shard_topology")
    if not isinstance(topology, dict):
        return None
    return suggest_shard_bands(profile, topology)
