"""Hierarchical span tracing for the legalization flow.

A *span* is one timed unit of work — ``legalize``, ``mgl``, one
scheduler ``batch``, one ``window`` (a cell's insertion search), one
pure ``evaluate`` — carrying structured attributes (window bounds,
candidates evaluated, the chosen insertion point, the resulting
displacement).  Spans nest, forming a tree per run::

    legalize
      mgl
        batch            (scheduler path only)
          window          attrs: cell, bounds, expansions, x, y, disp …
            evaluate      attrs: evaluated, found, cost, reeval …
      matching
      flow_opt

Two tracer implementations share one interface:

* :class:`NullTracer` — the default.  Every operation is a shared
  no-op; instrumented code pays one attribute lookup and an empty
  ``with`` block, nothing else.  Hot paths additionally gate their
  attribute computation on :attr:`NullTracer.enabled`.
* :class:`SpanTracer` — records the tree, exports it as a JSONL event
  stream (:meth:`SpanTracer.to_jsonl`) or Chrome trace-event JSON
  loadable in Perfetto (:meth:`SpanTracer.to_chrome_trace`), and
  digests it with :meth:`SpanTracer.structure_hash`.

**Determinism contract.**  A span's *structure* — its name, its
attributes, and its children, recursively — is a pure function of the
legalization inputs.  Timestamps and the ``meta`` side-channel (worker
indices, durations) are *non-structural*: they are excluded from
:func:`structure_hash`, which is therefore bit-identical for any
``scheduler_workers`` value (property-tested in
tests/test_trace_determinism.py).  Worker processes return their
``evaluate`` spans as plain payload dicts inside result messages (see
:mod:`repro.core.parallel`); the parent merges them **in selection
order** via :meth:`SpanTracer.attach_payloads`, so the tree never
depends on pool timing.  All timestamps come from the sanctioned
:mod:`repro.obs.clock` (repro-lint D004).

**Sampling.**  ``SpanTracer(sample_every=k)`` keeps the per-cell spans
(``window`` and its ``evaluate`` children) only for every k-th cell of
the fixed legalization order, registered once per run via
:meth:`NullTracer.set_cell_population`.  The keep/drop decision is a
pure function of the cell's *rank in that order* — never of worker
identity, shard assignment, or time — so the sampled structure hash
obeys the same worker-count-invariance contract as the full trace, and
``k=1`` is bit-identical to an unsampled trace.  Structural spans
(``legalize``/``mgl``/``batch``/``shard``/``reconcile``…) are always
kept.  Instrumented code opens per-cell spans through
:meth:`NullTracer.cell_span` and gates payload attachment on
:meth:`NullTracer.sampled`, so dropped cells pay one frozenset lookup
and nothing else.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from typing import (
    ClassVar,
    ContextManager,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
    cast,
)

from repro.obs.clock import monotonic

__all__ = [
    "AttrValue",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanPayload",
    "SpanTracer",
    "structure_hash",
]

#: Attribute values are JSON scalars so every export is lossless.
AttrValue = Union[bool, int, float, str, None]

#: The wire form of a span: the dict produced by :meth:`Span.to_payload`
#: and consumed by :meth:`Span.from_payload` /
#: :meth:`SpanTracer.attach_payloads`.  Worker processes ship these.
SpanPayload = Dict[str, object]


class Span:
    """One node of the trace tree.

    ``name``, ``attrs`` and ``children`` are structural (hashed);
    ``t_start``/``t_end`` (monotonic seconds) and ``meta`` (e.g. the
    worker index that produced a merged span) are not.
    """

    __slots__ = ("name", "attrs", "children", "t_start", "t_end", "meta")

    #: True on recorded spans, False on the shared null span — hot paths
    #: gate expensive attribute computation on this so a sampled-out
    #: cell's ``finish_window_span`` costs one attribute read.
    recording: ClassVar[bool] = True

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, AttrValue]] = None,
        t_start: Optional[float] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, AttrValue] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.meta: Dict[str, AttrValue] = {}

    def set(self, **attrs: AttrValue) -> None:
        """Add/overwrite attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> Optional[float]:
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    # -- (de)serialization ---------------------------------------------

    def structure(self) -> SpanPayload:
        """Timestamp- and meta-free canonical form (the hashed part)."""
        return {
            "name": self.name,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "children": [child.structure() for child in self.children],
        }

    def to_payload(self) -> SpanPayload:
        """Wire form: structure plus the non-structural duration/meta."""
        payload = self.structure()
        if self.duration is not None:
            payload["duration"] = self.duration
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    @classmethod
    def from_payload(cls, payload: SpanPayload) -> "Span":
        """Rebuild a span (tree) from its wire form; times stay unset."""
        name = payload.get("name")
        if not isinstance(name, str):
            raise ValueError(f"span payload without a name: {payload!r}")
        attrs = payload.get("attrs") or {}
        if not isinstance(attrs, dict):
            raise ValueError(f"span payload attrs must be a dict: {attrs!r}")
        span = cls(name, cast(Dict[str, AttrValue], attrs))
        children = payload.get("children") or []
        if not isinstance(children, list):
            raise ValueError("span payload children must be a list")
        for child in children:
            span.children.append(cls.from_payload(cast(SpanPayload, child)))
        meta = payload.get("meta")
        if isinstance(meta, dict):
            span.meta.update(cast(Dict[str, AttrValue], meta))
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, attrs={len(self.attrs)}, "
            f"children={len(self.children)})"
        )


def structure_hash(spans: Sequence[Span]) -> str:
    """SHA-256 over the canonical timestamp-free form of a span forest.

    This is the determinism digest: identical for any
    ``scheduler_workers`` value, across reruns, machines, and Python
    versions, because every structural attribute is a pure function of
    the legalization inputs.
    """
    canonical = json.dumps(
        [span.structure() for span in spans],
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class _NullSpan(Span):
    """The span all :class:`NullTracer` contexts yield; mutation-free."""

    __slots__ = ()

    recording: ClassVar[bool] = False

    def set(self, **attrs: AttrValue) -> None:  # noqa: D102 - no-op
        return None


_NULL_SPAN = _NullSpan("null")


class _NullSpanContext:
    """A reusable, state-free context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Zero-overhead default tracer (and the tracer interface).

    Every method is a no-op returning shared singletons; nothing is
    allocated per call beyond the keyword dict Python builds for
    ``**attrs``.  Hot paths gate richer attribute computation on
    :attr:`enabled` so the default path stays measurement-clean.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: AttrValue) -> ContextManager[Span]:
        """Open a child span of the innermost open span."""
        return _NULL_CONTEXT

    def cell_span(
        self, name: str, cell: int, **attrs: AttrValue
    ) -> ContextManager[Span]:
        """Open a per-cell span, subject to the sampling policy.

        Identical to :meth:`span` when the cell is sampled (always, at
        ``sample_every=1``); yields the shared null span otherwise, so
        the caller's ``with`` block runs but records nothing.
        """
        return _NULL_CONTEXT

    def sampled(self, cell: int) -> bool:
        """Whether per-cell spans/payloads for ``cell`` are recorded."""
        return False

    def set_cell_population(self, order: Sequence[int]) -> None:
        """Register the fixed cell order the sampling policy draws from.

        Called once per run with :func:`repro.core.mgl.mgl_cell_order`
        *before* any per-cell span opens.  The sampled set is every
        k-th cell of this order — a pure function of the order itself,
        which is what keeps the sampled trace structure invariant
        across worker and shard-pool configurations.
        """
        return None

    def attach_payloads(
        self, payloads: Sequence[SpanPayload], worker: Optional[int] = None
    ) -> None:
        """Merge pre-built span payloads under the innermost open span."""
        return None


#: Shared default instance; modules use this when no tracer is injected.
NULL_TRACER = NullTracer()


class SpanTracer(NullTracer):
    """The recording tracer: builds the tree, exports, and hashes it.

    Args:
        sample_every: keep per-cell spans (``window``/``evaluate``) for
            every k-th cell of the registered cell population; 1 (the
            default) records everything.  Structural spans are always
            recorded.  See the module docstring for the determinism
            argument.
    """

    enabled = True

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = sample_every
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: The sampled cell ids; None means "record every cell" (either
        #: sample_every == 1 or no population registered yet — the safe
        #: default for direct unit-level tracer use).
        self._sampled: Optional[FrozenSet[int]] = None

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: AttrValue) -> ContextManager[Span]:
        return self._open(name, attrs)

    def cell_span(
        self, name: str, cell: int, **attrs: AttrValue
    ) -> ContextManager[Span]:
        sampled = self._sampled
        if sampled is None or cell in sampled:
            return self._open(name, attrs)
        return _NULL_CONTEXT

    def sampled(self, cell: int) -> bool:
        sampled = self._sampled
        return sampled is None or cell in sampled

    def set_cell_population(self, order: Sequence[int]) -> None:
        if self.sample_every > 1:
            self._sampled = frozenset(order[:: self.sample_every])

    @contextmanager
    def _open(self, name: str, attrs: Dict[str, AttrValue]) -> Iterator[Span]:
        span = Span(name, attrs, t_start=monotonic())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.t_end = monotonic()
            self._stack.pop()

    def attach_payloads(
        self, payloads: Sequence[SpanPayload], worker: Optional[int] = None
    ) -> None:
        """Adopt externally produced spans (e.g. from worker processes).

        Payloads are appended as children of the innermost open span in
        the order given — the caller is responsible for that order being
        deterministic (the scheduler attaches in selection order).  The
        payload's ``duration`` is preserved; its start time is synthetic
        (the merge instant), since worker clocks are not comparable to
        the parent's.  ``worker`` (or a ``"worker"`` payload key) lands
        in the span's non-structural ``meta``.
        """
        now = monotonic()
        target = self._stack[-1].children if self._stack else self.roots
        for payload in payloads:
            span = Span.from_payload(payload)
            duration = payload.get("duration")
            span.t_start = now
            if isinstance(duration, (int, float)) and not isinstance(
                duration, bool
            ):
                span.t_end = now + float(duration)
            else:
                span.t_end = now
            origin = payload.get("worker", worker)
            if isinstance(origin, int):
                span.meta["worker"] = origin
            target.append(span)

    # -- digests & exports ---------------------------------------------

    def structure_hash(self) -> str:
        """Determinism digest of the recorded forest (timestamps stripped)."""
        return structure_hash(self.roots)

    def span_count(self) -> int:
        def count(span: Span) -> int:
            return 1 + sum(count(child) for child in span.children)

        return sum(count(root) for root in self.roots)

    def to_jsonl(self) -> str:
        """One JSON object per span, depth-first, ``depth`` marking nesting."""
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            record: Dict[str, object] = {
                "event": "span",
                "depth": depth,
                "name": span.name,
                "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
                "t_start": span.t_start,
                "t_end": span.t_end,
            }
            if span.meta:
                record["meta"] = {
                    key: span.meta[key] for key in sorted(span.meta)
                }
            lines.append(json.dumps(record, sort_keys=True))
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines) + "\n" if lines else ""

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON (the format Perfetto loads).

        Every span becomes one complete (``"ph": "X"``) event; nesting
        is implied by time containment on the same track.  Spans merged
        from workers render on per-worker tracks (``tid`` = worker + 1)
        so the pool's activity reads at a glance; the parent runs on
        ``tid`` 0.
        """
        events: List[Dict[str, object]] = []
        starts = [
            span.t_start
            for span in self._walk_all()
            if span.t_start is not None
        ]
        base = min(starts) if starts else 0.0

        def walk(span: Span) -> None:
            t_start = span.t_start if span.t_start is not None else base
            duration = span.duration or 0.0
            worker = span.meta.get("worker")
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((t_start - base) * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "pid": 0,
                "tid": worker + 1 if isinstance(worker, int) else 0,
                "args": {key: span.attrs[key] for key in sorted(span.attrs)},
            })
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")

    def _walk_all(self) -> Iterator[Span]:
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def __repr__(self) -> str:
        return f"SpanTracer({len(self.roots)} roots, {self.span_count()} spans)"
