"""Run manifests: what exactly produced an artifact, and on what.

A manifest is a small JSON document emitted beside every profile/trace
that pins down the run completely: the design (name, size, content
digest), every legalizer parameter, the worker count, the resulting
placement hash, the trace structure hash when tracing was on, and the
software environment (package/Python version, platform).  Two runs with
equal design digest, params, and placement hash computed the same
answer — on any machine, at any worker count; when they disagree,
:func:`diff_manifests` names exactly which knob or environment fact
differs.  ``repro report`` renders and diffs manifests from the CLI.

Digest conventions match ``benchmarks/bench_perf.py``: 16 hex chars of
SHA-256 over a canonical text serialization, so bench reports, CI
artifacts, and manifests are directly comparable.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement

__all__ = [
    "MANIFEST_VERSION",
    "build_manifest",
    "design_digest",
    "diff_manifests",
    "load_manifest",
    "manifest_path_for",
    "placement_digest",
    "write_manifest",
]

MANIFEST_VERSION = 1

#: Manifests are plain JSON objects; nesting is design/params sections.
Manifest = Dict[str, Any]

PathLike = Union[str, Path]


def design_digest(design: Design) -> str:
    """Content digest of a design via its canonical text serialization."""
    from repro.io.textformat import design_to_text

    return hashlib.sha256(design_to_text(design).encode()).hexdigest()[:16]


def placement_digest(placement: Placement) -> str:
    """Order-stable digest of all cell positions (bench-report compatible)."""
    payload = repr(list(zip(placement.x, placement.y))).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def build_manifest(
    design: Design,
    params: LegalizerParams,
    placement: Optional[Placement] = None,
    *,
    seed: Optional[int] = None,
    trace_structure_hash: Optional[str] = None,
    trace_sample_every: Optional[int] = None,
    shard_topology: Optional[Dict[str, Any]] = None,
) -> Manifest:
    """Assemble the manifest for one run.

    ``seed`` is the synthetic-generation seed when the caller knows it
    (designs loaded from files carry none).  ``trace_sample_every`` is
    the tracer's sampling stride when tracing was on — structure hashes
    are only comparable between runs traced at the same stride.
    ``shard_topology`` is the JSON form of the sharded-MGL partition
    (``ShardTopology.as_dict``) when ``params.shards > 1`` — two
    sharded runs are only the same experiment when their topologies
    match.  Environment fields record where the run happened; they are
    expected to differ across machines and are reported separately by
    :func:`diff_manifests`.
    """
    import repro

    return {
        "manifest_version": MANIFEST_VERSION,
        "design": {
            "name": design.name,
            "cells": design.num_cells,
            "rows": design.num_rows,
            "sites": design.num_sites,
            "digest": design_digest(design),
        },
        "params": asdict(params),
        "seed": seed,
        "workers": params.scheduler_workers,
        "placement_hash": (
            placement_digest(placement) if placement is not None else None
        ),
        "trace_structure_hash": trace_structure_hash,
        "trace_sample_every": trace_sample_every,
        "shard_topology": shard_topology,
        "package_version": repro.__version__,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
    }


def manifest_path_for(artifact_path: PathLike) -> Path:
    """The conventional manifest location beside an artifact.

    ``out/profile.json`` -> ``out/profile.manifest.json``;
    ``run.trace.json`` -> ``run.trace.manifest.json``.
    """
    path = Path(artifact_path)
    stem = path.name[:-5] if path.name.endswith(".json") else path.name
    return path.with_name(stem + ".manifest.json")


def write_manifest(manifest: Manifest, path: PathLike) -> None:
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def load_manifest(path: PathLike) -> Manifest:
    with open(path) as handle:
        manifest: Manifest = json.load(handle)
    return manifest


#: Fields describing the machine/software, not the computation.  A
#: mismatch here explains *why* results could differ; a mismatch in any
#: other field means the runs were not the same experiment.
ENVIRONMENT_FIELDS = ("package_version", "python_version", "platform")


def _flatten(manifest: Manifest, prefix: str = "") -> Dict[str, object]:
    flat: Dict[str, object] = {}
    for key in sorted(manifest):
        value = manifest[key]
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, dotted + "."))
        else:
            flat[dotted] = value
    return flat


def diff_manifests(a: Manifest, b: Manifest) -> List[str]:
    """Human-readable mismatch lines, configuration before environment.

    Empty means the manifests agree on every field.
    """
    flat_a, flat_b = _flatten(a), _flatten(b)
    config: List[str] = []
    environment: List[str] = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if key not in flat_a:
            config.append(f"{key}: <absent> != {flat_b[key]!r}")
        elif key not in flat_b:
            config.append(f"{key}: {flat_a[key]!r} != <absent>")
        elif flat_a[key] != flat_b[key]:
            line = f"{key}: {flat_a[key]!r} != {flat_b[key]!r}"
            if key in ENVIRONMENT_FIELDS:
                environment.append(f"{line} (environment)")
            else:
                config.append(line)
    return config + environment
