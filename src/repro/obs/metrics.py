"""Deterministic metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` collects everything a run observes:

* **counters** — monotone integer totals (insertions evaluated, cache
  hits, scheduler re-evaluations);
* **gauges** — last-write-wins floats (gap-cache hit ratio);
* **timings** — accumulated stage seconds plus call counts (the
  :class:`repro.perf.PerfRecorder` stage timers live here);
* **histograms** — fixed-bucket distributions: per-height-class
  displacement in row-height units (the distribution behind S_am /
  Eq. 2 and max-disp), window expansion depth, scheduler batch
  occupancy.

Everything except the timings is a pure function of the legalization
inputs, and serialization (:meth:`MetricsRegistry.as_dict` with
``sort_keys`` at dump time) is deterministic: two runs of the same
design at any worker count produce byte-identical counter/gauge/
histogram sections.  The registry is injected explicitly (usually via a
:class:`repro.perf.PerfRecorder`); un-instrumented runs never touch it.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BATCH_OCCUPANCY_BUCKETS",
    "BATCH_WIDTH_BUCKETS",
    "DISPLACEMENT_BUCKETS",
    "EXPANSION_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "SHARD_OCCUPANCY_BUCKETS",
    "parse_prometheus",
]

#: Displacement buckets in row-height units.  Well-legalized cells land
#: in the first few; the tail is the max-disp story the §3.2 matching
#: stage exists to crush.
DISPLACEMENT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

#: MGL window expansion depth per cell (0 = first window fit).
EXPANSION_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0,
)

#: Scheduler batch occupancy (windows actually packed into one L_p batch).
BATCH_OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

#: Width of batched insertion evaluations (``evaluate_insert_many``
#: tasks per call); same shape as the batch-occupancy buckets so the
#: two distributions compare directly.
BATCH_WIDTH_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

#: Cells placed per shard interior (the ``shard.occupancy`` histogram of
#: repro.core.shard) — a skewed distribution means the row-band cuts
#: landed badly for this design's GP density.
SHARD_OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)


class Histogram:
    """A fixed-bucket histogram with inclusive upper bounds.

    A value ``v`` lands in the first bucket whose bound satisfies
    ``v <= bound``; values above every bound land in the implicit
    overflow bucket, so ``len(counts) == len(bounds) + 1`` always.
    Bounds are fixed at construction — merged or diffed histograms never
    need re-bucketing.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(bound) for bound in bounds)
        if not cleaned or list(cleaned) != sorted(set(cleaned)):
            raise ValueError(
                f"histogram bounds must be strictly increasing: {bounds!r}"
            )
        self.bounds = cleaned
        self.counts: List[int] = [0] * (len(cleaned) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (floats rounded for stable text output)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 6),
        }

    def __repr__(self) -> str:
        return f"Histogram({len(self.bounds)} buckets, {self.total} samples)"


class MetricsRegistry:
    """Counters, gauges, timings, and histograms for one run."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_time(self, name: str, seconds: float) -> None:
        """Accumulate a stage duration (and its call count)."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds
        self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def set_gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge."""
        self.gauges[name] = value

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Fetch (or create, given ``bounds``) the histogram ``name``.

        Bounds are part of a histogram's identity: re-registering an
        existing name with different bounds raises.
        """
        existing = self.histograms.get(name)
        if existing is not None:
            if bounds is not None and tuple(
                float(bound) for bound in bounds
            ) != existing.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{existing.bounds}"
                )
            return existing
        if bounds is None:
            raise KeyError(f"histogram {name!r} not registered")
        created = Histogram(bounds)
        self.histograms[name] = created
        return created

    def observe(self, name: str, value: float, bounds: Sequence[float]) -> None:
        """One-call convenience: register-if-needed and record a sample."""
        self.histogram(name, bounds).observe(value)

    # -- reporting -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every section (sorted at dump time)."""
        return {
            "timings": {
                name: round(seconds, 6)
                for name, seconds in self.timings.items()
            },
            "stage_calls": dict(self.stage_calls),
            "counters": dict(self.counters),
            "gauges": {
                name: round(value, 6) for name, value in self.gauges.items()
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self.histograms.items()
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text-exposition snapshot of every section.

        Counters map to ``counter`` series (``_total`` suffix), gauges
        to ``gauge``, stage timings to ``_seconds_total`` /
        ``_calls_total`` counter pairs, and histograms to the standard
        cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet —
        the bucket semantics match (:class:`Histogram` bounds are
        inclusive upper bounds, exactly Prometheus ``le``).  Series are
        emitted in sorted name order, so the output is deterministic
        and diff-friendly; an empty registry renders to "".
        """
        lines: List[str] = []

        def metric(name: str, suffix: str = "") -> str:
            cleaned = "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name
            )
            return f"{prefix}_{cleaned}{suffix}"

        def fmt(value: float) -> str:
            return repr(float(value))

        for name in sorted(self.counters):
            series = metric(name, "_total")
            lines.append(f"# TYPE {series} counter")
            lines.append(f"{series} {self.counters[name]}")
        for name in sorted(self.gauges):
            series = metric(name)
            lines.append(f"# TYPE {series} gauge")
            lines.append(f"{series} {fmt(self.gauges[name])}")
        for name in sorted(self.timings):
            series = metric(name, "_seconds_total")
            lines.append(f"# TYPE {series} counter")
            lines.append(f"{series} {fmt(self.timings[name])}")
            calls = metric(name, "_calls_total")
            lines.append(f"# TYPE {calls} counter")
            lines.append(f"{calls} {self.stage_calls.get(name, 0)}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            series = metric(name)
            lines.append(f"# TYPE {series} histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(
                    f'{series}_bucket{{le="{fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{series}_bucket{{le="+Inf"}} {histogram.total}')
            lines.append(f"{series}_sum {fmt(histogram.sum)}")
            lines.append(f"{series}_count {histogram.total}")
        return "\n".join(lines) + "\n" if lines else ""

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.timings)} stages, "
            f"{len(self.counters)} counters, {len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms)"
        )


def parse_prometheus(text: str) -> Dict[str, float]:
    """Flat ``series -> value`` map from text-exposition output.

    The inverse of :meth:`MetricsRegistry.render_prometheus` as far as
    diffing needs: ``# TYPE``/``# HELP`` comments are skipped, labeled
    series keep their label block in the key (so every histogram bucket
    stays its own entry), and unparsable lines are ignored rather than
    fatal — a run-dir ``metrics.prom`` diff must not die on one strange
    line.  ``repro report`` uses this to render metric deltas between
    two run directories.
    """
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # "name{labels} value" or "name value"; labels may hold spaces.
        closing = line.rfind("}")
        split_at = line.find(" ", closing + 1) if closing >= 0 else line.find(" ")
        if split_at < 0:
            continue
        name, raw_value = line[:split_at], line[split_at + 1 :].strip()
        try:
            series[name] = float(raw_value)
        except ValueError:
            continue
    return series
