"""Observability: tracing, metrics, progress, manifests, logging.

Import surface is deliberately light — tracer, metrics, progress,
clock, and log only, so ``repro.obs`` can be imported from anywhere in
the package (including :mod:`repro.core`) without cycles.  Manifests,
span profiles, the run store, and the report renderer import model/io
types and live behind explicit ``repro.obs.manifest`` /
``repro.obs.profile`` / ``repro.obs.runstore`` / ``repro.obs.report``
imports.
"""

from repro.obs.clock import monotonic
from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    BATCH_OCCUPANCY_BUCKETS,
    DISPLACEMENT_BUCKETS,
    EXPANSION_BUCKETS,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressEmitter,
    render_event,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanPayload,
    SpanTracer,
    structure_hash,
)

__all__ = [
    "BATCH_OCCUPANCY_BUCKETS",
    "DISPLACEMENT_BUCKETS",
    "EXPANSION_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullProgress",
    "NullTracer",
    "ProgressEmitter",
    "Span",
    "SpanPayload",
    "SpanTracer",
    "get_logger",
    "monotonic",
    "parse_prometheus",
    "render_event",
    "setup_logging",
    "structure_hash",
]
