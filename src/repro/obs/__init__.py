"""Observability: span tracing, metrics, run manifests, logging.

Import surface is deliberately light — tracer, metrics, clock, and log
only, so ``repro.obs`` can be imported from anywhere in the package
(including :mod:`repro.core`) without cycles.  Manifests and the report
renderer import model/io types and live behind explicit
``repro.obs.manifest`` / ``repro.obs.report`` imports.
"""

from repro.obs.clock import monotonic
from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    BATCH_OCCUPANCY_BUCKETS,
    DISPLACEMENT_BUCKETS,
    EXPANSION_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanPayload,
    SpanTracer,
    structure_hash,
)

__all__ = [
    "BATCH_OCCUPANCY_BUCKETS",
    "DISPLACEMENT_BUCKETS",
    "EXPANSION_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanPayload",
    "SpanTracer",
    "get_logger",
    "monotonic",
    "setup_logging",
    "structure_hash",
]
