"""Persistent run store: append-only cross-run history with trends.

One run directory (`repro legalize --run-dir`) is a single data point;
the run store strings those points into history so drift shows up as a
*trend*, not as a diff against one committed baseline.  Layout::

    <store>/
      index.json            # {"version": 1, "runs": [record, ...]}
      runs/000001/
        manifest.json       # the run's full manifest
        metrics.json        # MetricsRegistry.as_dict(), when recorded
        span_profile.json   # SpanProfile.as_dict(), when traced
        profile.collapsed   # flamegraph.pl folded stacks, when traced

The index record is the small, trend-able core: a comparability **key**
(design name + cell count + a digest of the legalizer params, so runs
with different knobs never trend against each other), wall seconds, the
placement hash, and a few counters.  ``repro runs list|show|trend``
renders the history; ``check_regression.py --store`` gates the scale CI
job on the **median** of stored history instead of a single point and
appends the fresh report afterwards, so the store seeds itself across
CI runs.

Run ids are sequential (``000001`` …), not timestamps — the store obeys
the same no-wall-clock discipline as the rest of the codebase, and CI
artifact ordering is by append order anyway.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "RunStore",
    "TrendResult",
    "bench_records",
    "render_run_detail",
    "render_runs_list",
    "render_trends",
    "run_key_for_manifest",
]

PathLike = Union[str, Path]

#: One index entry.  Values are JSON scalars plus one nested counter map.
Record = Dict[str, object]

#: Counters worth trending from a bench record or metrics dump.
_TREND_COUNTERS = ("insertions_evaluated", "window_expansions")

STORE_VERSION = 1


def run_key_for_manifest(manifest: Mapping[str, object]) -> str:
    """Comparability key: design identity plus a params digest.

    Two runs trend against each other only when they legalized the same
    design shape with the same knobs; the 8-hex params digest keeps
    e.g. a capacity-8 run from gating a capacity-1 run.
    """
    design = manifest.get("design")
    name = "unknown"
    cells = 0
    if isinstance(design, Mapping):
        name = str(design.get("name", "unknown"))
        raw_cells = design.get("cells", 0)
        if isinstance(raw_cells, (int, float)):
            cells = int(raw_cells)
    params = manifest.get("params")
    digest = hashlib.sha256(
        json.dumps(params, sort_keys=True, default=str).encode()
    ).hexdigest()[:8]
    return f"{name}@{cells}/{digest}"


@dataclass
class TrendResult:
    """Latest-vs-history verdict for one key."""

    key: str
    runs: int
    latest_seconds: Optional[float]
    baseline_median: Optional[float]
    drift_pct: Optional[float]
    hash_changed: bool
    counter_drift: Dict[str, float] = field(default_factory=dict)
    flagged: bool = False
    reason: str = ""


class RunStore:
    """Append-only store under one root directory."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # -- index i/o -----------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def records(self) -> List[Record]:
        if not self.index_path.exists():
            return []
        with open(self.index_path) as handle:
            payload = json.load(handle)
        runs = payload.get("runs", [])
        return list(runs) if isinstance(runs, list) else []

    def _write_records(self, records: Sequence[Record]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {"version": STORE_VERSION, "runs": list(records)},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        os.replace(tmp, self.index_path)

    def _next_id(self, records: Sequence[Record]) -> str:
        highest = 0
        for record in records:
            raw = record.get("id")
            if isinstance(raw, str) and raw.isdigit():
                highest = max(highest, int(raw))
        return f"{highest + 1:06d}"

    # -- appends -------------------------------------------------------

    def add_run(
        self,
        manifest: Mapping[str, object],
        metrics: Optional[Mapping[str, object]] = None,
        span_profile: Optional[Mapping[str, object]] = None,
        collapsed: Optional[str] = None,
        seconds: Optional[float] = None,
        label: str = "",
    ) -> str:
        """Append one legalization run; returns its id."""
        records = self.records()
        run_id = self._next_id(records)
        run_dir = self.root / "runs" / run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n"
        )
        if metrics is not None:
            (run_dir / "metrics.json").write_text(
                json.dumps(metrics, indent=2, sort_keys=True) + "\n"
            )
        if span_profile is not None:
            (run_dir / "span_profile.json").write_text(
                json.dumps(span_profile, indent=2, sort_keys=True) + "\n"
            )
        if collapsed is not None:
            (run_dir / "profile.collapsed").write_text(collapsed)

        design = manifest.get("design")
        counters: Dict[str, object] = {}
        if metrics is not None:
            metric_counters = metrics.get("counters")
            if isinstance(metric_counters, Mapping):
                for name in _TREND_COUNTERS:
                    value = metric_counters.get(f"mgl.{name}")
                    if isinstance(value, (int, float)):
                        counters[name] = value
        record: Record = {
            "id": run_id,
            "key": run_key_for_manifest(manifest),
            "source": "run",
            "label": label,
            "design": (
                design.get("name") if isinstance(design, Mapping) else None
            ),
            "cells": (
                design.get("cells") if isinstance(design, Mapping) else None
            ),
            "seconds": round(seconds, 4) if seconds is not None else None,
            "placement_hash": manifest.get("placement_hash"),
            "counters": counters,
        }
        records.append(record)
        self._write_records(records)
        return run_id

    def add_bench_report(
        self, report: Mapping[str, object], label: str = ""
    ) -> List[str]:
        """Append every trend-able case of one bench report."""
        records = self.records()
        added: List[str] = []
        for record in bench_records(report, label=label):
            run_id = self._next_id(records)
            record["id"] = run_id
            records.append(record)
            added.append(run_id)
        if added:
            self._write_records(records)
        return added

    # -- queries -------------------------------------------------------

    def keys(self) -> List[str]:
        seen: List[str] = []
        for record in self.records():
            key = record.get("key")
            if isinstance(key, str) and key not in seen:
                seen.append(key)
        return seen

    def history(
        self, key: str, last: Optional[int] = None
    ) -> List[Record]:
        """Records for ``key`` in append order, optionally the last N."""
        matching = [r for r in self.records() if r.get("key") == key]
        if last is not None and last > 0:
            matching = matching[-last:]
        return matching

    def run_dir(self, run_id: str) -> Path:
        return self.root / "runs" / run_id

    def trend(
        self,
        key: str,
        last: int = 10,
        max_drift_pct: float = 25.0,
        min_seconds: float = 0.05,
    ) -> TrendResult:
        """Latest run vs the median of its stored history.

        Flags (a) wall-time drift beyond ``max_drift_pct`` when the
        baseline is big enough to measure, (b) a placement-hash change
        against the immediately preceding run (always fatal — that is
        determinism drift, not noise), and (c) counter drift beyond the
        same percentage.  Needs >= 3 runs to call a wall-time trend.
        """
        history = self.history(key, last=last)
        result = TrendResult(
            key=key,
            runs=len(history),
            latest_seconds=None,
            baseline_median=None,
            drift_pct=None,
            hash_changed=False,
        )
        if not history:
            return result
        latest = history[-1]
        seconds = latest.get("seconds")
        result.latest_seconds = (
            float(seconds) if isinstance(seconds, (int, float)) else None
        )

        hashes = [
            r.get("placement_hash")
            for r in history
            if isinstance(r.get("placement_hash"), str)
        ]
        if len(hashes) >= 2 and hashes[-1] != hashes[-2]:
            result.hash_changed = True
            result.flagged = True
            result.reason = (
                f"placement hash changed: {hashes[-2]} -> {hashes[-1]}"
            )

        prior = history[:-1]
        prior_seconds = [
            float(r["seconds"])
            for r in prior
            if isinstance(r.get("seconds"), (int, float))
        ]
        if result.latest_seconds is not None and len(prior_seconds) >= 2:
            baseline = median(prior_seconds)
            result.baseline_median = round(baseline, 4)
            if baseline >= min_seconds:
                drift = 100.0 * (result.latest_seconds - baseline) / baseline
                result.drift_pct = round(drift, 2)
                if drift > max_drift_pct and not result.flagged:
                    result.flagged = True
                    result.reason = (
                        f"wall time {result.latest_seconds:.3f}s is "
                        f"{drift:+.1f}% vs median "
                        f"{baseline:.3f}s of {len(prior_seconds)} runs"
                    )

        latest_counters = latest.get("counters")
        if isinstance(latest_counters, Mapping):
            for name in _TREND_COUNTERS:
                value = latest_counters.get(name)
                if not isinstance(value, (int, float)):
                    continue
                prior_values = [
                    float(counters[name])
                    for r in prior
                    if isinstance(counters := r.get("counters"), Mapping)
                    and isinstance(counters.get(name), (int, float))
                ]
                if len(prior_values) < 2:
                    continue
                baseline = median(prior_values)
                if baseline <= 0:
                    continue
                drift = 100.0 * (float(value) - baseline) / baseline
                result.counter_drift[name] = round(drift, 2)
                if abs(drift) > max_drift_pct and not result.flagged:
                    result.flagged = True
                    result.reason = (
                        f"{name} {value} is {drift:+.1f}% vs median "
                        f"{baseline:.0f}"
                    )
        return result

    def trends(
        self, last: int = 10, max_drift_pct: float = 25.0
    ) -> List[TrendResult]:
        return [
            self.trend(key, last=last, max_drift_pct=max_drift_pct)
            for key in self.keys()
        ]


def bench_records(
    report: Mapping[str, object], label: str = ""
) -> List[Record]:
    """Flatten a ``BENCH_mgl.json``-shaped report into store records.

    One record per ``runs[]`` case (key ``name@scale``) plus one for
    the sharded section under its topology-qualified key — the same
    keys ``check_regression.py`` compares, so store history and the
    committed baseline speak one naming scheme.
    """
    records: List[Record] = []
    runs = report.get("runs")
    if isinstance(runs, list):
        for run in runs:
            if not isinstance(run, Mapping):
                continue
            counters = {
                name: run[name]
                for name in _TREND_COUNTERS
                if isinstance(run.get(name), (int, float))
            }
            records.append({
                "id": "",
                "key": f"{run.get('name')}@{run.get('scale')}",
                "source": "bench",
                "label": label,
                "design": run.get("name"),
                "cells": run.get("cells"),
                "seconds": run.get("seconds"),
                "placement_hash": run.get("placement_hash"),
                "counters": counters,
            })
    sharded = report.get("sharded")
    if isinstance(sharded, Mapping):
        key = (
            f"{sharded.get('name')}@{sharded.get('scale')}"
            f"#shards{sharded.get('shards')}h{sharded.get('halo_rows')}"
        )
        records.append({
            "id": "",
            "key": key,
            "source": "bench",
            "label": label,
            "design": sharded.get("name"),
            "cells": sharded.get("cells"),
            "seconds": sharded.get("sharded_seconds"),
            "placement_hash": sharded.get("sharded_hash"),
            "counters": {},
        })
    overhead = report.get("tracing_overhead")
    if isinstance(overhead, Mapping):
        records.append({
            "id": "",
            "key": (
                f"{overhead.get('name')}@{overhead.get('scale')}"
                f"#sampled{overhead.get('sample_every')}"
            ),
            "source": "bench",
            "label": label,
            "design": overhead.get("name"),
            "cells": overhead.get("cells"),
            "seconds": overhead.get("sampled_seconds"),
            "placement_hash": overhead.get("sampled_hash"),
            "counters": {},
        })
    return records


# ----------------------------------------------------------------------
# Rendering (the `repro runs` views)
# ----------------------------------------------------------------------


def render_runs_list(store: RunStore) -> str:
    records = store.records()
    if not records:
        return f"run store {store.root}: empty"
    lines = [
        f"run store {store.root}: {len(records)} runs, "
        f"{len(store.keys())} keys",
        f"  {'id':<8} {'source':<6} {'seconds':>9} {'hash':<18} key",
    ]
    for record in records:
        seconds = record.get("seconds")
        seconds_text = (
            f"{float(seconds):9.3f}"
            if isinstance(seconds, (int, float))
            else f"{'-':>9}"
        )
        digest = record.get("placement_hash")
        lines.append(
            f"  {record.get('id', ''):<8} {record.get('source', ''):<6} "
            f"{seconds_text} {str(digest or '-'):<18} {record.get('key')}"
        )
    return "\n".join(lines)


def render_run_detail(store: RunStore, run_id: str) -> str:
    """The ``repro runs show`` view: index record + stored artifacts."""
    record = next(
        (r for r in store.records() if r.get("id") == run_id), None
    )
    if record is None:
        return f"run {run_id}: not found in {store.index_path}"
    lines = [f"run {run_id} ({record.get('source')}):"]
    for field_name in ("key", "design", "cells", "seconds",
                       "placement_hash", "label"):
        value = record.get(field_name)
        if value not in (None, ""):
            lines.append(f"  {field_name}: {value}")
    counters = record.get("counters")
    if isinstance(counters, Mapping) and counters:
        for name in sorted(counters):
            lines.append(f"  counters.{name}: {counters[name]}")
    run_dir = store.run_dir(run_id)
    artifacts = sorted(p.name for p in run_dir.glob("*")) if (
        run_dir.exists()
    ) else []
    if artifacts:
        lines.append(f"  artifacts ({run_dir}): {', '.join(artifacts)}")
    profile_path = run_dir / "span_profile.json"
    if profile_path.exists():
        from repro.obs.profile import profile_from_dict, render_profile

        with open(profile_path) as handle:
            profile = profile_from_dict(json.load(handle))
        lines.append(render_profile(profile))
    return "\n".join(lines)


def render_trends(trends: Sequence[TrendResult]) -> str:
    if not trends:
        return "no keys in store"
    lines = [
        f"  {'key':<44} {'runs':>4} {'median(s)':>10} {'latest(s)':>10} "
        f"{'drift':>8}  status"
    ]
    for trend in trends:
        median_text = (
            f"{trend.baseline_median:10.3f}"
            if trend.baseline_median is not None
            else f"{'-':>10}"
        )
        latest_text = (
            f"{trend.latest_seconds:10.3f}"
            if trend.latest_seconds is not None
            else f"{'-':>10}"
        )
        drift_text = (
            f"{trend.drift_pct:+7.1f}%"
            if trend.drift_pct is not None
            else f"{'-':>8}"
        )
        status = "DRIFT" if trend.flagged else "ok"
        lines.append(
            f"  {trend.key:<44} {trend.runs:>4} {median_text} "
            f"{latest_text} {drift_text}  {status}"
        )
        if trend.flagged:
            lines.append(f"      {trend.reason}")
    return "\n".join(lines)
