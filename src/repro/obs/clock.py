"""The one sanctioned monotonic clock of the observability layer.

The reproduction's standing invariant (repro-lint **D004**,
docs/STATIC_ANALYSIS.md) is that algorithm results are a pure function
of their inputs: algorithm modules must never read the *wall* clock.
Monotonic duration probes are permitted — they measure stages without
steering them — but scattering ``time.perf_counter()`` calls through the
codebase makes that boundary hard to audit.  This module confines the
monotonic clock to one place: every timestamp recorded by
:mod:`repro.obs` (span start/end, stage timers, worker busy time) is
read through :func:`monotonic`, and nothing here ever exposes calendar
time.

Timestamps read from this clock are **non-structural** by definition:
they are stripped before any determinism comparison (see
:func:`repro.obs.tracer.structure_hash`) and never feed back into a
placement decision.
"""

from __future__ import annotations

import time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Monotonic seconds since an arbitrary origin (``perf_counter``).

    The only clock observability code may read.  Differences are
    meaningful; absolute values are not, carry no calendar information,
    and are not comparable across processes.
    """
    return time.perf_counter()
