"""Design and placement persistence.

Two formats: the library's own line-oriented text format
(:mod:`repro.io.textformat`, full model fidelity) and the academic
Bookshelf format (:mod:`repro.io.bookshelf`, interchange with other
placers — geometry, fixed cells, and nets; no fences/rails).
"""

from repro.io.bookshelf import load_bookshelf, save_bookshelf
from repro.io.textformat import (
    design_to_text,
    load_design,
    load_placement,
    save_design,
    save_placement,
)

__all__ = [
    "design_to_text",
    "load_bookshelf",
    "load_design",
    "load_placement",
    "save_bookshelf",
    "save_design",
    "save_placement",
]
