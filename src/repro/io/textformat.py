"""A line-oriented text format for designs and placements.

The contest benchmarks come as LEF/DEF-style text; this module plays that
role for the reproduction: a human-readable, diff-friendly serialization
covering the whole data model (technology, chip, cells, fences, rails, IO
pins, blockages, netlist) plus standalone placement files.

Format sketch (``#`` starts a comment; sections are keyword-introduced)::

    design <name> rows <n> sites <n> site_width <w> row_height <h> parity <p>
    celltype <name> width <w> height <h> left_edge <e> right_edge <e>
    pin <celltype> <name> <layer> <xlo> <ylo> <xhi> <yhi>
    edgerule <a> <b> <spacing>
    fence <id> <name>
    fencerect <id> <xlo> <ylo> <xhi> <yhi>
    blockage <xlo> <ylo> <xhi> <yhi>
    rail <layer> <h|v> <offset> <pitch> <width> <span_lo> <span_hi> <ext_lo> <ext_hi>
    iopin <name> <layer> <xlo> <ylo> <xhi> <yhi>
    cell <name> <celltype> <gp_x> <gp_y> <fence_id> <fixed 0|1>
    net <name> <cell_index> <cell_index> ...
    placement files: one ``place <cell_index> <x> <y>`` per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Interval, Rect
from repro.model.netlist import Net, PinRef
from repro.model.placement import Placement
from repro.model.rails import IOPin, Rail
from repro.model.technology import CellType, PinShape, Technology

PathLike = Union[str, Path]


def design_to_text(design: Design) -> str:
    """Canonical text serialization of a complete design.

    This string is the content identity of a design: it feeds both
    :func:`save_design` and :func:`repro.obs.manifest.design_digest`, so
    a manifest's digest matches what a saved file would hash to.
    """
    lines: List[str] = [
        "# repro design v1",
        f"design {design.name} rows {design.num_rows} sites {design.num_sites} "
        f"site_width {design.site_width!r} row_height {design.row_height!r} "
        f"parity {design.power_parity}",
    ]
    for cell_type in design.technology.cell_types:
        lines.append(
            f"celltype {cell_type.name} width {cell_type.width} "
            f"height {cell_type.height} left_edge {cell_type.left_edge} "
            f"right_edge {cell_type.right_edge}"
        )
        for pin in cell_type.pins:
            rect = pin.rect
            lines.append(
                f"pin {cell_type.name} {pin.name} {pin.layer} "
                f"{rect.xlo!r} {rect.ylo!r} {rect.xhi!r} {rect.yhi!r}"
            )
    for edge_a, edge_b, spacing in design.technology.edge_spacing.items():
        lines.append(f"edgerule {edge_a} {edge_b} {spacing}")
    for fence in design.fences:
        lines.append(f"fence {fence.fence_id} {fence.name}")
        for rect in fence.rects:
            lines.append(
                f"fencerect {fence.fence_id} "
                f"{int(rect.xlo)} {int(rect.ylo)} {int(rect.xhi)} {int(rect.yhi)}"
            )
    for rect in design.blockages:
        lines.append(
            f"blockage {int(rect.xlo)} {int(rect.ylo)} {int(rect.xhi)} {int(rect.yhi)}"
        )
    for rail in design.rails.rails:
        lines.append(
            f"rail {rail.layer} {rail.orientation} {rail.offset!r} {rail.pitch!r} "
            f"{rail.width!r} {rail.span.lo!r} {rail.span.hi!r} "
            f"{rail.extent.lo!r} {rail.extent.hi!r}"
        )
    for io_pin in design.rails.io_pins:
        rect = io_pin.rect
        lines.append(
            f"iopin {io_pin.name} {io_pin.layer} "
            f"{rect.xlo!r} {rect.ylo!r} {rect.xhi!r} {rect.yhi!r}"
        )
    for cell in design.cells:
        lines.append(
            f"cell {cell.name} {cell.cell_type.name} {cell.gp_x!r} {cell.gp_y!r} "
            f"{cell.fence_id} {1 if cell.fixed else 0}"
        )
    for net in design.netlist.nets:
        members = " ".join(str(pin.cell) for pin in net.pins)
        lines.append(f"net {net.name} {members}")
    return "\n".join(lines) + "\n"


def save_design(design: Design, path: PathLike) -> None:
    """Serialize a complete design to ``path``."""
    Path(path).write_text(design_to_text(design))


def load_design(path: PathLike) -> Design:
    """Parse a design written by :func:`save_design`.

    Raises:
        ValueError: on malformed lines or unknown keywords.
    """
    design: Design = None  # type: ignore[assignment]
    technology = Technology()
    pending_pins: Dict[str, List[PinShape]] = {}
    raw_types: Dict[str, Dict[str, int]] = {}

    def finalize_types() -> None:
        for name, fields in raw_types.items():
            technology.add_cell_type(
                CellType(
                    name=name,
                    width=fields["width"],
                    height=fields["height"],
                    pins=tuple(pending_pins.get(name, ())),
                    left_edge=fields["left_edge"],
                    right_edge=fields["right_edge"],
                )
            )
        raw_types.clear()

    fences: Dict[int, FenceRegion] = {}
    for line_number, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        try:
            if keyword == "design":
                design = Design(
                    technology,
                    num_rows=int(tokens[3]),
                    num_sites=int(tokens[5]),
                    site_width=float(tokens[7]),
                    row_height=float(tokens[9]),
                    power_parity=int(tokens[11]),
                    name=tokens[1],
                )
            elif keyword == "celltype":
                raw_types[tokens[1]] = {
                    "width": int(tokens[3]),
                    "height": int(tokens[5]),
                    "left_edge": int(tokens[7]),
                    "right_edge": int(tokens[9]),
                }
            elif keyword == "pin":
                pending_pins.setdefault(tokens[1], []).append(
                    PinShape(
                        name=tokens[2],
                        layer=int(tokens[3]),
                        rect=Rect(*(float(t) for t in tokens[4:8])),
                    )
                )
            elif keyword == "edgerule":
                technology.edge_spacing.set_spacing(
                    int(tokens[1]), int(tokens[2]), int(tokens[3])
                )
            elif keyword == "fence":
                finalize_types()
                fence = FenceRegion(int(tokens[1]), tokens[2])
                fences[fence.fence_id] = fence
            elif keyword == "fencerect":
                fences[int(tokens[1])].add_rect(
                    Rect(*(int(t) for t in tokens[2:6]))
                )
            elif keyword == "blockage":
                design.add_blockage(Rect(*(int(t) for t in tokens[1:5])))
            elif keyword == "rail":
                design.rails.add_rail(
                    Rail(
                        layer=int(tokens[1]),
                        orientation=tokens[2],
                        offset=float(tokens[3]),
                        pitch=float(tokens[4]),
                        width=float(tokens[5]),
                        span=Interval(float(tokens[6]), float(tokens[7])),
                        extent=Interval(float(tokens[8]), float(tokens[9])),
                    )
                )
            elif keyword == "iopin":
                design.rails.add_io_pin(
                    IOPin(
                        tokens[1],
                        int(tokens[2]),
                        Rect(*(float(t) for t in tokens[3:7])),
                    )
                )
            elif keyword == "cell":
                finalize_types()
                design.add_cell(
                    tokens[1],
                    technology.type_named(tokens[2]),
                    gp_x=float(tokens[3]),
                    gp_y=float(tokens[4]),
                    fence_id=int(tokens[5]),
                    fixed=tokens[6] == "1",
                )
            elif keyword == "net":
                design.netlist.add_net(
                    Net(tokens[1], [PinRef(int(t)) for t in tokens[2:]])
                )
            else:
                raise ValueError(f"unknown keyword {keyword!r}")
        except (IndexError, KeyError) as exc:
            raise ValueError(f"{path}:{line_number}: malformed line: {raw!r}") from exc
    finalize_types()
    if design is None:
        raise ValueError(f"{path}: no 'design' line found")
    # Fences are registered only now, once all their rects are parsed:
    # add_fence rebuilds the design's row segments, so a fence must be
    # geometrically complete when it goes in.
    for fence in fences.values():
        design.add_fence(fence)
    # Re-register any cell types defined after the design line.
    design.validate()
    return design


def save_placement(placement: Placement, path: PathLike) -> None:
    """Write one ``place <cell> <x> <y>`` line per cell."""
    lines = ["# repro placement v1"]
    for cell in range(placement.design.num_cells):
        lines.append(f"place {cell} {placement.x[cell]} {placement.y[cell]}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_placement(design: Design, path: PathLike) -> Placement:
    """Read a placement written by :func:`save_placement`."""
    placement = Placement(design)
    for line_number, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] != "place" or len(tokens) != 4:
            raise ValueError(f"{path}:{line_number}: malformed line: {raw!r}")
        placement.move(int(tokens[1]), int(tokens[2]), int(tokens[3]))
    return placement
