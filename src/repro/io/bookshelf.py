"""Bookshelf placement format (.aux/.nodes/.nets/.pl/.scl).

Bookshelf is the lingua franca of academic placement (ISPD/DAC contest
releases ship in it), so supporting it lets this library exchange
designs with other placers and lets users run the legalizer on published
benchmarks after the usual mixed-height conversion.

Supported subset:

* ``.nodes`` — cell names, width/height in length units, ``terminal``
  marks fixed cells;
* ``.pl`` — positions, orientation ignored, ``/FIXED`` marks fixed;
* ``.scl`` — uniform ``CoreRow`` records give row height, site width,
  origin, and sites per row;
* ``.nets`` — ``NetDegree`` blocks; pin offsets are parsed but collapsed
  to the cell (our HPWL uses cell centers, the standard approximation);
* ``.aux`` — the index file naming the others.

Cell widths/heights must be integer multiples of the site width / row
height (true for contest releases); fractional footprints are rejected
with a clear error.  Loading synthesizes one
:class:`~repro.model.technology.CellType` per distinct footprint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.model.design import Design
from repro.model.netlist import Net, PinRef
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def save_bookshelf(
    design: Design,
    directory: PathLike,
    basename: Optional[str] = None,
    placement: Optional[Placement] = None,
) -> Path:
    """Write the design (and optionally a placement) as Bookshelf files.

    Returns the path of the ``.aux`` index file.  GP positions go into
    the ``.pl`` unless ``placement`` is given.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = basename or design.name
    sw, rh = design.site_width, design.row_height

    nodes_lines = [
        "UCLA nodes 1.0",
        f"NumNodes : {design.num_cells}",
        f"NumTerminals : {sum(1 for c in design.cells if c.fixed)}",
    ]
    for cell in design.cells:
        width_len = cell.cell_type.width * sw
        height_len = cell.cell_type.height * rh
        suffix = " terminal" if cell.fixed else ""
        nodes_lines.append(f"  {cell.name} {width_len:g} {height_len:g}{suffix}")
    (directory / f"{base}.nodes").write_text("\n".join(nodes_lines) + "\n")

    pl_lines = ["UCLA pl 1.0"]
    for index, cell in enumerate(design.cells):
        if placement is not None:
            x_len = placement.x[index] * sw
            y_len = placement.y[index] * rh
        else:
            x_len = cell.gp_x * sw
            y_len = cell.gp_y * rh
        suffix = " /FIXED" if cell.fixed else ""
        pl_lines.append(f"  {cell.name} {x_len!r} {y_len!r} : N{suffix}")
    (directory / f"{base}.pl").write_text("\n".join(pl_lines) + "\n")

    scl_lines = ["UCLA scl 1.0", f"NumRows : {design.num_rows}"]
    for row in range(design.num_rows):
        scl_lines.extend([
            "CoreRow Horizontal",
            f"  Coordinate : {row * rh:g}",
            f"  Height : {rh:g}",
            f"  Sitewidth : {sw:g}",
            "  Sitespacing : %g" % sw,
            "  Siteorient : 1",
            "  Sitesymmetry : 1",
            f"  SubrowOrigin : 0  NumSites : {design.num_sites}",
            "End",
        ])
    (directory / f"{base}.scl").write_text("\n".join(scl_lines) + "\n")

    num_pins = sum(len(net.pins) for net in design.netlist.nets)
    nets_lines = [
        "UCLA nets 1.0",
        f"NumNets : {len(design.netlist)}",
        f"NumPins : {num_pins}",
    ]
    for net in design.netlist.nets:
        nets_lines.append(f"NetDegree : {len(net.pins)} {net.name}")
        for pin in net.pins:
            nets_lines.append(f"  {design.cells[pin.cell].name} I : 0 0")
    (directory / f"{base}.nets").write_text("\n".join(nets_lines) + "\n")

    aux = directory / f"{base}.aux"
    aux.write_text(
        f"RowBasedPlacement : {base}.nodes {base}.nets {base}.pl {base}.scl\n"
    )
    return aux


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def load_bookshelf(aux_path: PathLike) -> Tuple[Design, Placement]:
    """Parse a Bookshelf bundle into a Design plus its .pl placement.

    The .pl positions become both the GP input (``design.gp_*``) and the
    returned placement (rounded to sites/rows).

    Raises:
        ValueError: on unsupported/malformed content (non-uniform rows,
            fractional footprints, unknown node references).
    """
    aux_path = Path(aux_path)
    tokens = aux_path.read_text().split(":", 1)
    if len(tokens) != 2:
        raise ValueError(f"{aux_path}: malformed .aux")
    files = {Path(f).suffix: aux_path.parent / f for f in tokens[1].split()}
    for suffix in (".nodes", ".pl", ".scl"):
        if suffix not in files:
            raise ValueError(f"{aux_path}: missing {suffix} entry")

    rows, row_height, site_width, num_sites = _parse_scl(files[".scl"])
    nodes = _parse_nodes(files[".nodes"])
    positions = _parse_pl(files[".pl"])

    technology = Technology()
    types: Dict[Tuple[int, int], CellType] = {}
    design = Design(
        technology,
        num_rows=rows,
        num_sites=num_sites,
        site_width=site_width,
        row_height=row_height,
        name=aux_path.stem,
    )
    name_to_index: Dict[str, int] = {}

    xs: List[int] = []
    ys: List[int] = []
    for name, (width_len, height_len, terminal) in nodes.items():
        width = _as_multiple(width_len, site_width, f"node {name} width")
        height = _as_multiple(height_len, row_height, f"node {name} height")
        key = (width, height)
        if key not in types:
            types[key] = technology.add_cell_type(
                CellType(f"W{width}H{height}", width, height)
            )
        x_len, y_len, fixed_flag = positions.get(name, (0.0, 0.0, False))
        gp_x = x_len / site_width
        gp_y = y_len / row_height
        index = design.add_cell(
            name, types[key], gp_x, gp_y, fixed=terminal or fixed_flag
        )
        name_to_index[name] = index
        xs.append(int(round(gp_x)))
        ys.append(int(round(gp_y)))

    if ".nets" in files and files[".nets"].exists():
        for net_name, members in _parse_nets(files[".nets"]):
            pins = [
                PinRef(name_to_index[m]) for m in members if m in name_to_index
            ]
            if len(pins) >= 2:
                design.netlist.add_net(Net(net_name, pins))

    placement = Placement(design, xs, ys)
    return design, placement


def _as_multiple(value: float, unit: float, what: str) -> int:
    ratio = value / unit
    rounded = round(ratio)
    if abs(ratio - rounded) > 1e-6 or rounded <= 0:
        raise ValueError(
            f"{what} ({value}) is not a positive multiple of {unit}"
        )
    return int(rounded)


def _data_lines(path: Path) -> List[str]:
    lines: List[str] = []
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line and not line.startswith("UCLA"):
            lines.append(line)
    return lines


def _parse_nodes(path: Path) -> Dict[str, Tuple[float, float, bool]]:
    nodes: Dict[str, Tuple[float, float, bool]] = {}
    for line in _data_lines(path):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        tokens = line.split()
        if len(tokens) < 3:
            raise ValueError(f"{path}: malformed node line {line!r}")
        nodes[tokens[0]] = (
            float(tokens[1]),
            float(tokens[2]),
            "terminal" in tokens[3:],
        )
    return nodes


def _parse_pl(path: Path) -> Dict[str, Tuple[float, float, bool]]:
    positions: Dict[str, Tuple[float, float, bool]] = {}
    for line in _data_lines(path):
        tokens = line.split()
        if len(tokens) < 3:
            continue
        fixed = "/FIXED" in tokens
        positions[tokens[0]] = (float(tokens[1]), float(tokens[2]), fixed)
    return positions


def _parse_scl(path: Path) -> Tuple[int, float, float, int]:
    """Returns (num_rows, row_height, site_width, num_sites)."""
    heights: List[float] = []
    site_widths: List[float] = []
    num_sites: List[int] = []
    count = 0
    for line in _data_lines(path):
        if line.startswith("CoreRow"):
            count += 1
        elif line.startswith("Height"):
            heights.append(float(line.split(":")[1]))
        elif line.startswith("Sitewidth"):
            site_widths.append(float(line.split(":")[1]))
        elif line.startswith("SubrowOrigin"):
            num_sites.append(int(line.split(":")[-1]))
    if not count or not heights or not site_widths or not num_sites:
        raise ValueError(f"{path}: no usable CoreRow records")
    if len(set(heights)) > 1 or len(set(site_widths)) > 1 or len(set(num_sites)) > 1:
        raise ValueError(f"{path}: non-uniform rows are not supported")
    return count, heights[0], site_widths[0], num_sites[0]


def _parse_nets(path: Path) -> List[Tuple[str, List[str]]]:
    nets: List[Tuple[str, List[str]]] = []
    current: Optional[Tuple[str, List[str]]] = None
    index = 0
    for line in _data_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            tokens = line.split()
            name = tokens[-1] if not tokens[-1].isdigit() else f"net{index}"
            index += 1
            current = (name, [])
            nets.append(current)
        elif current is not None:
            current[1].append(line.split()[0])
    return nets
