"""Command-line interface.

Subcommands::

    repro generate  — build a synthetic design file
    repro legalize  — legalize a design, write the placement
    repro check     — verify legality/routability and print the score
    repro compare   — run all legalizers on a design (Table-2 style)
    repro report    — render one run's artifacts, or diff two runs
    repro runs      — browse the persistent run store (list/show/trend)
    repro svg       — render a placement to SVG

Designs and placements use the text format of :mod:`repro.io`.
Run ``repro <command> --help`` for options.

Computed results (scores, summaries, tables) go to stdout; diagnostics
("wrote X") go through :mod:`repro.obs.log` to stderr, tunable with the
global ``--log-level`` / ``--log-format`` flags — so piping ``repro``
output stays clean.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, TYPE_CHECKING, Tuple, cast

from repro import LegalizerParams, legalize
from repro.checker import check_legal, contest_score, count_routability_violations
from repro.io import load_design, load_placement, save_design, save_placement
from repro.obs.clock import monotonic
from repro.obs.log import FORMATS, LEVELS, get_logger, setup_logging

if TYPE_CHECKING:
    from repro.model.design import Design
    from repro.model.placement import Placement
    from repro.obs.progress import ProgressEmitter
    from repro.obs.tracer import SpanTracer
    from repro.perf import PerfRecorder

#: Default run-store location (relative to the working directory).
DEFAULT_STORE = ".repro-runs"

log = get_logger("cli")


def _add_param_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-routability", action="store_true",
                        help="ignore rails/IO pins during legalization")
    parser.add_argument("--no-matching", action="store_true",
                        help="skip the max-displacement matching stage")
    parser.add_argument("--no-flow-opt", action="store_true",
                        help="skip the fixed-row-fixed-order MCF stage")
    parser.add_argument("--window", type=int, nargs=2, metavar=("W", "H"),
                        help="initial MGL window (sites rows)")
    parser.add_argument("--capacity", type=int, default=1,
                        help="scheduler L_p capacity (default 1; implied "
                             "4*workers when --workers is set)")
    parser.add_argument("--workers", type=int, default=0,
                        help="evaluation worker processes for the MGL "
                             "scheduler (default 0 = in-process); "
                             "placements are bit-identical for any value. "
                             "With --shards this sizes the shard process "
                             "pool instead")
    parser.add_argument("--shards", type=int, default=1,
                        help="fence-aware row-band shards for MGL "
                             "(default 1 = whole die); shard interiors "
                             "legalize in --workers processes and halo "
                             "cells reconcile deterministically — for a "
                             "fixed shard count placements are "
                             "bit-identical for any worker count")
    parser.add_argument("--halo-rows", type=int, default=2,
                        help="halo rows on each side of a shard band "
                             "(default 2); cells this close to a band "
                             "boundary are re-legalized full-die")
    parser.add_argument("--height-weighted", action="store_true",
                        help="use Eq. 2 height weights during MGL")
    parser.add_argument("--eval-backend", choices=("scalar", "vector"),
                        default="vector",
                        help="insertion evaluation backend (default vector; "
                             "scalar is the reference oracle — placements "
                             "are bit-identical either way)")


def _params_from(args: argparse.Namespace) -> LegalizerParams:
    capacity = args.capacity
    shards = getattr(args, "shards", 1)
    if args.workers > 0 and capacity == 1 and shards <= 1:
        # A process pool needs multi-window batches to bite; give it a
        # sensible L_p capacity unless the user pinned one explicitly.
        # (Sharded runs parallelize whole shards instead — see
        # repro.core.shard — so no capacity is implied there.)
        capacity = max(8, 4 * args.workers)
    params = LegalizerParams(
        routability=not args.no_routability,
        use_matching=not args.no_matching,
        use_flow_opt=not args.no_flow_opt,
        scheduler_capacity=capacity,
        scheduler_workers=args.workers,
        shards=shards,
        shard_halo_rows=getattr(args, "halo_rows", 2),
        height_weighted=args.height_weighted,
        eval_backend=args.eval_backend,
    )
    if args.window:
        params.window_width, params.window_height = args.window
    return params


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.benchgen import SyntheticSpec, generate_design

    cells: Dict[int, int] = {}
    for item in args.cells:
        height, _, count = item.partition(":")
        cells[int(height)] = int(count)
    design = generate_design(
        SyntheticSpec(
            name=args.name,
            cells_by_height=cells,
            density=args.density,
            seed=args.seed,
            num_fences=args.fences,
            with_rails=args.rails,
            num_io_pins=args.io_pins,
            with_edge_rules=args.edge_rules,
        )
    )
    save_design(design, args.output)
    log.info("wrote %s to %s", design, args.output)
    return 0


def _make_progress(
    target: Optional[str],
) -> "Tuple[Optional[ProgressEmitter], Optional[Path]]":
    """Build the ``--progress`` emitter: tty lines, or a JSONL sink path."""
    if target is None:
        return None, None
    from repro.obs.progress import ProgressEmitter, render_event

    if target:
        sink_path = Path(target)
        return ProgressEmitter(sink=open(sink_path, "w")), sink_path

    def to_stderr(event: Dict[str, object]) -> None:
        print(render_event(event), file=sys.stderr)

    return ProgressEmitter(callback=to_stderr), None


def cmd_legalize(args: argparse.Namespace) -> int:
    from repro.obs.manifest import (
        build_manifest,
        manifest_path_for,
        write_manifest,
    )

    design = load_design(args.design)
    params = _params_from(args)
    run_dir: Optional[Path] = Path(args.run_dir) if args.run_dir else None
    if run_dir is not None:
        run_dir.mkdir(parents=True, exist_ok=True)
    recorder: Optional["PerfRecorder"] = None
    if args.profile is not None or run_dir is not None or args.store:
        from repro.perf import PerfRecorder

        recorder = PerfRecorder()
    tracer: Optional["SpanTracer"] = None
    # --store records a span profile per run, so it traces too; pair it
    # with --sample-every to bound the overhead on big designs.
    if args.trace is not None or run_dir is not None or args.store:
        from repro.obs.tracer import SpanTracer

        tracer = SpanTracer(sample_every=args.sample_every)
    progress, sink_path = _make_progress(args.progress)
    start = monotonic()
    try:
        result = legalize(
            design, params, recorder=recorder, tracer=tracer,
            progress=progress,
        )
    finally:
        if progress is not None and progress.sink is not None:
            progress.sink.close()
    elapsed = monotonic() - start
    if sink_path is not None:
        log.info("progress events written to %s", sink_path)
    save_placement(result.placement, args.output)
    final = result.after_flow or result.after_matching or result.after_mgl
    print(f"legalized {design.num_cells} cells in {elapsed:.1f}s")
    print(f"avg disp {final.avg_disp:.3f}  max disp {final.max_disp:.2f} "
          f"(row heights)")
    log.info("placement written to %s", args.output)

    manifest = build_manifest(
        design,
        params,
        result.placement,
        trace_structure_hash=(
            tracer.structure_hash() if tracer is not None else None
        ),
        trace_sample_every=(
            tracer.sample_every if tracer is not None else None
        ),
        shard_topology=result.shard_topology,
    )
    if result.shard_topology is not None:
        stats = result.mgl_stats
        print(f"shards: {result.shard_topology['shards']} bands, "
              f"{stats.get('shard_reconciled', 0)} reconciled "
              f"({stats.get('shard_deferred', 0)} deferred), "
              f"{stats.get('shard_workers_spawned', 0)} workers")
    span_profile = None
    if tracer is not None:
        from repro.obs.profile import fold_spans

        span_profile = fold_spans(tracer.roots)
        if args.trace:
            tracer.write_chrome_trace(args.trace)
            write_manifest(manifest, manifest_path_for(args.trace))
            log.info(
                "trace written to %s (%d spans; load at "
                "https://ui.perfetto.dev)",
                args.trace, tracer.span_count(),
            )
        if run_dir is not None:
            import json

            tracer.write_chrome_trace(str(run_dir / "trace.json"))
            tracer.write_jsonl(str(run_dir / "trace.jsonl"))
            (run_dir / "span_profile.json").write_text(
                json.dumps(
                    span_profile.as_dict(), indent=2, sort_keys=True
                ) + "\n"
            )
            (run_dir / "profile.collapsed").write_text(
                span_profile.collapsed_stacks()
            )
    if recorder is not None:
        stats = result.mgl_stats
        print(f"scheduler: {stats.get('scheduler_batches', 0)} batches, "
              f"{stats.get('scheduler_reevaluations', 0)} re-evaluations, "
              f"{stats.get('scheduler_workers_spawned', 0)} workers")
        print(recorder.summary())
        if args.profile:  # a path was given, not the bare flag
            recorder.write_json(args.profile)
            write_manifest(manifest, manifest_path_for(args.profile))
            log.info("perf profile written to %s", args.profile)
        if run_dir is not None:
            recorder.write_json(str(run_dir / "profile.json"))
            (run_dir / "metrics.prom").write_text(
                recorder.registry.render_prometheus()
            )
    if run_dir is not None:
        write_manifest(manifest, run_dir / "manifest.json")
        log.info("run artifacts written to %s", run_dir)
    if args.store:
        from repro.obs.runstore import RunStore

        run_id = RunStore(args.store).add_run(
            manifest,
            metrics=(
                recorder.registry.as_dict() if recorder is not None else None
            ),
            span_profile=(
                span_profile.as_dict() if span_profile is not None else None
            ),
            collapsed=(
                span_profile.collapsed_stacks()
                if span_profile is not None
                else None
            ),
            seconds=elapsed,
        )
        log.info("run %s appended to store %s", run_id, args.store)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        load_run,
        render_diff,
        render_run,
        span_profile_for,
    )

    if len(args.runs) > 2:
        log.error("report takes one run (render) or two (diff), got %d",
                  len(args.runs))
        return 2
    runs = [load_run(path) for path in args.runs]
    if len(runs) == 1:
        print(render_run(runs[0]))
        if args.profile:
            profile = span_profile_for(runs[0])
            if profile is None:
                log.error("%s: no span profile (trace.jsonl or "
                          "span_profile.json missing)", runs[0].label)
                return 1
            from repro.obs.profile import render_profile

            print(render_profile(profile))
        return 0
    print(render_diff(runs[0], runs[1]))
    if args.profile:
        profiles = [span_profile_for(run) for run in runs]
        missing = [
            run.label
            for run, profile in zip(runs, profiles)
            if profile is None
        ]
        if missing:
            log.error("no span profile for: %s", ", ".join(missing))
            return 1
        from repro.obs.profile import diff_profiles

        print(diff_profiles(profiles[0], profiles[1]))
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.runstore import (
        RunStore,
        render_run_detail,
        render_runs_list,
        render_trends,
    )

    store = RunStore(args.store)
    if args.runs_command == "list":
        print(render_runs_list(store))
        return 0
    if args.runs_command == "show":
        known = {record.get("id") for record in store.records()}
        print(render_run_detail(store, args.id))
        return 0 if args.id in known else 1
    keys = [args.key] if args.key else store.keys()
    if not keys:
        print(f"run store {store.root}: empty")
        return 0
    trends = [
        store.trend(key, last=args.last, max_drift_pct=args.max_drift)
        for key in keys
    ]
    print(render_trends(trends))
    flagged = [trend for trend in trends if trend.flagged]
    if flagged:
        log.error("%d of %d keys show drift", len(flagged), len(trends))
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    placement = load_placement(design, args.placement)
    if args.verbose:
        from repro.checker import placement_report

        print(placement_report(placement))
        return 0 if check_legal(placement).is_legal else 1
    legal = check_legal(placement)
    print(f"legality: {legal.summary()}")
    if not legal.is_legal:
        for message in legal.all_messages()[: args.max_messages]:
            print(f"  {message}")
    routability = count_routability_violations(placement)
    print(f"routability: {routability.summary()}")
    score = contest_score(placement, routability)
    print(f"avg disp {score.avg_displacement:.3f}  "
          f"max disp {score.max_displacement:.2f}  "
          f"HPWL ratio {score.hpwl_ratio:+.4f}  score S {score.score:.4f}")
    return 0 if legal.is_legal else 1


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import (
        legalize_abacus,
        legalize_lcp,
        legalize_mll,
        legalize_tetris,
    )
    from repro.core.flowopt import optimize_fixed_row_order
    from repro.core.mgl import MGLegalizer

    design = load_design(args.design)

    def ours(d: "Design") -> "Placement":
        params = LegalizerParams(
            routability=False, use_matching=False, scheduler_capacity=1
        )
        placement = MGLegalizer(d, params).run()
        optimize_fixed_row_order(placement, params)
        return placement

    algos: List[Tuple[str, Callable[["Design"], "Placement"]]] = [
        ("tetris", legalize_tetris),
        ("mll", legalize_mll),
        ("abacus", legalize_abacus),
        ("lcp", legalize_lcp),
        ("ours", ours),
    ]
    print(f"{'algorithm':10s} {'total_disp':>12s} {'time':>8s}")
    for tag, algorithm in algos:
        start = monotonic()
        placement = algorithm(design)
        elapsed = monotonic() - start
        assert check_legal(placement).is_legal, tag
        print(f"{tag:10s} {placement.total_displacement_sites():12.0f} "
              f"{elapsed:7.1f}s")
    return 0


def cmd_import_bookshelf(args: argparse.Namespace) -> int:
    from repro.io import load_bookshelf

    design, placement = load_bookshelf(args.aux)
    save_design(design, args.output)
    log.info("imported %s from %s", design, args.aux)
    if args.placement:
        save_placement(placement, args.placement)
        log.info("placement written to %s", args.placement)
    return 0


def cmd_export_bookshelf(args: argparse.Namespace) -> int:
    from repro.io import save_bookshelf

    design = load_design(args.design)
    placement = (
        load_placement(design, args.placement) if args.placement else None
    )
    aux = save_bookshelf(design, args.output, placement=placement)
    log.info("wrote Bookshelf bundle: %s", aux)
    return 0


def cmd_svg(args: argparse.Namespace) -> int:
    from repro.viz import render_displacement_svg, render_placement_svg

    design = load_design(args.design)
    placement = load_placement(design, args.placement)
    if args.displacement:
        svg = render_displacement_svg(placement)
    else:
        svg = render_placement_svg(placement, show_rails=not args.no_rails)
    with open(args.output, "w") as handle:
        handle.write(svg)
    log.info("wrote %s", args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mixed-cell-height legalization (DAC 2018 reproduction)",
    )
    parser.add_argument("--log-level", choices=LEVELS, default="info",
                        help="diagnostic verbosity on stderr (default info); "
                             "results always print to stdout")
    parser.add_argument("--log-format", choices=FORMATS, default="human",
                        help="stderr diagnostic format (default human); "
                             "json emits one object per line for log "
                             "collectors")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="build a synthetic design")
    gen.add_argument("name")
    gen.add_argument("-o", "--output", required=True)
    gen.add_argument("--cells", nargs="+", default=["1:500", "2:40"],
                     metavar="H:N", help="cells per height, e.g. 1:500 2:40")
    gen.add_argument("--density", type=float, default=0.6)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--fences", type=int, default=0)
    gen.add_argument("--rails", action="store_true")
    gen.add_argument("--io-pins", type=int, default=0)
    gen.add_argument("--edge-rules", action="store_true")
    gen.set_defaults(func=cmd_generate)

    leg = sub.add_parser("legalize", help="legalize a design file")
    leg.add_argument("design")
    leg.add_argument("-o", "--output", required=True)
    leg.add_argument("--profile", nargs="?", const="", default=None,
                     metavar="JSON",
                     help="collect per-stage timings and counters; print a "
                          "summary, and write JSON (plus a run manifest) "
                          "when a path is given")
    leg.add_argument("--trace", metavar="JSON",
                     help="record the span tree and write Chrome trace-event "
                          "JSON (Perfetto-loadable) plus a run manifest")
    leg.add_argument("--run-dir", metavar="DIR",
                     help="write the full artifact set — profile.json, "
                          "manifest.json, trace.json (+ trace.jsonl, "
                          "span_profile.json, profile.collapsed) — "
                          "into DIR, for `repro report`")
    leg.add_argument("--sample-every", type=int, default=1, metavar="K",
                     help="trace sampling stride: keep per-cell "
                          "evaluate/window spans for every K-th cell in "
                          "the fixed MGL order (default 1 = all); "
                          "structural spans always record, and the "
                          "placement is bit-identical for any K")
    leg.add_argument("--progress", nargs="?", const="", default=None,
                     metavar="JSONL",
                     help="stream progress events (phases, cells placed, "
                          "ETA, shard heartbeats) to stderr, or as JSON "
                          "lines to JSONL when a path is given; "
                          "observational only")
    leg.add_argument("--store", metavar="DIR",
                     help="append this run (manifest, metrics, span "
                          "profile) to the persistent run store in DIR, "
                          "for `repro runs`")
    _add_param_flags(leg)
    leg.set_defaults(func=cmd_legalize)

    chk = sub.add_parser("check", help="check a placement")
    chk.add_argument("design")
    chk.add_argument("placement")
    chk.add_argument("--max-messages", type=int, default=10)
    chk.add_argument("-v", "--verbose", action="store_true",
                     help="full report: per-height stats, histogram, fences")
    chk.set_defaults(func=cmd_check)

    cmp_parser = sub.add_parser("compare", help="run all legalizers")
    cmp_parser.add_argument("design")
    cmp_parser.set_defaults(func=cmd_compare)

    rep = sub.add_parser(
        "report",
        help="render one run's profile/manifest, or diff two runs",
    )
    rep.add_argument("runs", nargs="+", metavar="RUN",
                     help="a --run-dir directory or a profile JSON path; "
                          "give two to diff them")
    rep.add_argument("--profile", action="store_true",
                     help="also render the span profile (per-kind "
                          "self/total time, worker/shard attribution) "
                          "folded from the run's trace; with two runs, "
                          "the profile delta")
    rep.set_defaults(func=cmd_report)

    runs = sub.add_parser(
        "runs", help="browse the persistent run store (list, show, trend)"
    )
    runs.add_argument("--store", metavar="DIR", default=DEFAULT_STORE,
                      help=f"run store directory (default {DEFAULT_STORE})")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("list", help="one line per stored run")
    show = runs_sub.add_parser("show", help="one run's record and artifacts")
    show.add_argument("id", help="run id from `repro runs list`")
    trend = runs_sub.add_parser(
        "trend",
        help="latest vs median of history per key; exits 1 on drift",
    )
    trend.add_argument("--key", metavar="KEY",
                       help="trend one key only (default: every key)")
    trend.add_argument("--last", type=int, default=10,
                       help="history window per key (default 10)")
    trend.add_argument("--max-drift", type=float, default=25.0,
                       metavar="PCT",
                       help="flag wall-time/counter drift beyond PCT%% "
                            "of the history median (default 25)")
    runs.set_defaults(func=cmd_runs)

    imp = sub.add_parser("import-bookshelf",
                         help="convert a Bookshelf .aux bundle to a design file")
    imp.add_argument("aux")
    imp.add_argument("-o", "--output", required=True)
    imp.add_argument("--placement", help="also write the .pl as a placement")
    imp.set_defaults(func=cmd_import_bookshelf)

    exp = sub.add_parser("export-bookshelf",
                         help="write a design (and placement) as Bookshelf")
    exp.add_argument("design")
    exp.add_argument("-o", "--output", required=True,
                     help="output directory for the bundle")
    exp.add_argument("--placement", help="placement file to export")
    exp.set_defaults(func=cmd_export_bookshelf)

    svg = sub.add_parser("svg", help="render a placement to SVG")
    svg.add_argument("design")
    svg.add_argument("placement")
    svg.add_argument("-o", "--output", required=True)
    svg.add_argument("--displacement", action="store_true",
                     help="draw GP displacement vectors")
    svg.add_argument("--no-rails", action="store_true")
    svg.set_defaults(func=cmd_svg)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(args.log_level, fmt=args.log_format)
    try:
        return cast(int, args.func(args))
    except BrokenPipeError:
        # Downstream closed the pipe (`repro report … | head`); redirect
        # stdout to devnull so the interpreter's final flush stays quiet.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    sys.exit(main())
