"""Perturbed-legal GP inputs for controlled experiments.

Several tests and ablations want a GP input whose *feasible* legalization
is known to exist and whose difficulty is a single knob: take a legal
placement, overwrite the design's GP positions with a jittered copy, and
hand the design back to the legalizers.  The jitter magnitude controls
how much work legalization has to do; the legal placement is kept as the
known-feasible witness.
"""

from __future__ import annotations

import random

from repro.model.design import Design
from repro.model.placement import Placement


def perturb_placement(
    placement: Placement,
    sigma_rows: float = 2.0,
    seed: int = 0,
    clamp: bool = True,
) -> Design:
    """Overwrite the design's GP with a Gaussian jitter of ``placement``.

    Args:
        placement: a (typically legal) placement of the design.
        sigma_rows: jitter standard deviation, in row heights, applied to
            both axes (x converted through the site/row ratio).
        seed: RNG seed (deterministic).
        clamp: keep jittered positions inside the chip.

    Returns:
        The same design object, with ``gp_x``/``gp_y`` updated for all
        movable cells (fixed cells keep their positions).
    """
    design = placement.design
    rng = random.Random(seed * 7_919 + 13)
    sigma_x = sigma_rows * design.row_height / design.site_width

    for cell in design.movable_cells():
        cell_type = design.cell_type_of(cell)
        gx = placement.x[cell] + rng.gauss(0.0, sigma_x)
        gy = placement.y[cell] + rng.gauss(0.0, sigma_rows)
        if clamp:
            gx = min(max(0.0, gx), design.num_sites - cell_type.width)
            gy = min(max(0.0, gy), design.num_rows - cell_type.height)
        design.cells[cell].gp_x = gx
        design.cells[cell].gp_y = gy
    design._gp_x_array = None
    design._gp_y_array = None
    return design
