"""A small quadratic-wirelength global placer.

Used by the examples to produce GP inputs from a netlist, exercising the
same pipeline position the contest GP solutions occupy.  The model is the
classic quadratic star net model: every cell is iteratively pulled to the
centroid of its nets (Gauss-Seidel on the quadratic system), anchored
weakly to its initial position so disconnected cells stay put, and the
result is spread to the chip by a percentile remap per axis (a cheap
stand-in for density-driven spreading).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import numpy.typing as npt

from repro.model.design import Design

FloatArray = npt.NDArray[np.float64]


@dataclass
class QuadraticPlacer:
    """Configurable mini analytic placer.

    Attributes:
        iterations: Gauss-Seidel sweeps over all cells.
        anchor_weight: pull toward the initial (random) location; keeps
            the system non-singular and preserves some diversity.
        spread: remap positions so cells cover the chip area (reduces the
            quadratic model's characteristic clumping).
        seed: RNG seed for the initial scatter.
    """

    iterations: int = 30
    anchor_weight: float = 0.08
    spread: bool = True
    seed: int = 7

    def place(self, design: Design) -> Tuple[FloatArray, FloatArray]:
        """Compute GP coordinates; returns (x_sites, y_rows) arrays."""
        n = design.num_cells
        rng = random.Random(self.seed)
        xs = np.array(
            [rng.uniform(0, design.num_sites) for _ in range(n)], dtype=float
        )
        ys = np.array(
            [rng.uniform(0, design.num_rows) for _ in range(n)], dtype=float
        )
        anchor_x = xs.copy()
        anchor_y = ys.copy()

        nets = [
            [pin.cell for pin in net.pins]
            for net in design.netlist.nets
            if len(net.pins) >= 2
        ]
        cell_nets: List[List[int]] = [[] for _ in range(n)]
        for net_index, members in enumerate(nets):
            for cell in members:
                cell_nets[cell].append(net_index)

        for _sweep in range(self.iterations):
            # Both arrays are empty when there are no nets; they are only
            # indexed for cells with at least one net, so that is safe.
            centroids_x = np.array([xs[m].mean() for m in nets], dtype=float)
            centroids_y = np.array([ys[m].mean() for m in nets], dtype=float)
            for cell in range(n):
                if design.cells[cell].fixed or not cell_nets[cell]:
                    continue
                net_ids = cell_nets[cell]
                pull_x = sum(centroids_x[i] for i in net_ids)
                pull_y = sum(centroids_y[i] for i in net_ids)
                weight = len(net_ids) + self.anchor_weight
                xs[cell] = (pull_x + self.anchor_weight * anchor_x[cell]) / weight
                ys[cell] = (pull_y + self.anchor_weight * anchor_y[cell]) / weight

        if self.spread:
            xs = _percentile_spread(xs, design.num_sites)
            ys = _percentile_spread(ys, design.num_rows)

        for cell in range(n):
            cell_type = design.cell_type_of(cell)
            xs[cell] = min(max(0.0, xs[cell]), design.num_sites - cell_type.width)
            ys[cell] = min(max(0.0, ys[cell]), design.num_rows - cell_type.height)
        return xs, ys

    def apply(self, design: Design) -> None:
        """Place and write the result into the design's GP fields."""
        xs, ys = self.place(design)
        for cell in range(design.num_cells):
            if design.cells[cell].fixed:
                continue
            design.cells[cell].gp_x = float(xs[cell])
            design.cells[cell].gp_y = float(ys[cell])
        design._gp_x_array = None
        design._gp_y_array = None


def _percentile_spread(values: FloatArray, extent: float) -> FloatArray:
    """Map values monotonically so their ranks cover ``[0, extent)``.

    Equal-rank spreading removes the quadratic model's central clump
    while preserving relative order — the property legalization cares
    about.
    """
    order = np.argsort(values, kind="stable")
    spread = np.empty_like(values)
    n = len(values)
    if n == 0:
        return values
    positions = (np.arange(n) + 0.5) / n * extent
    spread[order] = positions
    # Blend: half spread, half original keeps some density variation.
    return 0.5 * spread + 0.5 * values * (extent / max(values.max(), 1e-9))


def quadratic_global_placement(design: Design, seed: int = 7) -> None:
    """One-call GP: overwrite the design's GP fields in place."""
    QuadraticPlacer(seed=seed).apply(design)
