"""Global-placement substrate.

Legalization consumes a GP solution; the paper takes those from the
contest inputs.  Here, besides the clustered generator in
:mod:`repro.benchgen`, two real GP sources are provided:

* :mod:`repro.gp.perturb` — jitter a legal placement into a realistic
  overlapping GP input with controllable difficulty (used by tests that
  need a known-feasible optimum nearby);
* :mod:`repro.gp.quadratic` — a small quadratic-wirelength analytic
  placer (net star model, sparse least squares, spreading iterations)
  used by the examples to drive the flow end to end from a netlist.
"""

from repro.gp.perturb import perturb_placement
from repro.gp.quadratic import QuadraticPlacer, quadratic_global_placement

__all__ = [
    "QuadraticPlacer",
    "perturb_placement",
    "quadratic_global_placement",
]
