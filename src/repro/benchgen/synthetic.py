"""Deterministic synthetic design generation.

The generator builds complete, feasible mixed-cell-height instances from
a compact :class:`SyntheticSpec`: a cell library with the requested
height mix, a chip sized to hit the target density, optional fence
regions with capacity-bounded cell assignment, a contest-style P/G rail
grid, IO pins, signal-pin geometry, and a locality-aware random netlist.
GP positions come from a clustered Gaussian model (mimicking an analytic
global placer's cell clumping) so legalization has realistic work to do.

Everything is driven by one :class:`random.Random` seeded from the spec,
so the same spec always yields the identical design.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.netlist import Net, PinRef
from repro.model.rails import IOPin, standard_pg_grid
from repro.model.technology import CellType, EdgeSpacingTable, PinShape, Technology


@dataclass
class SyntheticSpec:
    """Recipe for one synthetic benchmark design.

    Attributes:
        name: design name.
        cells_by_height: number of cells per cell height (rows).
        density: target cell-area / placeable-area ratio.
        seed: RNG seed; same spec -> same design.
        aspect: chip width/height ratio in length units.
        num_fences: explicit fence regions to carve out.
        fence_utilization: max cell-area fill of each fence.
        with_rails: add the M2/M3 P/G grid and per-type signal pins.
        num_io_pins: random IO-pin rectangles on M2/M3.
        with_edge_rules: install edge-spacing rules on some cell types.
        nets_per_cell: netlist size as a fraction of the cell count.
        cluster_spread: std-dev of GP clusters, in rows.
        double_height_halved: Table 2 style — multi-row cells are narrow
            (half the footprint width of their single-row counterparts).
        num_blockages: placement blockage rectangles to carve out of the
            rows (splitting segments, as routing blockages do).
        num_macros: fixed macro cells (pre-placed, immovable obstacles).
        multi_rect_fences: build each fence from two abutting rectangles
            (an L shape) instead of one, exercising multi-rect fences.
    """

    name: str
    cells_by_height: Dict[int, int]
    density: float = 0.6
    seed: int = 1
    aspect: float = 2.0
    num_fences: int = 0
    fence_utilization: float = 0.6
    with_rails: bool = False
    num_io_pins: int = 0
    with_edge_rules: bool = False
    nets_per_cell: float = 1.0
    cluster_spread: float = 6.0
    double_height_halved: bool = False
    num_blockages: int = 0
    num_macros: int = 0
    multi_rect_fences: bool = False

    def total_cells(self) -> int:
        return sum(self.cells_by_height.values())


# ----------------------------------------------------------------------
# Cell library
# ----------------------------------------------------------------------

_SINGLE_ROW_WIDTHS = (2, 3, 4, 6)


def _pin_shapes(
    rng: random.Random, width_sites: int, height_rows: int,
    site_width: float, row_height: float,
) -> Tuple[PinShape, ...]:
    """A few small signal pins on M1/M2 inside the cell frame.

    Like real libraries, pins normally keep clear of the row-boundary
    bands where horizontal P/G stripes run (a cell is *designed* to be
    placeable in any row); a small fraction of pins violate that — those
    are the cells whose rows the routability guard must steer (§3.4).
    """
    pins: List[PinShape] = []
    count = rng.randint(2, 3)
    for index in range(count):
        layer = 1 if index < count - 1 else 2
        px = rng.uniform(0.1, max(0.11, width_sites * site_width - 0.3))
        if rng.random() < 0.9 or height_rows == 1:
            # Confined to the interior of one row band.
            slot = rng.randrange(height_rows)
            py = slot * row_height + rng.uniform(
                0.2, max(0.21, row_height - 0.55)
            )
        else:
            # Boundary-crossing pin (tall multi-row cells): conflicts
            # with horizontal stripes on some rows.
            boundary = rng.randrange(1, height_rows) * row_height
            py = boundary - 0.15
        pins.append(
            PinShape(
                name=f"p{index}",
                layer=layer,
                rect=Rect(px, py, px + 0.2, py + 0.3),
            )
        )
    return tuple(pins)


def build_library(spec: SyntheticSpec, rng: random.Random,
                  site_width: float, row_height: float) -> Technology:
    """Cell masters covering every height in the spec."""
    cell_types: List[CellType] = []
    for height in sorted(spec.cells_by_height):
        widths: Tuple[int, ...]
        if height == 1:
            widths = _SINGLE_ROW_WIDTHS
        elif spec.double_height_halved:
            widths = tuple(max(1, w // 2) for w in _SINGLE_ROW_WIDTHS[:2])
        else:
            widths = (3, 4)
        for variant, width in enumerate(widths):
            edge = 0
            if spec.with_edge_rules and variant % 2 == 1:
                edge = 1 + (variant // 2)
            pins = (
                _pin_shapes(rng, width, height, site_width, row_height)
                if spec.with_rails
                else ()
            )
            cell_types.append(
                CellType(
                    name=f"T{height}_{variant}",
                    width=width,
                    height=height,
                    pins=pins,
                    left_edge=edge,
                    right_edge=edge,
                )
            )
    table = EdgeSpacingTable()
    if spec.with_edge_rules:
        table.set_spacing(1, 1, 1)
        table.set_spacing(2, 2, 2)
        table.set_spacing(1, 2, 1)
    return Technology(cell_types=cell_types, edge_spacing=table)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def generate_design(spec: SyntheticSpec) -> Design:
    """Build the full design for ``spec`` (deterministic)."""
    rng = random.Random(spec.seed * 1_000_003 + 17)
    site_width, row_height = 0.2, 2.0
    technology = build_library(spec, rng, site_width, row_height)

    types_by_height: Dict[int, List[CellType]] = {}
    for cell_type in technology.cell_types:
        types_by_height.setdefault(cell_type.height, []).append(cell_type)

    # Pick the concrete master per cell, then size the chip for density.
    chosen: List[CellType] = []
    for height, count in sorted(spec.cells_by_height.items()):
        for _ in range(count):
            chosen.append(rng.choice(types_by_height[height]))
    total_area = sum(ct.width * ct.height for ct in chosen)

    # rows * sites = total_area / density; sites/rows aspect in length
    # units: sites * site_width = aspect * rows * row_height.  Blockage
    # and macro area is added on top so the *usable* density matches.
    obstruction_budget = 1.0
    if spec.num_blockages or spec.num_macros:
        obstruction_budget = 1.15
    target_sites_area = obstruction_budget * total_area / spec.density
    rows = max(
        2 * max(spec.cells_by_height) + 2,
        int(math.sqrt(target_sites_area * site_width / (spec.aspect * row_height))),
    )
    rows += rows % 2  # Even row count keeps parity regions balanced.
    sites = int(math.ceil(target_sites_area / rows))
    sites = max(sites, 4 * max(ct.width for ct in chosen))

    design = Design(
        technology,
        num_rows=rows,
        num_sites=sites,
        site_width=site_width,
        row_height=row_height,
        name=spec.name,
    )

    fences = _make_fences(design, spec, rng)
    _add_blockages(design, spec, rng)
    _add_macros(design, spec, rng)
    _add_cells(design, spec, rng, chosen, fences)

    if spec.with_rails:
        design.rails = standard_pg_grid(
            design.chip_rect_length_units,
            row_height,
            m2_pitch_rows=6,
            m3_pitch=max(4.0, sites * site_width / 14.0),
        )
        for index in range(spec.num_io_pins):
            layer = 2 if index % 2 == 0 else 3
            x = rng.uniform(0, sites * site_width - 1.0)
            y = rng.uniform(0, rows * row_height - 1.0)
            design.rails.add_io_pin(
                IOPin(f"io{index}", layer, Rect(x, y, x + 0.8, y + 0.8))
            )

    _add_netlist(design, spec, rng)
    design.validate()
    return design


def _make_fences(
    design: Design, spec: SyntheticSpec, rng: random.Random
) -> List[FenceRegion]:
    """Carve non-overlapping fence regions out of the chip."""
    fences: List[FenceRegion] = []
    attempts = 0
    while len(fences) < spec.num_fences and attempts < 200:
        attempts += 1
        fence_rows = rng.randint(
            max(4, design.num_rows // 8), max(6, design.num_rows // 3)
        )
        fence_sites = rng.randint(
            max(10, design.num_sites // 8), max(12, design.num_sites // 3)
        )
        y = 2 * rng.randint(0, max(0, (design.num_rows - fence_rows) // 2))
        x = rng.randint(0, max(0, design.num_sites - fence_sites))
        rect = Rect(x, y, x + fence_sites, y + fence_rows)
        rects = [rect]
        if spec.multi_rect_fences and fence_rows >= 4 and fence_sites >= 16:
            # L shape: the upper part keeps only the left portion.  The
            # split row is even so parity regions stay usable.
            mid_y = y + 2 * max(1, fence_rows // 4)
            keep = fence_sites // 2
            rects = [
                Rect(x, y, x + fence_sites, mid_y),
                Rect(x, mid_y, x + keep, y + fence_rows),
            ]
        candidate = FenceRegion(
            len(fences) + 1, f"fence{len(fences) + 1}", rects
        )
        inflated = rect.inflated(2)
        if any(
            existing.overlaps_rect(inflated) for existing in fences
        ):
            continue
        fences.append(candidate)
        design.add_fence(candidate)
    return fences


def _free_spot(
    design: Design, rng: random.Random, width: int, height: int,
    margin: int = 1,
) -> Optional[Rect]:
    """A random rect clear of fences, blockages, and fixed cells."""
    for _attempt in range(60):
        x = rng.randint(0, max(0, design.num_sites - width))
        y = 2 * rng.randint(0, max(0, (design.num_rows - height) // 2))
        rect = Rect(x, y, x + width, y + height)
        inflated = rect.inflated(margin)
        if any(f.overlaps_rect(inflated) for f in design.fences):
            continue
        if any(b.overlaps(inflated) for b in design.blockages):
            continue
        collision = False
        for cell_index, cell in enumerate(design.cells):
            if not cell.fixed:
                continue
            placed = Rect(
                cell.gp_x, cell.gp_y,
                cell.gp_x + cell.cell_type.width,
                cell.gp_y + cell.cell_type.height,
            )
            if placed.overlaps(inflated):
                collision = True
                break
        if not collision:
            return rect
    return None


def _add_blockages(design: Design, spec: SyntheticSpec, rng: random.Random) -> None:
    for _ in range(spec.num_blockages):
        width = rng.randint(
            max(3, design.num_sites // 20), max(4, design.num_sites // 10)
        )
        height = rng.randint(1, max(1, design.num_rows // 6))
        spot = _free_spot(design, rng, width, height)
        if spot is not None:
            design.add_blockage(spot)


def _add_macros(design: Design, spec: SyntheticSpec, rng: random.Random) -> None:
    """Pre-placed fixed macro cells acting as immovable obstacles."""
    for index in range(spec.num_macros):
        width = rng.randint(
            max(6, design.num_sites // 16), max(8, design.num_sites // 8)
        )
        height = rng.randint(2, min(4, design.num_rows // 4))
        spot = _free_spot(design, rng, width, height)
        if spot is None:
            continue
        macro_type = design.technology.add_cell_type(
            CellType(f"MACRO{index}", width, height)
        )
        design.add_cell(
            f"macro{index}", macro_type,
            gp_x=spot.xlo, gp_y=spot.ylo, fixed=True,
        )


def _add_cells(
    design: Design,
    spec: SyntheticSpec,
    rng: random.Random,
    chosen: Sequence[CellType],
    fences: List[FenceRegion],
) -> None:
    """Assign fences (capacity-bounded) and clustered GP positions."""
    budgets = {
        fence.fence_id: spec.fence_utilization * sum(r.area for r in fence.rects)
        for fence in fences
    }
    fill: Dict[int, float] = {fence.fence_id: 0.0 for fence in fences}

    # GP cluster centers spread over the chip.
    num_clusters = max(3, design.num_cells // 50 if design.num_cells else 3,
                       int(math.sqrt(len(chosen))) or 3)
    centers = [
        (rng.uniform(0, design.num_sites), rng.uniform(0, design.num_rows))
        for _ in range(num_clusters)
    ]

    order = list(chosen)
    rng.shuffle(order)
    for index, cell_type in enumerate(order):
        fence_id = 0
        if fences and rng.random() < 0.25:
            fence = rng.choice(fences)
            area = cell_type.width * cell_type.height
            if fill[fence.fence_id] + area <= budgets[fence.fence_id]:
                fence_id = fence.fence_id
                fill[fence.fence_id] += area

        if fence_id:
            rect = rng.choice(design.fence_region(fence_id).rects)
            gx = rng.uniform(rect.xlo, max(rect.xlo, rect.xhi - cell_type.width))
            gy = rng.uniform(rect.ylo, max(rect.ylo, rect.yhi - cell_type.height))
        else:
            cx, cy = rng.choice(centers)
            spread_x = spec.cluster_spread * design.row_height / design.site_width
            gx = min(
                max(0.0, rng.gauss(cx, spread_x)),
                design.num_sites - cell_type.width,
            )
            gy = min(
                max(0.0, rng.gauss(cy, spec.cluster_spread)),
                design.num_rows - cell_type.height,
            )
        design.add_cell(f"c{index}", cell_type, gx, gy, fence_id=fence_id)


def _add_netlist(design: Design, spec: SyntheticSpec, rng: random.Random) -> None:
    """Locality-aware random nets (2-5 pins, mostly near neighbors)."""
    num_nets = int(spec.nets_per_cell * design.num_cells)
    if num_nets == 0 or design.num_cells < 2:
        return
    # Sort cells on a space-filling-ish key so "nearby indices" are
    # spatially close; nets pick contiguous runs with a few far pins.
    by_position = sorted(
        range(design.num_cells),
        key=lambda c: (
            int(design.gp_y[c] // 8),
            design.gp_x[c] if (int(design.gp_y[c] // 8) % 2 == 0)
            else -design.gp_x[c],
        ),
    )
    for net_index in range(num_nets):
        degree = rng.choice((2, 2, 2, 3, 3, 4, 5))
        anchor = rng.randrange(design.num_cells)
        members = {by_position[anchor]}
        while len(members) < degree:
            if rng.random() < 0.85:
                offset = rng.randint(-6, 6)
                members.add(by_position[(anchor + offset) % design.num_cells])
            else:
                members.add(rng.randrange(design.num_cells))
        design.netlist.add_net(
            Net(f"n{net_index}", [PinRef(cell) for cell in sorted(members)])
        )
