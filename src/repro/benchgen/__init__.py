"""Synthetic benchmark substrate.

The paper evaluates on the ICCAD-2017 contest benchmarks (Table 1) and on
ISPD-2015-derived mixed-height benchmarks (Table 2).  Neither suite is
redistributable here, so :mod:`repro.benchgen.synthetic` generates
deterministic designs matching each benchmark's published statistics
(cell counts per height, density, fences, P/G grids, IO pins), and
:mod:`repro.benchgen.suites` instantiates scaled-down stand-ins for every
row of both tables.  See DESIGN.md ("Substitutions") for why this
preserves the comparisons.
"""

from repro.benchgen.synthetic import SyntheticSpec, generate_design
from repro.benchgen.suites import (
    BenchmarkCase,
    iccad2017_suite,
    ispd2015_suite,
)

__all__ = [
    "BenchmarkCase",
    "SyntheticSpec",
    "generate_design",
    "iccad2017_suite",
    "ispd2015_suite",
]
