"""Scaled stand-ins for the paper's two benchmark suites.

Every row of Table 1 (ICCAD-2017 contest `*_md*` benchmarks) and Table 2
(ISPD-2015-derived mixed-height benchmarks) gets a synthetic design whose
*published statistics* — cell count per height, design density, presence
of fences/rails — are preserved while the absolute size is scaled down to
what a pure-Python reproduction can sweep (see DESIGN.md,
"Substitutions").  Cell counts per height are taken from the paper's
tables; garbled table cells in the source scan were reconstructed to the
nearest plausible value, which only affects the mix ratio, not the
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchgen.synthetic import SyntheticSpec, generate_design
from repro.model.design import Design

#: Table 1 rows: name -> (cells per height 1..4, density).
_ICCAD2017_ROWS: Dict[str, Tuple[Tuple[int, int, int, int], float]] = {
    "des_perf_1": ((112644, 0, 0, 0), 0.906),
    "des_perf_a_md1": ((103589, 4699, 0, 0), 0.551),
    "des_perf_a_md2": ((105030, 1086, 1086, 1086), 0.559),
    "des_perf_b_md1": ((106782, 5862, 0, 0), 0.550),
    "des_perf_b_md2": ((101908, 6781, 2260, 1695), 0.647),
    "edit_dist_1_md1": ((118005, 7994, 2664, 1998), 0.674),
    "edit_dist_a_md2": ((115066, 7799, 1949, 0), 0.594),
    "edit_dist_a_md3": ((119616, 2599, 2599, 2599), 0.572),
    "fft_2_md2": ((28930, 2117, 705, 529), 0.827),
    "fft_a_md2": ((27431, 2018, 672, 504), 0.323),
    "fft_a_md3": ((28609, 672, 672, 672), 0.312),
    "pci_bridge32_a_md1": ((26680, 1792, 597, 448), 0.495),
    "pci_bridge32_a_md2": ((25239, 2090, 1194, 994), 0.577),
    "pci_bridge32_b_md1": ((26134, 585, 585, 439), 0.266),
    "pci_bridge32_b_md2": ((28038, 292, 292, 292), 0.183),
    "pci_bridge32_b_md3": ((27452, 292, 585, 585), 0.222),
}

#: Table 2 rows: name -> (total cells, density).
_ISPD2015_ROWS: Dict[str, Tuple[int, float]] = {
    "des_perf_1": (112644, 0.9058),
    "des_perf_a": (108292, 0.4290),
    "des_perf_b": (112644, 0.4971),
    "edit_dist_a": (127419, 0.4554),
    "fft_1": (32281, 0.8355),
    "fft_2": (32281, 0.4997),
    "fft_a": (30631, 0.2509),
    "fft_b": (30631, 0.2819),
    "matrix_mult_1": (155325, 0.8024),
    "matrix_mult_2": (155325, 0.7903),
    "matrix_mult_a": (149655, 0.4195),
    "matrix_mult_b": (146442, 0.3090),
    "matrix_mult_c": (146442, 0.3083),
    "pci_bridge32_a": (29521, 0.3839),
    "pci_bridge32_b": (28920, 0.1430),
    "superblue11_a": (927074, 0.4292),
    "superblue12": (1287037, 0.4472),
    "superblue14": (612583, 0.5578),
    "superblue16_a": (680869, 0.4785),
    "superblue19": (506383, 0.5233),
}

#: Paper Table 2 total displacement (sites) per method, for shape checks.
PAPER_TABLE2_TOTALS: Dict[str, Dict[str, float]] = {
    "norm_avg": {"mll_imp": 1.20, "abacus_mr": 1.17, "lcp": 1.09, "ours": 1.00},
}

#: Paper Table 1 normalized averages (ours = 1.00), for shape checks.
PAPER_TABLE1_NORMS: Dict[str, float] = {
    "avg_disp_first": 1.18,  # champion avg disp / ours
    "max_disp_first": 1.12,
    "score_first": 1.26,
}


@dataclass
class BenchmarkCase:
    """One benchmark: a spec plus the paper's published context."""

    name: str
    spec: SyntheticSpec
    paper: Dict[str, float] = field(default_factory=dict)

    def build(self) -> Design:
        """Generate the design (deterministic per spec)."""
        return generate_design(self.spec)


def _scaled_counts(
    counts: Sequence[int], scale: float, minimum: int = 8
) -> Dict[int, int]:
    result: Dict[int, int] = {}
    for height, count in enumerate(counts, start=1):
        if count > 0:
            result[height] = max(minimum, int(round(count * scale)))
    return result


def iccad2017_suite(
    scale: float = 0.01, names: Optional[List[str]] = None
) -> List[BenchmarkCase]:
    """Table 1 stand-ins: fences, rails, IO pins, edge rules included.

    Args:
        scale: cell-count scale factor versus the contest originals.
        names: restrict to a subset of benchmark names.
    """
    cases: List[BenchmarkCase] = []
    for index, (name, (counts, density)) in enumerate(_ICCAD2017_ROWS.items()):
        if names is not None and name not in names:
            continue
        cells = _scaled_counts(counts, scale)
        total = sum(cells.values())
        spec = SyntheticSpec(
            name=name,
            cells_by_height=cells,
            density=min(density, 0.88),
            seed=1000 + index,
            num_fences=2 if density < 0.75 else 1,
            fence_utilization=0.55,
            with_rails=True,
            num_io_pins=max(4, total // 60),
            with_edge_rules=True,
            nets_per_cell=1.0,
            cluster_spread=4.0,
            num_blockages=2,
            num_macros=2,
        )
        cases.append(BenchmarkCase(name=name, spec=spec, paper={"density": density}))
    return cases


def ispd2015_suite(
    scale: float = 0.01, names: Optional[List[str]] = None
) -> List[BenchmarkCase]:
    """Table 2 stand-ins: 10% double-height half-width cells, no fences.

    The ``superblue*`` giants get an extra 4x reduction so the whole
    suite stays sweepable in Python.
    """
    cases: List[BenchmarkCase] = []
    for index, (name, (total, density)) in enumerate(_ISPD2015_ROWS.items()):
        if names is not None and name not in names:
            continue
        case_scale = scale / 4.0 if name.startswith("superblue") else scale
        n = max(60, int(round(total * case_scale)))
        doubles = max(6, int(round(0.10 * n)))
        spec = SyntheticSpec(
            name=name,
            cells_by_height={1: n - doubles, 2: doubles},
            density=min(density, 0.88),
            seed=2000 + index,
            num_fences=0,
            with_rails=False,
            with_edge_rules=False,
            nets_per_cell=1.0,
            cluster_spread=4.0,
            double_height_halved=True,
        )
        cases.append(
            BenchmarkCase(name=name, spec=spec, paper={"density": density})
        )
    return cases
