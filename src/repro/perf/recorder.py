"""Lightweight wall-time and counter instrumentation.

A :class:`PerfRecorder` collects named stage timings (via the
:meth:`~PerfRecorder.stage` context manager) and integer counters, and
renders them as JSON or a human-readable summary.  It is injected
explicitly — there is no module-global recorder — so un-instrumented
runs pay nothing and instrumented runs stay easy to reason about:
recording happens only in the serial orchestration layers
(:class:`repro.core.legalizer.Legalizer`, the CLI, benchmark drivers),
never inside the pure evaluation paths the scheduler's thread pool may
execute.

Timings are wall-clock and therefore non-deterministic; they live only
in perf reports and never feed back into any placement decision.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Union

PerfValue = Union[int, float, str]


class PerfRecorder:
    """Accumulates per-stage wall times and named integer counters.

    Attributes:
        timings: seconds per stage name; repeated stages accumulate.
        stage_calls: how many times each stage ran.
        counters: named integer counters (merged legalizer stats etc.).
    """

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    # -- recording -----------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-block under ``name`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured stage duration (accumulating)."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds
        self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge_counters(
        self, counters: Mapping[str, int], prefix: str = ""
    ) -> None:
        """Fold a stats mapping (e.g. ``MGLegalizer.stats``) into ours."""
        for name, value in counters.items():
            self.count(prefix + name, value)

    # -- reporting -----------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, PerfValue]]:
        """JSON-ready snapshot: ``{"timings": ..., "counters": ...}``."""
        return {
            "timings": {name: round(t, 6) for name, t in self.timings.items()},
            "stage_calls": dict(self.stage_calls),
            "counters": dict(self.counters),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def summary(self) -> str:
        """Human-readable report, stages by descending time."""
        lines = ["perf summary"]
        total = sum(self.timings.values())
        for name, seconds in sorted(
            self.timings.items(), key=lambda item: -item[1]
        ):
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {name:24s} {seconds:9.3f}s  {share:5.1f}%")
        if self.counters:
            lines.append("counters")
            for name in sorted(self.counters):
                lines.append(f"  {name:32s} {self.counters[name]:>12d}")
        hits = self.counters.get("mgl.gap_cache_hits", 0)
        misses = self.counters.get("mgl.gap_cache_misses", 0)
        if hits + misses > 0:
            lines.append(
                f"  gap cache hit rate: {100.0 * hits / (hits + misses):.1f}%"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PerfRecorder({len(self.timings)} stages, "
            f"{len(self.counters)} counters)"
        )
