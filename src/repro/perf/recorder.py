"""Lightweight wall-time and counter instrumentation.

A :class:`PerfRecorder` is now a thin shim over
:class:`repro.obs.metrics.MetricsRegistry`: stage timings, counters,
gauges, and histograms all live in the registry, and the recorder keeps
the original recording/reporting API (``stage``/``record``/``count``/
``as_dict``/``summary``) on top of it.  Code holding a recorder can
reach the richer registry via :attr:`PerfRecorder.registry`.

The recorder is injected explicitly — there is no module-global
recorder — so un-instrumented runs pay nothing and instrumented runs
stay easy to reason about: recording happens only in the serial
orchestration layers (:class:`repro.core.legalizer.Legalizer`, the CLI,
benchmark drivers), never inside the pure evaluation paths the
scheduler's thread pool may execute.

Timings are wall-clock and therefore non-deterministic; they live only
in perf reports and never feed back into any placement decision.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Union

from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry

PerfValue = Union[int, float, str]


class PerfRecorder:
    """Accumulates per-stage wall times and named integer counters.

    Attributes:
        registry: the backing :class:`MetricsRegistry`.
        timings: seconds per stage name; repeated stages accumulate.
        stage_calls: how many times each stage ran.
        counters: named integer counters (merged legalizer stats etc.).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # The legacy attribute surface stays live views into the registry.

    @property
    def timings(self) -> Dict[str, float]:
        return self.registry.timings

    @property
    def stage_calls(self) -> Dict[str, int]:
        return self.registry.stage_calls

    @property
    def counters(self) -> Dict[str, int]:
        return self.registry.counters

    # -- recording -----------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with``-block under ``name`` (accumulating)."""
        start = monotonic()
        try:
            yield
        finally:
            self.registry.record_time(name, monotonic() - start)

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured stage duration (accumulating)."""
        self.registry.record_time(name, seconds)

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.registry.count(name, amount)

    def merge_counters(
        self, counters: Mapping[str, int], prefix: str = ""
    ) -> None:
        """Fold a stats mapping (e.g. ``MGLegalizer.stats``) into ours."""
        for name, value in counters.items():
            self.registry.count(prefix + name, value)

    # -- reporting -----------------------------------------------------

    def derived(self) -> Dict[str, float]:
        """Rates computed from counters, kept out of the raw sections.

        Currently: ``gap_cache_hit_rate`` (percent), when any gap-cache
        traffic was counted.
        """
        rates: Dict[str, float] = {}
        hits = self.registry.counters.get("mgl.gap_cache_hits", 0)
        misses = self.registry.counters.get("mgl.gap_cache_misses", 0)
        if hits + misses > 0:
            rates["gap_cache_hit_rate"] = 100.0 * hits / (hits + misses)
        return rates

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every registry section plus derived rates."""
        payload = self.registry.as_dict()
        payload["derived"] = {
            name: round(value, 6) for name, value in self.derived().items()
        }
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def summary(self) -> str:
        """Human-readable report, stages by descending time.

        Derived rates render in their own ``derived`` section rather than
        being mixed into the raw counter listing.
        """
        lines = ["perf summary"]
        timings = self.registry.timings
        total = sum(timings.values())
        for name, seconds in sorted(
            timings.items(), key=lambda item: -item[1]
        ):
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {name:24s} {seconds:9.3f}s  {share:5.1f}%")
        if self.registry.counters:
            lines.append("counters")
            for name in sorted(self.registry.counters):
                lines.append(
                    f"  {name:32s} {self.registry.counters[name]:>12d}"
                )
        if self.registry.gauges:
            lines.append("gauges")
            for name in sorted(self.registry.gauges):
                lines.append(
                    f"  {name:32s} {self.registry.gauges[name]:>12.4f}"
                )
        derived = self.derived()
        if derived:
            lines.append("derived")
            if "gap_cache_hit_rate" in derived:
                lines.append(
                    f"  gap cache hit rate: {derived['gap_cache_hit_rate']:.1f}%"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PerfRecorder({len(self.registry.timings)} stages, "
            f"{len(self.registry.counters)} counters)"
        )
