"""Performance instrumentation for the legalization flow.

Pass a :class:`PerfRecorder` to :func:`repro.legalize` (or build one
yourself around any code block) to collect per-stage wall times and the
legalizer's counters, then emit them as JSON::

    from repro.perf import PerfRecorder

    recorder = PerfRecorder()
    result = legalize(design, params, recorder=recorder)
    recorder.write_json("perf.json")

The CLI exposes the same through ``repro legalize --profile [FILE]``,
and ``benchmarks/bench_perf.py`` builds its ``BENCH_mgl.json`` report on
top of it.

Since the ``repro.obs`` subsystem landed, the recorder is a thin shim
over :class:`repro.obs.metrics.MetricsRegistry` — gauges and histograms
recorded there (displacement distributions, expansion depth, batch
occupancy) fold into the same profile JSON.
"""

from repro.obs.metrics import MetricsRegistry
from repro.perf.recorder import PerfRecorder, PerfValue

__all__ = ["MetricsRegistry", "PerfRecorder", "PerfValue"]
