"""Fence regions.

A fence region is a union of rectangles (in site/row units).  Cells
assigned to a fence must be placed entirely inside one of its rectangles;
cells not assigned to any fence belong to the *default fence* — the chip
area minus every explicit fence (paper §3, ISPD-2015 semantics [17]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.model.geometry import Interval, Rect

#: Fence id of the default region (outside all explicit fences).
DEFAULT_FENCE = 0


@dataclass
class FenceRegion:
    """A named fence region made of one or more rectangles.

    Attributes:
        fence_id: positive integer identifier; 0 is reserved for the
            default fence and never stored in a :class:`FenceRegion`.
        name: human-readable name (contest group name).
        rects: member rectangles in site/row units.  They may touch but are
            expected not to overlap.
    """

    fence_id: int
    name: str
    rects: List[Rect] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.fence_id == DEFAULT_FENCE:
            raise ValueError("fence id 0 is reserved for the default fence")
        if self.fence_id < 0:
            raise ValueError("fence ids must be positive")

    def add_rect(self, rect: Rect) -> Rect:
        self.rects.append(rect)
        return rect

    def contains_rect(self, rect: Rect) -> bool:
        """True when ``rect`` fits entirely inside one member rectangle.

        Contest fences are unions of non-overlapping rectangles, so a cell
        is inside the fence iff it is inside a single member rectangle
        (cells never straddle two disjoint rectangles).
        """
        return any(member.contains_rect(rect) for member in self.rects)

    def overlaps_rect(self, rect: Rect) -> bool:
        """True when ``rect`` intersects any member rectangle."""
        return any(member.overlaps(rect) for member in self.rects)

    def row_intervals(self, row: int, height: int = 1) -> List[Interval]:
        """x-intervals of this fence fully covering rows ``[row, row+height)``.

        A multi-row cell needs the fence to cover all of its rows at the
        same x, so the usable intervals are the intersection over the
        spanned rows of the per-row coverage.
        """
        result: List[Interval] = []
        for member in self.rects:
            if member.ylo <= row and row + height <= member.yhi:
                result.append(member.x_interval)
        result.sort(key=lambda iv: iv.lo)
        return result

    @property
    def bounding_box(self) -> Rect:
        """Bounding box of all member rectangles.

        Raises:
            ValueError: for a fence with no rectangles.
        """
        if not self.rects:
            raise ValueError(f"fence {self.name!r} has no rectangles")
        box = self.rects[0]
        for member in self.rects[1:]:
            box = box.union_span(member)
        return box


def fences_overlap(fences: Sequence[FenceRegion]) -> bool:
    """True when any two distinct fences share area (invalid input)."""
    for i, fence_a in enumerate(fences):
        for fence_b in fences[i + 1 :]:
            for rect_a in fence_a.rects:
                if fence_b.overlaps_rect(rect_a):
                    return True
    return False
