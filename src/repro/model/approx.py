"""Epsilon-tolerant float comparisons (repro-lint D003 companions).

Geometry and occupancy stay in exact integer site/row units, but the
displacement-curve machinery (§3.1) works in floats: slopes are sums of
±weights and breakpoints derive from GP coordinates, so values that are
equal on paper can differ by accumulated rounding.  Comparing them with
bare ``==`` makes curve classification and breakpoint coalescing depend
on summation order — these helpers pin a single tolerance instead.

The tolerance is absolute: curve quantities live in site units and
per-cell weights (Eq. 2) are bounded well away from 1e-9, so relative
scaling would only add failure modes near zero.
"""

from __future__ import annotations

#: Absolute tolerance for curve slopes/breakpoints, in site units.
EPSILON: float = 1e-9


def approx_eq(a: float, b: float, eps: float = EPSILON) -> bool:
    """True when ``a`` and ``b`` differ by at most ``eps``."""
    return abs(a - b) <= eps


def is_zero(value: float, eps: float = EPSILON) -> bool:
    """True when ``value`` is within ``eps`` of zero."""
    return abs(value) <= eps
