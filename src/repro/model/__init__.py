"""Placement data model.

This subpackage is the substrate every algorithm in :mod:`repro` operates
on: geometry primitives, the technology description (cell types, pins,
edge-spacing rules, metal layers), power/ground rail grids, fence regions,
the netlist, row/segment structures, and the :class:`~repro.model.design.Design`
container tying them together with a mutable :class:`~repro.model.placement.Placement`.

Coordinate conventions (see DESIGN.md §5):

* x positions are integer site indices, y positions are integer row indices;
* a cell occupies ``[x, x + width)`` sites and ``[y, y + height)`` rows;
* displacement is reported in row-height units, converting x through
  ``site_width / row_height``.
"""

from repro.model.design import Design
from repro.model.fence import DEFAULT_FENCE, FenceRegion
from repro.model.geometry import Interval, Point, Rect
from repro.model.netlist import Net, Netlist, PinRef
from repro.model.placement import CellState, Placement
from repro.model.rails import Rail, RailGrid
from repro.model.row import Row, Segment
from repro.model.technology import CellType, EdgeSpacingTable, PinShape, Technology

__all__ = [
    "CellState",
    "CellType",
    "DEFAULT_FENCE",
    "Design",
    "EdgeSpacingTable",
    "FenceRegion",
    "Interval",
    "Net",
    "Netlist",
    "PinRef",
    "PinShape",
    "Placement",
    "Point",
    "Rail",
    "RailGrid",
    "Rect",
    "Row",
    "Segment",
    "Technology",
]
