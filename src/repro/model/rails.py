"""Power/ground rail grids and IO pins on metal layers.

Modern designs route P/G as regular grids: stripes running horizontally on
one metal layer and vertically on the next (paper §2).  A signal pin on
layer ``k`` is *short* when it overlaps a rail or IO pin on layer ``k`` and
*inaccessible* when it overlaps one on layer ``k + 1`` (paper Fig. 1).

Rails are stored as arithmetic progressions of stripes so that overlap
queries are O(1) instead of scanning every stripe; irregular shapes (IO
pins) are stored explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.model.geometry import Interval, Rect

HORIZONTAL = "h"
VERTICAL = "v"


@dataclass(frozen=True)
class Rail:
    """A periodic family of P/G stripes on one metal layer.

    For a horizontal rail family, stripes occupy
    ``y in [offset + i*pitch, offset + i*pitch + width)`` for integers ``i``
    with the stripe inside ``span``; they run the full extent of ``extent``
    in x.  Vertical families swap the roles of x and y.

    All coordinates are in length units (not sites/rows), matching pin
    shapes.

    Attributes:
        layer: metal layer index (1 = M1, ...).
        orientation: ``"h"`` or ``"v"``.
        offset: position of the reference stripe's low edge.
        pitch: distance between consecutive stripe low edges (> 0).
        width: stripe width (> 0, expected <= pitch).
        span: interval limiting stripe positions along the periodic axis.
        extent: interval the stripes run along (their long axis).
    """

    layer: int
    orientation: str
    offset: float
    pitch: float
    width: float
    span: Interval
    extent: Interval

    def __post_init__(self) -> None:
        if self.orientation not in (HORIZONTAL, VERTICAL):
            raise ValueError(f"orientation must be 'h' or 'v', got {self.orientation!r}")
        if self.pitch <= 0:
            raise ValueError("rail pitch must be positive")
        if self.width <= 0:
            raise ValueError("rail width must be positive")

    def overlaps_interval(self, lo: float, hi: float) -> bool:
        """True when some stripe intersects ``[lo, hi)`` on the periodic axis."""
        if hi <= lo:
            return False
        lo = max(lo, self.span.lo)
        hi = min(hi, self.span.hi)
        if hi <= lo:
            return False
        # First stripe index whose high edge is past lo.  The division can
        # round either way when lo sits on a stripe edge: onto an exact
        # integer (skipping a stripe still grazing lo — test `first - 1`)
        # or just below one (landing an index too low, e.g. 31.9/0.1 ->
        # 318.999..., so the witness sits at `first + 1`).  Every
        # candidate is verified, so probing both neighbours is sound.
        first = math.floor((lo - self.offset - self.width) / self.pitch) + 1
        for index in (first - 1, first, first + 1):
            stripe_lo = self.offset + index * self.pitch
            if stripe_lo < hi and stripe_lo + self.width > lo:
                return True
        return False

    def overlaps_rect(self, rect: Rect) -> bool:
        """True when some stripe of this family intersects ``rect``."""
        if rect.empty:
            return False
        if self.orientation == HORIZONTAL:
            if not self.extent.overlaps(rect.x_interval):
                return False
            return self.overlaps_interval(rect.ylo, rect.yhi)
        if not self.extent.overlaps(rect.y_interval):
            return False
        return self.overlaps_interval(rect.xlo, rect.xhi)

    def stripes_in(self, lo: float, hi: float) -> Iterator[Interval]:
        """Yield stripe intervals on the periodic axis intersecting ``[lo, hi)``."""
        lo_eff = max(lo, self.span.lo)
        hi_eff = min(hi, self.span.hi)
        if hi_eff <= lo_eff:
            return
        # Start one index early: the same edge-rounding case as in
        # overlaps_interval; non-intersecting stripes are filtered below.
        first = math.floor((lo_eff - self.offset - self.width) / self.pitch) + 1
        index = first - 1
        while True:
            stripe_lo = self.offset + index * self.pitch
            if stripe_lo >= hi_eff:
                return
            stripe = Interval(stripe_lo, stripe_lo + self.width).intersect(
                Interval(lo_eff, hi_eff)
            )
            if not stripe.empty:
                yield stripe
            index += 1


@dataclass(frozen=True)
class IOPin:
    """A fixed IO-pin rectangle on a metal layer (length units)."""

    name: str
    layer: int
    rect: Rect


@dataclass
class RailGrid:
    """All P/G rails and IO pins of a design.

    Provides the two queries the legalizer needs: does a rectangle on layer
    ``k`` overlap any blocking shape on layer ``k`` (pin short) or layer
    ``k + 1`` (pin access)?
    """

    rails: List[Rail] = field(default_factory=list)
    io_pins: List[IOPin] = field(default_factory=list)

    def add_rail(self, rail: Rail) -> Rail:
        self.rails.append(rail)
        return rail

    def add_io_pin(self, pin: IOPin) -> IOPin:
        self.io_pins.append(pin)
        return pin

    def rails_on(self, layer: int) -> List[Rail]:
        """Rail families on one metal layer."""
        return [rail for rail in self.rails if rail.layer == layer]

    def io_pins_on(self, layer: int) -> List[IOPin]:
        """IO pins on one metal layer."""
        return [pin for pin in self.io_pins if pin.layer == layer]

    def rect_blocked_on(self, rect: Rect, layer: int) -> bool:
        """True when ``rect`` overlaps any rail or IO pin on ``layer``."""
        for rail in self.rails:
            if rail.layer == layer and rail.overlaps_rect(rect):
                return True
        for pin in self.io_pins:
            if pin.layer == layer and pin.rect.overlaps(rect):
                return True
        return False

    def pin_short(self, rect: Rect, layer: int) -> bool:
        """Pin *short*: overlap with a same-layer rail or IO pin."""
        return self.rect_blocked_on(rect, layer)

    def pin_access_blocked(self, rect: Rect, layer: int) -> bool:
        """Pin *access* violation: overlap with a rail/IO pin one layer up."""
        return self.rect_blocked_on(rect, layer + 1)

    def blocked_x_intervals(
        self, layer: int, y_lo: float, y_hi: float, x_lo: float, x_hi: float
    ) -> List[Tuple[float, float]]:
        """x-intervals inside ``[x_lo, x_hi)`` blocked on ``layer``.

        Only vertical rails and IO pins contribute; horizontal rails block a
        whole y-band independent of x and are checked separately through
        :meth:`horizontal_blocked`.  Used by the routability refinement to
        carve violation-free movement ranges.
        """
        blocked: List[Tuple[float, float]] = []
        band = Rect(x_lo, y_lo, x_hi, y_hi)
        for rail in self.rails:
            if rail.layer != layer or rail.orientation != VERTICAL:
                continue
            if not rail.extent.overlaps(Interval(y_lo, y_hi)):
                continue
            for stripe in rail.stripes_in(x_lo, x_hi):
                blocked.append((stripe.lo, stripe.hi))
        for pin in self.io_pins:
            if pin.layer != layer:
                continue
            hit = pin.rect.intersect(band)
            if not hit.empty:
                blocked.append((hit.xlo, hit.xhi))
        blocked.sort()
        return blocked

    def horizontal_blocked(self, layer: int, y_lo: float, y_hi: float) -> bool:
        """True when a horizontal rail on ``layer`` crosses ``[y_lo, y_hi)``."""
        for rail in self.rails:
            if rail.layer == layer and rail.orientation == HORIZONTAL:
                if rail.overlaps_interval(y_lo, y_hi):
                    return True
        return False


def standard_pg_grid(
    chip: Rect,
    row_height: float,
    m2_pitch_rows: int = 4,
    m2_width: float = 0.12,
    m3_pitch: float = 12.0,
    m3_width: float = 0.2,
    m3_offset: Optional[float] = None,
) -> RailGrid:
    """Build a contest-style P/G grid for a chip area.

    The grid follows the structure described in the paper (§2): horizontal
    stripes on M2 every ``m2_pitch_rows`` rows plus vertical stripes on M3
    with pitch ``m3_pitch``.  M1 power rails along every row boundary are
    implied by the row structure and are not modelled as blockages, because
    cells are designed to abut them.

    Args:
        chip: chip bounding box in length units.
        row_height: row height in length units.
        m2_pitch_rows: rows between consecutive horizontal M2 stripes.
        m2_width: width of an M2 stripe.
        m3_pitch: pitch of vertical M3 stripes.
        m3_width: width of an M3 stripe.
        m3_offset: low edge of the reference M3 stripe; defaults to half a
            pitch from the chip's left edge.
    """
    grid = RailGrid()
    grid.add_rail(
        Rail(
            layer=2,
            orientation=HORIZONTAL,
            offset=chip.ylo,
            pitch=m2_pitch_rows * row_height,
            width=m2_width,
            span=chip.y_interval,
            extent=chip.x_interval,
        )
    )
    if m3_offset is None:
        m3_offset = chip.xlo + m3_pitch / 2.0
    grid.add_rail(
        Rail(
            layer=3,
            orientation=VERTICAL,
            offset=m3_offset,
            pitch=m3_pitch,
            width=m3_width,
            span=chip.x_interval,
            extent=chip.y_interval,
        )
    )
    return grid
