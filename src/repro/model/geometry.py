"""Geometry primitives used throughout the placement model.

All coordinates here are plain numbers (typically integers in site/row
units).  The classes are deliberately small, immutable value objects so they
can be hashed, stored in sets, and compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A 2-D point ``(x, y)``."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open 1-D interval ``[lo, hi)``.

    Empty intervals (``hi <= lo``) are permitted and behave as expected:
    they overlap nothing and contain nothing.
    """

    lo: float
    hi: float

    @property
    def length(self) -> float:
        """Interval length, never negative."""
        return max(0.0, self.hi - self.lo)

    @property
    def empty(self) -> bool:
        """True when the interval contains no point."""
        return self.hi <= self.lo

    def contains(self, x: float) -> bool:
        """True when ``lo <= x < hi``."""
        return self.lo <= x < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely inside this interval."""
        return other.empty or (self.lo <= other.lo and other.hi <= self.hi)

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share a point (open overlap)."""
        return self.lo < other.hi and other.lo < self.hi

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection of the two intervals (possibly empty)."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union_span(self, other: "Interval") -> "Interval":
        """Smallest interval covering both inputs."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shifted(self, delta: float) -> "Interval":
        """Return a copy shifted by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)

    def clamp(self, x: float) -> float:
        """Clamp ``x`` into ``[lo, hi]`` (closed on both ends)."""
        return min(max(x, self.lo), self.hi)


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle ``[xlo, xhi) x [ylo, yhi)``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    @property
    def width(self) -> float:
        return max(0.0, self.xhi - self.xlo)

    @property
    def height(self) -> float:
        return max(0.0, self.yhi - self.ylo)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def empty(self) -> bool:
        return self.xhi <= self.xlo or self.yhi <= self.ylo

    @property
    def x_interval(self) -> Interval:
        return Interval(self.xlo, self.xhi)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.ylo, self.yhi)

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside the half-open rectangle."""
        return self.xlo <= x < self.xhi and self.ylo <= y < self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        if other.empty:
            return True
        return (
            self.xlo <= other.xlo
            and other.xhi <= self.xhi
            and self.ylo <= other.ylo
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles share interior area."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersect(self, other: "Rect") -> "Rect":
        """Intersection rectangle (possibly empty)."""
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def union_span(self, other: "Rect") -> "Rect":
        """Bounding box of the two rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def inflated(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on all four sides."""
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )


def subtract_intervals(base: Interval, holes: Iterable[Interval]) -> List[Interval]:
    """Subtract ``holes`` from ``base`` and return the remaining pieces.

    The result is a sorted list of disjoint, non-empty intervals.  Used to
    carve row segments out of rows around blockages and fences.
    """
    pieces = [base] if not base.empty else []
    for hole in sorted(holes, key=lambda iv: iv.lo):
        if hole.empty:
            continue
        next_pieces: List[Interval] = []
        for piece in pieces:
            if not piece.overlaps(hole):
                next_pieces.append(piece)
                continue
            left = Interval(piece.lo, min(piece.hi, hole.lo))
            right = Interval(max(piece.lo, hole.hi), piece.hi)
            if not left.empty:
                next_pieces.append(left)
            if not right.empty:
                next_pieces.append(right)
        pieces = next_pieces
    return pieces


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/touching intervals into a minimal disjoint list."""
    items = sorted((iv for iv in intervals if not iv.empty), key=lambda iv: iv.lo)
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.lo <= merged[-1].hi:
            merged[-1] = Interval(merged[-1].lo, max(merged[-1].hi, iv.hi))
        else:
            merged.append(iv)
    return merged


def iter_pairs(values: Iterable) -> Iterator[Tuple]:
    """Yield consecutive pairs ``(values[i], values[i+1])``."""
    prev: Optional[object] = None
    first = True
    for value in values:
        if not first:
            yield prev, value
        prev = value
        first = False
