"""Mutable placement state.

A :class:`Placement` stores the legalized (or in-progress) integer
site/row position of every cell of a design.  Global-placement input
positions live on the design itself (they are immutable reference data);
the placement only holds the current positions being optimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.model.geometry import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.model.design import Design


@dataclass(frozen=True)
class CellState:
    """A snapshot of one cell's current position."""

    cell: int
    x: int
    y: int


class Placement:
    """Integer positions ``(x site, y row)`` for every cell of a design.

    The placement does not enforce legality; it is plain state that
    algorithms mutate and checkers validate.
    """

    def __init__(self, design: "Design", x: Optional[Sequence[int]] = None,
                 y: Optional[Sequence[int]] = None):
        self.design = design
        n = design.num_cells
        if x is None:
            x = [0] * n
        if y is None:
            y = [0] * n
        if len(x) != n or len(y) != n:
            raise ValueError(
                f"placement size mismatch: design has {n} cells, "
                f"got {len(x)} x / {len(y)} y positions"
            )
        self.x: List[int] = [int(v) for v in x]
        self.y: List[int] = [int(v) for v in y]

    @classmethod
    def from_gp_rounded(cls, design: "Design") -> "Placement":
        """Seed a placement by rounding GP positions to sites/rows.

        The result is generally illegal (overlaps, fence violations); it is
        the standard starting state handed to a legalizer.
        """
        x = [int(round(design.gp_x[i])) for i in range(design.num_cells)]
        y = [int(round(design.gp_y[i])) for i in range(design.num_cells)]
        return cls(design, x, y)

    def copy(self) -> "Placement":
        """Deep copy of the position state (shares the design)."""
        return Placement(self.design, list(self.x), list(self.y))

    def move(self, cell: int, x: int, y: int) -> None:
        """Place ``cell`` at ``(x, y)``."""
        self.x[cell] = int(x)
        self.y[cell] = int(y)

    def position(self, cell: int) -> Tuple[int, int]:
        """Current ``(x, y)`` of ``cell``."""
        return self.x[cell], self.y[cell]

    def rect(self, cell: int) -> Rect:
        """Occupied rectangle of ``cell`` in site/row units."""
        cell_type = self.design.cell_type_of(cell)
        x, y = self.x[cell], self.y[cell]
        return Rect(x, y, x + cell_type.width, y + cell_type.height)

    def center_length_units(self, cell: int) -> Tuple[float, float]:
        """Cell center in length units (for HPWL)."""
        design = self.design
        cell_type = design.cell_type_of(cell)
        cx = (self.x[cell] + cell_type.width / 2.0) * design.site_width
        cy = (self.y[cell] + cell_type.height / 2.0) * design.row_height
        return cx, cy

    def centers_length_units(self) -> List[Tuple[float, float]]:
        """All cell centers in length units."""
        return [self.center_length_units(i) for i in range(self.design.num_cells)]

    def displacement(self, cell: int) -> float:
        """Displacement of ``cell`` from GP, in row-height units (Eq. 1).

        x distance is converted through ``site_width / row_height`` so both
        axes are measured "in numbers of single row heights" as the paper
        and the ICCAD-2017 contest specify.
        """
        design = self.design
        dx = abs(self.x[cell] - design.gp_x[cell]) * design.x_unit_rows
        dy = abs(self.y[cell] - design.gp_y[cell])
        return dx + dy

    def displacements(self) -> npt.NDArray[np.float64]:
        """Vector of all per-cell displacements in row-height units."""
        design = self.design
        x = np.asarray(self.x, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        dx = np.abs(x - design.gp_x_array) * design.x_unit_rows
        dy = np.abs(y - design.gp_y_array)
        return dx + dy

    def total_displacement_sites(self) -> float:
        """Total Manhattan displacement in *site* units.

        This is the objective used for Table 2 comparisons with prior work
        (total displacement in sites, unweighted).  y distance converts at
        ``row_height / site_width`` sites per row.
        """
        design = self.design
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        dx = np.abs(x - design.gp_x_array)
        dy = np.abs(y - design.gp_y_array) * (design.row_height / design.site_width)
        return float(np.sum(dx + dy))

    def snapshot(self, cells: Optional[Iterable[int]] = None) -> List[CellState]:
        """Immutable snapshot of (a subset of) cell positions."""
        indices = range(self.design.num_cells) if cells is None else cells
        return [CellState(i, self.x[i], self.y[i]) for i in indices]

    def restore(self, states: Iterable[CellState]) -> None:
        """Undo positions to a previous :meth:`snapshot`."""
        for state in states:
            self.x[state.cell] = state.x
            self.y[state.cell] = state.y

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self.x == other.x and self.y == other.y and self.design is other.design

    def __repr__(self) -> str:
        return f"Placement({self.design.num_cells} cells)"
