"""The :class:`Design` container: everything a legalizer needs.

A design bundles the technology, the placement area (rows x sites), cell
instances with their global-placement (GP) positions and fence
assignments, fence regions, the P/G rail grid with IO pins, placement
blockages, and the netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import numpy.typing as npt

from repro.model.fence import DEFAULT_FENCE, FenceRegion, fences_overlap
from repro.model.geometry import Rect
from repro.model.netlist import Netlist
from repro.model.rails import RailGrid
from repro.model.row import Row, Segment, build_row_segments
from repro.model.technology import CellType, Technology


@dataclass
class CellInstance:
    """One placed cell instance.

    Attributes:
        name: instance name.
        cell_type: master definition.
        fence_id: fence region the cell is assigned to (0 = default).
        fixed: fixed cells may not be moved by any algorithm.
        gp_x: global-placement x in (fractional) site units.
        gp_y: global-placement y in (fractional) row units.
    """

    name: str
    cell_type: CellType
    fence_id: int = DEFAULT_FENCE
    fixed: bool = False
    gp_x: float = 0.0
    gp_y: float = 0.0


class Design:
    """A complete mixed-cell-height placement problem instance.

    Args:
        technology: cell library and edge-spacing rules.
        num_rows: number of placement rows (y in ``[0, num_rows)``).
        num_sites: sites per row (x in ``[0, num_sites)``).
        site_width: site width in length units.
        row_height: row height in length units.
        power_parity: bottom-row parity (0 or 1) required for even-height
            cells; odd-height cells are flippable and unconstrained.
        name: design name, used in reports.
    """

    def __init__(
        self,
        technology: Technology,
        num_rows: int,
        num_sites: int,
        site_width: float = 0.2,
        row_height: float = 2.0,
        power_parity: int = 0,
        name: str = "design",
    ):
        if num_rows <= 0 or num_sites <= 0:
            raise ValueError("design must have positive rows and sites")
        if power_parity not in (0, 1):
            raise ValueError("power_parity must be 0 or 1")
        if site_width <= 0 or row_height <= 0:
            raise ValueError("site_width and row_height must be positive")
        self.technology = technology
        self.num_rows = num_rows
        self.num_sites = num_sites
        self.site_width = site_width
        self.row_height = row_height
        self.power_parity = power_parity
        self.name = name

        self.cells: List[CellInstance] = []
        self.fences: List[FenceRegion] = []
        self.blockages: List[Rect] = []
        self.rails: RailGrid = RailGrid()
        self.netlist: Netlist = Netlist()

        # Built eagerly (and rebuilt on every fence/blockage mutation)
        # so reads are pure: a lazily filled cache would be a shared
        # write when first touched from the scheduler's worker threads.
        self._segments_cache: Dict[int, List[Segment]] = build_row_segments(
            self.rows(), self.fences, self.blockages
        )
        self._gp_x_array: Optional[npt.NDArray[np.float64]] = None
        self._gp_y_array: Optional[npt.NDArray[np.float64]] = None
        self._cell_widths: Optional[List[int]] = None
        self._cell_heights: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_cell(
        self,
        name: str,
        cell_type: CellType,
        gp_x: float,
        gp_y: float,
        fence_id: int = DEFAULT_FENCE,
        fixed: bool = False,
    ) -> int:
        """Add a cell instance and return its index."""
        self.cells.append(
            CellInstance(name, cell_type, fence_id, fixed, float(gp_x), float(gp_y))
        )
        self._gp_x_array = None
        self._gp_y_array = None
        self._cell_widths = None
        self._cell_heights = None
        return len(self.cells) - 1

    def add_fence(self, fence: FenceRegion) -> FenceRegion:
        """Register a fence region (invalidates the segment cache)."""
        if any(existing.fence_id == fence.fence_id for existing in self.fences):
            raise ValueError(f"duplicate fence id {fence.fence_id}")
        self.fences.append(fence)
        self._rebuild_segments()
        return fence

    def add_blockage(self, rect: Rect) -> Rect:
        """Register a placement blockage (invalidates the segment cache)."""
        self.blockages.append(rect)
        self._rebuild_segments()
        return rect

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def chip_rect(self) -> Rect:
        """Placement area in site/row units."""
        return Rect(0, 0, self.num_sites, self.num_rows)

    @property
    def chip_rect_length_units(self) -> Rect:
        """Placement area in length units."""
        return Rect(
            0.0, 0.0, self.num_sites * self.site_width, self.num_rows * self.row_height
        )

    @property
    def x_unit_rows(self) -> float:
        """Row-height units per site step (converts x distance to rows)."""
        return self.site_width / self.row_height

    def cell_type_of(self, cell: int) -> CellType:
        return self.cells[cell].cell_type

    @property
    def cell_widths(self) -> List[int]:
        """Per-cell widths in sites (cached; rebuilt after add_cell)."""
        if self._cell_widths is None or len(self._cell_widths) != self.num_cells:
            self._cell_widths = [c.cell_type.width for c in self.cells]
        return self._cell_widths

    @property
    def cell_heights(self) -> List[int]:
        """Per-cell heights in rows (cached; rebuilt after add_cell)."""
        if self._cell_heights is None or len(self._cell_heights) != self.num_cells:
            self._cell_heights = [c.cell_type.height for c in self.cells]
        return self._cell_heights

    def fence_of(self, cell: int) -> int:
        return self.cells[cell].fence_id

    def fence_region(self, fence_id: int) -> FenceRegion:
        """Look up an explicit fence region by id.

        Raises:
            KeyError: for the default fence (it has no region object) or an
                unknown id.
        """
        for fence in self.fences:
            if fence.fence_id == fence_id:
                return fence
        raise KeyError(f"no fence region with id {fence_id}")

    @property
    def gp_x_array(self) -> npt.NDArray[np.float64]:
        if self._gp_x_array is None or len(self._gp_x_array) != self.num_cells:
            self._gp_x_array = np.array(
                [c.gp_x for c in self.cells], dtype=np.float64
            )
        return self._gp_x_array

    @property
    def gp_y_array(self) -> npt.NDArray[np.float64]:
        if self._gp_y_array is None or len(self._gp_y_array) != self.num_cells:
            self._gp_y_array = np.array(
                [c.gp_y for c in self.cells], dtype=np.float64
            )
        return self._gp_y_array

    @property
    def gp_x(self) -> npt.NDArray[np.float64]:
        """Per-cell GP x positions (site units)."""
        return self.gp_x_array

    @property
    def gp_y(self) -> npt.NDArray[np.float64]:
        """Per-cell GP y positions (row units)."""
        return self.gp_y_array

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def rows(self) -> List[Row]:
        """All placement rows."""
        return [Row(r, 0, self.num_sites) for r in range(self.num_rows)]

    def _rebuild_segments(self) -> None:
        self._segments_cache = build_row_segments(
            self.rows(), self.fences, self.blockages
        )

    def segments(self) -> Dict[int, List[Segment]]:
        """Fence-homogeneous, blockage-free segments per row.

        Maintained eagerly by :meth:`add_fence`/:meth:`add_blockage`;
        reading it never mutates the design.
        """
        return self._segments_cache

    def segments_in_row(self, row: int) -> List[Segment]:
        """Segments of one row (empty list outside the chip)."""
        return self.segments().get(row, [])

    def segment_at(self, row: int, x: float) -> Optional[Segment]:
        """The segment of ``row`` containing site ``x`` (or None)."""
        for segment in self.segments_in_row(row):
            if segment.x_lo <= x < segment.x_hi:
                return segment
        return None

    def cells_by_height(self) -> Dict[int, List[int]]:
        """Movable-cell indices grouped by cell height."""
        groups: Dict[int, List[int]] = {}
        for index, cell in enumerate(self.cells):
            if cell.fixed:
                continue
            groups.setdefault(cell.cell_type.height, []).append(index)
        return groups

    def movable_cells(self) -> List[int]:
        """Indices of movable (non-fixed) cells."""
        return [i for i, cell in enumerate(self.cells) if not cell.fixed]

    def row_parity_ok(self, cell: int, row: int) -> bool:
        """P/G alignment: may ``cell`` have its bottom edge on ``row``?

        Even-height cells require ``row % 2 == power_parity``; odd-height
        cells can be flipped and fit any row (paper §2).
        """
        cell_type = self.cell_type_of(cell)
        if cell_type.parity_constrained:
            return row % 2 == self.power_parity
        return True

    def density(self) -> float:
        """Design density: total cell area over total free area.

        Matches the "Density" column of the paper's tables (total cell
        area / total placeable area).
        """
        cell_area = sum(
            c.cell_type.width * c.cell_type.height for c in self.cells
        )
        free_area = sum(
            seg.width for segs in self.segments().values() for seg in segs
        )
        if free_area <= 0:
            return float("inf")
        return cell_area / free_area

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants of the instance itself.

        Raises:
            ValueError: on overlapping fences, out-of-chip fence or
                blockage rectangles, non-integer fence/blockage coordinates,
                or cells assigned to unknown fences.
        """
        chip = self.chip_rect
        known_fences = {DEFAULT_FENCE} | {f.fence_id for f in self.fences}
        if fences_overlap(self.fences):
            raise ValueError("fence regions overlap each other")
        for fence in self.fences:
            for rect in fence.rects:
                _require_integral_rect(rect, f"fence {fence.name!r}")
                if not chip.contains_rect(rect):
                    raise ValueError(
                        f"fence {fence.name!r} rectangle {rect} outside chip"
                    )
        for rect in self.blockages:
            _require_integral_rect(rect, "blockage")
        for index, cell in enumerate(self.cells):
            if cell.fence_id not in known_fences:
                raise ValueError(
                    f"cell {index} ({cell.name!r}) assigned to unknown fence "
                    f"{cell.fence_id}"
                )
            if cell.cell_type.height > self.num_rows:
                raise ValueError(
                    f"cell {index} taller ({cell.cell_type.height} rows) than chip"
                )

    def __repr__(self) -> str:
        return (
            f"Design({self.name!r}, {self.num_cells} cells, "
            f"{self.num_rows} rows x {self.num_sites} sites, "
            f"{len(self.fences)} fences)"
        )


def _require_integral_rect(rect: Rect, what: str) -> None:
    for value in (rect.xlo, rect.ylo, rect.xhi, rect.yhi):
        if not float(value).is_integer():
            raise ValueError(f"{what} rectangle {rect} has non-integer coordinates")
