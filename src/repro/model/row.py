"""Rows and row segments.

The placement area is a stack of rows (row ``r`` spans ``[r, r+1)`` in row
units).  Each row is partitioned into *segments*: maximal x-intervals of
usable sites that lie entirely inside one fence region (or the default
fence) and contain no blockage.  Cells may only occupy sites of segments
whose fence id matches their own, and multi-row cells need vertically
aligned segments of the same fence across all spanned rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.model.fence import DEFAULT_FENCE, FenceRegion
from repro.model.geometry import Interval, Rect, subtract_intervals


@dataclass(frozen=True)
class Row:
    """One placement row.

    Attributes:
        index: row index (y coordinate of its bottom edge, in row units).
        x_lo: first usable site.
        x_hi: one past the last usable site.
    """

    index: int
    x_lo: int
    x_hi: int

    @property
    def num_sites(self) -> int:
        return max(0, self.x_hi - self.x_lo)


@dataclass(frozen=True)
class Segment:
    """A maximal usable x-interval of one row within one fence region.

    Attributes:
        row: row index.
        x_lo: first site of the segment.
        x_hi: one past the last site.
        fence_id: fence region owning the segment (0 = default fence).
    """

    row: int
    x_lo: int
    x_hi: int
    fence_id: int

    @property
    def width(self) -> int:
        return max(0, self.x_hi - self.x_lo)

    @property
    def interval(self) -> Interval:
        return Interval(self.x_lo, self.x_hi)

    def contains_span(self, x_lo: float, x_hi: float) -> bool:
        """True when ``[x_lo, x_hi)`` lies inside the segment."""
        return self.x_lo <= x_lo and x_hi <= self.x_hi


def build_row_segments(
    rows: Sequence[Row],
    fences: Sequence[FenceRegion],
    blockages: Sequence[Rect] = (),
) -> Dict[int, List[Segment]]:
    """Partition every row into fence-homogeneous, blockage-free segments.

    Args:
        rows: the placement rows.
        fences: explicit fence regions; area outside all of them belongs to
            the default fence (id 0).
        blockages: unusable rectangles in site/row units.

    Returns:
        Mapping from row index to its segments sorted by ``x_lo``.

    The segments of one row are disjoint.  Explicit fences are assumed not
    to overlap each other (checked by the design validator); where a fence
    rectangle covers only part of a row's span the row is split at the
    fence's x boundaries so that each segment has a single fence id.
    """
    segments: Dict[int, List[Segment]] = {}
    for row in rows:
        base = Interval(row.x_lo, row.x_hi)
        row_band = Interval(row.index, row.index + 1)

        holes = [
            rect.x_interval
            for rect in blockages
            if rect.y_interval.overlaps(row_band) and not rect.x_interval.empty
        ]
        free = subtract_intervals(base, holes)

        # Fence rectangles crossing this row, as (interval, fence_id).
        fence_spans: List[Tuple[Interval, int]] = []
        for fence in fences:
            for rect in fence.rects:
                if rect.y_interval.overlaps(row_band):
                    fence_spans.append((rect.x_interval, fence.fence_id))
        fence_spans.sort(key=lambda item: item[0].lo)

        row_segments: List[Segment] = []
        for piece in free:
            row_segments.extend(_split_by_fences(row.index, piece, fence_spans))
        row_segments.sort(key=lambda seg: seg.x_lo)
        segments[row.index] = row_segments
    return segments


def _split_by_fences(
    row_index: int,
    piece: Interval,
    fence_spans: Sequence[Tuple[Interval, int]],
) -> List[Segment]:
    """Split one free interval at fence boundaries.

    Parts covered by a fence rectangle get that fence's id; uncovered parts
    get the default fence id.
    """
    cuts = {piece.lo, piece.hi}
    for span, _ in fence_spans:
        clipped = span.intersect(piece)
        if not clipped.empty:
            cuts.add(clipped.lo)
            cuts.add(clipped.hi)
    ordered = sorted(cuts)

    segments: List[Segment] = []
    for lo, hi in zip(ordered, ordered[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        fence_id = DEFAULT_FENCE
        for span, span_fence in fence_spans:
            if span.contains(mid):
                fence_id = span_fence
                break
        segment = Segment(row_index, int(lo), int(hi), fence_id)
        if segments and segments[-1].x_hi == segment.x_lo and segments[-1].fence_id == fence_id:
            # Merge adjacent same-fence pieces created by redundant cuts.
            segments[-1] = Segment(row_index, segments[-1].x_lo, segment.x_hi, fence_id)
        else:
            segments.append(segment)
    return segments
