"""Technology description: cell types, pin shapes, and edge-spacing rules.

A :class:`CellType` is the master definition shared by all instances of a
cell (its footprint in sites/rows, its signal-pin shapes per metal layer,
and the edge types of its left and right boundaries).  The
:class:`EdgeSpacingTable` stores the minimum site spacing required between
two abutting cell edges, mirroring the edge-type rules of the ISPD-2015 /
ICCAD-2017 contest formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.model.geometry import Rect

#: Edge type used by cells with no special spacing requirement.
DEFAULT_EDGE_TYPE = 0


@dataclass(frozen=True)
class PinShape:
    """A signal-pin rectangle in cell-local coordinates.

    ``rect`` is expressed in the same abstract length unit used by
    :class:`~repro.model.design.Design` (see ``site_width``/``row_height``),
    with the cell's lower-left corner at the origin and the cell unflipped.

    Attributes:
        name: pin name, unique within the cell type.
        layer: metal layer index (1 = M1, 2 = M2, ...).
        rect: pin shape relative to the cell origin.
    """

    name: str
    layer: int
    rect: Rect

    def placed(self, x_len: float, y_len: float) -> Rect:
        """Pin rectangle when the cell origin is at ``(x_len, y_len)``.

        Both arguments are in length units (site index times site width,
        row index times row height).
        """
        return self.rect.translated(x_len, y_len)


@dataclass(frozen=True)
class CellType:
    """A standard-cell master of a given footprint.

    Attributes:
        name: unique type name, e.g. ``"INV_X1"`` or ``"FF2_X4"``.
        width: footprint width in sites.
        height: footprint height in rows (1 for simple cells, >= 2 for
            multi-row cells).
        pins: signal-pin shapes (power pins are modelled by the rail grid,
            not per cell).
        left_edge: edge type of the left boundary for edge-spacing rules.
        right_edge: edge type of the right boundary.
    """

    name: str
    width: int
    height: int
    pins: Tuple[PinShape, ...] = ()
    left_edge: int = DEFAULT_EDGE_TYPE
    right_edge: int = DEFAULT_EDGE_TYPE

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"cell type {self.name!r}: width must be positive")
        if self.height <= 0:
            raise ValueError(f"cell type {self.name!r}: height must be positive")

    @property
    def is_multi_row(self) -> bool:
        """True for cells spanning more than one row."""
        return self.height > 1

    @property
    def parity_constrained(self) -> bool:
        """True when P/G alignment restricts the bottom-row parity.

        Even-height cells cannot be flipped into alignment, so their bottom
        row parity is fixed; odd-height cells can always be flipped.
        """
        return self.height % 2 == 0

    def pin_named(self, name: str) -> PinShape:
        """Look up a pin by name.

        Raises:
            KeyError: when the cell type has no such pin.
        """
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"cell type {self.name!r} has no pin {name!r}")


class EdgeSpacingTable:
    """Minimum spacing (in sites) between pairs of cell edge types.

    The table is symmetric: the spacing between edge types ``(a, b)`` equals
    the spacing between ``(b, a)``.  Pairs not present in the table require
    no spacing (0 sites), matching the contest semantics where only listed
    edge-type pairs carry rules.
    """

    def __init__(self, rules: Optional[Iterable[Tuple[int, int, int]]] = None):
        """Create a table from ``(edge_a, edge_b, spacing_sites)`` triples."""
        self._rules: Dict[Tuple[int, int], int] = {}
        for edge_a, edge_b, spacing in rules or ():
            self.set_spacing(edge_a, edge_b, spacing)

    def set_spacing(self, edge_a: int, edge_b: int, spacing: int) -> None:
        """Set the required spacing between two edge types."""
        if spacing < 0:
            raise ValueError("edge spacing must be non-negative")
        self._rules[self._key(edge_a, edge_b)] = spacing

    def spacing(self, edge_a: int, edge_b: int) -> int:
        """Required spacing in sites between ``edge_a`` and ``edge_b``."""
        return self._rules.get(self._key(edge_a, edge_b), 0)

    def max_spacing(self) -> int:
        """Largest spacing in the table (0 when empty)."""
        return max(self._rules.values(), default=0)

    def items(self) -> List[Tuple[int, int, int]]:
        """All rules as sorted ``(edge_a, edge_b, spacing)`` triples."""
        return sorted((a, b, s) for (a, b), s in self._rules.items())

    def __len__(self) -> int:
        return len(self._rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeSpacingTable):
            return NotImplemented
        return self._rules == other._rules

    @staticmethod
    def _key(edge_a: int, edge_b: int) -> Tuple[int, int]:
        return (edge_a, edge_b) if edge_a <= edge_b else (edge_b, edge_a)


@dataclass
class Technology:
    """The technology library: cell types plus edge-spacing rules.

    Attributes:
        cell_types: masters indexed implicitly by position; use
            :meth:`type_named` for name lookup.
        edge_spacing: pairwise edge-type spacing rules.
        num_layers: number of routing metal layers modelled (pin access on
            layer ``k`` checks rails on layer ``k + 1``).
    """

    cell_types: List[CellType] = field(default_factory=list)
    edge_spacing: EdgeSpacingTable = field(default_factory=EdgeSpacingTable)
    num_layers: int = 4

    def __post_init__(self) -> None:
        self._by_name: Dict[str, CellType] = {}
        for cell_type in self.cell_types:
            self._register(cell_type)

    def _register(self, cell_type: CellType) -> None:
        if cell_type.name in self._by_name:
            raise ValueError(f"duplicate cell type name {cell_type.name!r}")
        self._by_name[cell_type.name] = cell_type

    def add_cell_type(self, cell_type: CellType) -> CellType:
        """Register a new master and return it."""
        self._register(cell_type)
        self.cell_types.append(cell_type)
        return cell_type

    def type_named(self, name: str) -> CellType:
        """Look up a master by name.

        Raises:
            KeyError: when no master has that name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown cell type {name!r}") from None

    @property
    def max_height(self) -> int:
        """Largest cell height ``H`` in rows (0 for an empty library)."""
        return max((ct.height for ct in self.cell_types), default=0)

    def heights(self) -> List[int]:
        """Sorted distinct cell heights present in the library."""
        return sorted({ct.height for ct in self.cell_types})
