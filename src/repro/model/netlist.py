"""Netlist: nets connecting cell pins, plus HPWL evaluation.

Legalization itself optimizes displacement, but the contest score (paper
Eq. 10) penalizes the *increase* in half-perimeter wirelength (HPWL), so
the checker needs net connectivity.  Pin positions are resolved through the
owning cell's type and current placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PinRef:
    """A reference to one pin of one cell instance.

    Attributes:
        cell: cell instance index in the design.
        pin: pin name within the cell's type; ``None`` refers to the cell
            center (used for abstract/synthetic netlists without physical
            pin geometry).
    """

    cell: int
    pin: Optional[str] = None


@dataclass
class Net:
    """A net connecting cell pins and optional fixed terminal points.

    Attributes:
        name: net name.
        pins: connected cell pins.
        terminals: fixed ``(x, y)`` points in length units (IO terminals).
    """

    name: str
    pins: List[PinRef] = field(default_factory=list)
    terminals: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def degree(self) -> int:
        """Number of connected points (pins plus fixed terminals)."""
        return len(self.pins) + len(self.terminals)


class Netlist:
    """A collection of nets with per-cell connectivity indexing."""

    def __init__(self, nets: Optional[Iterable[Net]] = None):
        self.nets: List[Net] = list(nets or ())
        self._cell_to_nets: Optional[Dict[int, List[int]]] = None

    def add_net(self, net: Net) -> Net:
        """Append a net and invalidate the connectivity index."""
        self.nets.append(net)
        self._cell_to_nets = None
        return net

    def nets_of_cell(self, cell: int) -> List[int]:
        """Indices of nets touching ``cell`` (built lazily, cached)."""
        if self._cell_to_nets is None:
            index: Dict[int, List[int]] = {}
            for net_index, net in enumerate(self.nets):
                for pin in net.pins:
                    index.setdefault(pin.cell, []).append(net_index)
            self._cell_to_nets = index
        return self._cell_to_nets.get(cell, [])

    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self) -> Iterator[Net]:
        return iter(self.nets)


def hpwl(
    netlist: Netlist,
    positions: Sequence[Tuple[float, float]],
) -> float:
    """Total half-perimeter wirelength in length units.

    Args:
        netlist: the nets to measure.
        positions: per-cell pin anchor positions ``(x, y)`` in length units
            (typically cell centers; physical pin offsets shift HPWL by a
            placement-independent amount for single-pin-per-net-per-cell
            netlists, so centers are the standard approximation).

    Nets with fewer than two points contribute zero.
    """
    total = 0.0
    for net in netlist.nets:
        xs: List[float] = []
        ys: List[float] = []
        for pin in net.pins:
            x, y = positions[pin.cell]
            xs.append(x)
            ys.append(y)
        for x, y in net.terminals:
            xs.append(x)
            ys.append(y)
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total
