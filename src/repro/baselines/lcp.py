"""Quadratic / LCP legalization flow (Chen et al., DAC 2017 [9] style).

Representative of the paper's QP-based prior work: legalization is cast
as minimizing the **quadratic** displacement from GP under non-overlap
constraints; with rows and per-row order fixed, the KKT conditions form a
linear complementarity problem (LCP).  We reproduce the flow's shape:

1. an ordered seed assigns rows and order (the Abacus-style ordered
   legalizer, matching [9]'s Abacus-lineage starting point);
2. the fixed-order quadratic program is solved exactly (to tolerance) by
   projected Gauss-Seidel on the *dual* multipliers — the classic LCP
   iteration on the KKT system: each ordering/bound constraint carries a
   multiplier ``lambda >= 0``, and sweeps update
   ``lambda_c <- max(0, lambda_c + violation_c / (a_c W^-1 a_c^T))``
   while the primal tracks ``x = t - W^-1 A^T lambda``;
3. positions are snapped to sites, preserving order and separations.

The quadratic objective is the defining difference from the paper's
linear-displacement MCF; this baseline slightly over-penalizes long moves
and cannot trade average against maximum displacement explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.flowopt import FixedRowOrderProblem, build_problem
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement


class LCPLegalizer:
    """Greedy seed + projected-Gauss-Seidel quadratic refinement."""

    def __init__(
        self,
        design: Design,
        params: Optional[LegalizerParams] = None,
        max_sweeps: int = 200,
        tolerance: float = 1e-3,
    ):
        design.validate()
        self.design = design
        self.params = params or LegalizerParams(
            routability=False, use_matching=False, use_flow_opt=False
        )
        self.max_sweeps = max_sweeps
        self.tolerance = tolerance
        self.sweeps_used = 0

    def run(self) -> Placement:
        """Seed, refine, snap; returns a legal placement."""
        from repro.baselines.abacus import AbacusLegalizer

        placement = AbacusLegalizer(self.design, self.params).run()
        self.refine(placement)
        return placement

    def refine(self, placement: Placement) -> None:
        """Fixed-row-fixed-order quadratic refinement in place.

        Solves ``min sum (x_k - t_k)^2`` subject to the ordering pairs and
        bounds by projected Gauss-Seidel on the KKT multipliers (the LCP
        iteration); the unconstrained optimum is the GP target vector.
        """
        problem = build_problem(placement, self.params, guard=None)
        n = len(problem.cells)
        if n == 0:
            return

        xs: List[float] = [float(g) for g in problem.gp_x]  # x(lambda=0) = t

        # Constraints as (index_pos, index_neg, rhs): x[i] - x[j] <= rhs
        # with index -1 meaning "absent" (bound constraints).  Each carries
        # a multiplier; a_c W^-1 a_c^T = #present indices (unit weights).
        constraints: List[Tuple[int, int, float]] = []
        for left, right, sep in problem.pairs:
            constraints.append((left, right, -float(sep)))  # x_l - x_r <= -sep
        for k in range(n):
            constraints.append((k, -1, float(problem.upper[k])))  # x_k <= r_k
            constraints.append((-1, k, -float(problem.lower[k])))  # -x_k <= -l_k

        lambdas = [0.0] * len(constraints)
        for sweep in range(self.max_sweeps):
            self.sweeps_used = sweep + 1
            worst = 0.0
            for c, (pos, neg, rhs) in enumerate(constraints):
                value = (xs[pos] if pos >= 0 else 0.0) - (
                    xs[neg] if neg >= 0 else 0.0
                )
                denom = (1 if pos >= 0 else 0) + (1 if neg >= 0 else 0)
                residual = value - rhs
                new_lambda = max(0.0, lambdas[c] + residual / denom)
                delta = new_lambda - lambdas[c]
                if delta == 0.0:
                    continue
                lambdas[c] = new_lambda
                if pos >= 0:
                    xs[pos] -= delta
                if neg >= 0:
                    xs[neg] += delta
                worst = max(worst, abs(delta))
            if worst < self.tolerance:
                break

        seed = [placement.x[cell] for cell in problem.cells]
        snapped = self._snap_to_sites(problem, xs, seed)
        if problem.check_feasible(snapped):
            return  # Defensive: keep the seed if projection broke a bound.
        for k, cell in enumerate(problem.cells):
            placement.x[cell] = snapped[k]

    def _snap_to_sites(
        self,
        problem: FixedRowOrderProblem,
        xs: List[float],
        seed: List[int],
    ) -> List[int]:
        """Project the continuous solution to sites, staying feasible.

        Starts from the integer-feasible ``seed`` and repeatedly moves
        each cell as close to ``round(xs[k])`` as its *current* neighbors
        and bounds allow.  Every intermediate state is feasible, so the
        result is always valid; a few rounds suffice because chains
        propagate one cell per sweep in the worst case.
        """
        n = len(xs)
        left_of: Dict[int, List[Tuple[int, int]]] = {k: [] for k in range(n)}
        right_of: Dict[int, List[Tuple[int, int]]] = {k: [] for k in range(n)}
        for left, right, sep in problem.pairs:
            left_of[right].append((left, sep))
            right_of[left].append((right, sep))

        snapped = list(seed)
        targets = [int(round(v)) for v in xs]
        for _round in range(50):
            changed = False
            for k in range(n):
                lo = problem.lower[k]
                hi = problem.upper[k]
                for left, sep in left_of[k]:
                    lo = max(lo, snapped[left] + sep)
                for right, sep in right_of[k]:
                    hi = min(hi, snapped[right] - sep)
                value = min(max(targets[k], lo), hi)
                if value != snapped[k]:
                    snapped[k] = value
                    changed = True
            if not changed:
                break
        return snapped


def legalize_lcp(design: Design, params: Optional[LegalizerParams] = None) -> Placement:
    """One-call LCP-style legalization (the [9] baseline of Table 2)."""
    return LCPLegalizer(design, params).run()
