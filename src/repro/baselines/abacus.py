"""Ordered multi-row legalizer (Wang et al., ASPDAC 2017 [7] style).

Representative of the paper's first category of prior work: algorithms
that *honor the horizontal cell order* of global placement (Abacus [8]
lineage).  Cells are processed in increasing GP x; each cell may only be
appended after the cells already placed in its rows (pushing them left to
make room, never reordering), and the best row is chosen by the resulting
displacement cost.

The insertion machinery is shared with MGL, restricted to the *rightmost*
gap of every row — that restriction is precisely the "strong and
unnecessary constraint" on cell order the paper criticizes, so the shared
core again isolates the evaluated difference.  The window extends from a
bounded distance left of the cell's GP x to the chip edge (bounding how
deep the Abacus collapse may reach, as practical implementations do).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.insertion import EvaluatedInsertion, Gap, InsertionContext
from repro.core.mgl import MGLegalizer
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.geometry import Rect
from repro.model.placement import Placement


class AbacusLegalizer:
    """GP-order-preserving legalizer built on the shared insertion core."""

    def __init__(self, design: Design, params: Optional[LegalizerParams] = None):
        design.validate()
        self.design = design
        if params is None:
            params = LegalizerParams(
                routability=False, use_matching=False, use_flow_opt=False
            )
        params.validate()
        self.params = params
        # The helper provides apply_insertion and shared config.
        self._mgl = MGLegalizer(design, params, guard=None)
        self.collapse_depth = 6 * params.window_width
        self.order_relaxations = 0

    def run(self) -> Placement:
        """Legalize in GP x order; returns the placement.

        Raises:
            LegalizationError: when some cell cannot be appended anywhere.
        """
        design = self.design
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        for cell in range(design.num_cells):
            if design.cells[cell].fixed:
                placement.move(cell, int(design.gp_x[cell]), int(design.gp_y[cell]))
                occupancy.add(cell)

        order = sorted(
            design.movable_cells(),
            key=lambda c: (design.gp_x[c], design.gp_y[c], c),
        )
        for cell in order:
            best = self._best_append(occupancy, cell)
            if best is None:
                # Dense designs can need the full-depth collapse.
                best = self._best_append(occupancy, cell, full_depth=True)
            if best is not None:
                self._mgl.apply_insertion(occupancy, cell, best)
                continue
            # Strict-order appending can dead-end when multi-row cells
            # couple compacted chains across rows; practical Abacus
            # variants relax the order for the stuck cell, as do we.
            self.order_relaxations += 1
            self._mgl.legalize_cell(occupancy, cell)
        return placement

    # ------------------------------------------------------------------

    def _best_append(
        self, occupancy: Occupancy, cell: int, full_depth: bool = False
    ) -> Optional[EvaluatedInsertion]:
        design = self.design
        depth = design.num_sites if full_depth else self.collapse_depth
        window = Rect(
            max(0.0, design.gp_x[cell] - depth),
            0,
            design.num_sites,
            design.num_rows,
        )
        context = InsertionContext(
            design, occupancy, cell, window,
            weight_of=self._mgl.weight_of,
            # Order preservation needs the true rightmost gap; never let
            # the nearest-to-GP gap cap drop it.
            max_gaps_per_row=1 << 30,
        )
        height = design.cell_type_of(cell).height
        best: Optional[EvaluatedInsertion] = None
        for bottom_row in context.candidate_rows():
            gaps: List[Gap] = []
            feasible = True
            for offset in range(height):
                row_gaps = context.gaps_in_row(bottom_row + offset)
                if not row_gaps:
                    feasible = False
                    break
                gaps.append(self._rightmost(row_gaps))
            if not feasible:
                continue
            if (
                best is not None
                and context.target_cost_lower_bound(bottom_row, tuple(gaps))
                > best.cost + self.params.prune_margin
            ):
                continue
            evaluated = context.evaluate(bottom_row, tuple(gaps))
            if evaluated is None:
                continue
            if best is None or evaluated.sort_key() < best.sort_key():
                best = evaluated
        return best

    @staticmethod
    def _rightmost(row_gaps: List[Gap]) -> Gap:
        """The gap after the last placed cell (order-preserving append)."""
        return max(row_gaps, key=lambda g: (g.left_bound, g.lo_rough))


def legalize_abacus(
    design: Design, params: Optional[LegalizerParams] = None
) -> Placement:
    """One-call ordered legalization (the [7] baseline of Table 2)."""
    return AbacusLegalizer(design, params).run()
