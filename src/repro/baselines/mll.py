"""MLL — multi-row local legalization (Chow, Pui, Young, DAC 2016 [12]).

The direct ancestor of MGL and the paper's closest comparison point.
The window machinery, insertion-point enumeration, and spreading are the
same; the one defining difference (paper §3.1, Fig. 3) is that MLL's
displacement curves measure local-cell movement from the cells'
**current** locations rather than their GP locations, so only curve types
A and B occur and displacement accumulates over the run.

Implementation-wise this is :class:`~repro.core.mgl.MGLegalizer` with
``reference="current"``; the reuse is intentional — it isolates exactly
the algorithmic delta the paper evaluates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement


class MLLLegalizer(MGLegalizer):
    """MGL's machinery with current-location displacement curves."""

    def __init__(self, design: Design, params: Optional[LegalizerParams] = None):
        if params is None:
            params = LegalizerParams(
                routability=False, use_matching=False, use_flow_opt=False
            )
        super().__init__(design, params, reference="current")


def legalize_mll(design: Design, params: Optional[LegalizerParams] = None) -> Placement:
    """One-call MLL legalization (the [12] baseline of Table 2)."""
    return MLLLegalizer(design, params).run()
