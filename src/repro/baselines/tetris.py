"""Greedy nearest-fit legalizer (Tetris family).

This is the reproduction's stand-in for the ICCAD-2017 contest champion
binary of Table 1: it produces a valid placement quickly — fence regions,
P/G parity, and blockages are honored as hard constraints — but it is
routability-blind (no edge-spacing fillers, no rail/IO avoidance), never
moves already-placed cells, and has no post-processing.  Exactly the
profile the champion shows in Table 1: competitive but larger
displacements and thousands of soft-constraint violations.

Each cell, processed large-first, lands on the free position nearest its
GP location: rows are scanned outward from the GP row, and within each
row the best free span for the cell's footprint is found among the
fence-matching segments.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.mgl import LegalizationError
from repro.core.occupancy import Occupancy
from repro.model.design import Design
from repro.model.placement import Placement


class TetrisLegalizer:
    """Greedy, non-spreading legalizer."""

    def __init__(self, design: Design):
        design.validate()
        self.design = design

    def run(self) -> Placement:
        """Legalize all movable cells; returns the placement.

        Raises:
            LegalizationError: when a cell finds no free spot anywhere in
                its fence region.
        """
        design = self.design
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        for cell in range(design.num_cells):
            if design.cells[cell].fixed:
                placement.move(cell, int(design.gp_x[cell]), int(design.gp_y[cell]))
                occupancy.add(cell)

        order = sorted(
            design.movable_cells(),
            key=lambda c: (
                -design.cell_type_of(c).height,
                -design.cell_type_of(c).width,
                design.gp_x[c],
                c,
            ),
        )
        for cell in order:
            spot = self._nearest_spot(occupancy, cell)
            if spot is None:
                raise LegalizationError(
                    f"tetris: no free spot for cell {cell} "
                    f"(fence {design.fence_of(cell)})"
                )
            placement.move(cell, spot[0], spot[1])
            occupancy.add(cell)
        return placement

    # ------------------------------------------------------------------

    def _nearest_spot(
        self, occupancy: Occupancy, cell: int
    ) -> Optional[Tuple[int, int]]:
        """Free position minimizing displacement, scanning rows outward."""
        design = self.design
        cell_type = design.cell_type_of(cell)
        gp_x, gp_y = design.gp_x[cell], design.gp_y[cell]
        x_unit = design.x_unit_rows

        rows = [
            row
            for row in range(design.num_rows - cell_type.height + 1)
            if design.row_parity_ok(cell, row)
        ]
        rows.sort(key=lambda r: (abs(r - gp_y), r))

        best: Optional[Tuple[float, int, int]] = None
        for row in rows:
            y_cost = abs(row - gp_y)
            if best is not None and y_cost >= best[0]:
                break  # Rows are sorted by |dy|; nothing closer remains.
            x = self._best_x_in_rows(occupancy, cell, row)
            if x is None:
                continue
            cost = y_cost + abs(x - gp_x) * x_unit
            candidate = (cost, x, row)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return None
        return best[1], best[2]

    def _best_x_in_rows(
        self, occupancy: Occupancy, cell: int, bottom_row: int
    ) -> Optional[int]:
        """Best free x for the cell's footprint starting at ``bottom_row``.

        Intersects the free gaps of all spanned rows (fence-matching
        segments only) and returns the feasible site nearest the GP x.
        """
        design = self.design
        cell_type = design.cell_type_of(cell)
        fence = design.fence_of(cell)
        gp_x = design.gp_x[cell]
        width = cell_type.width

        # Free intervals per row, then running intersection.
        spans: Optional[List[Tuple[int, int]]] = None
        for row in range(bottom_row, bottom_row + cell_type.height):
            row_spans: List[Tuple[int, int]] = []
            for segment in design.segments_in_row(row):
                if segment.fence_id != fence or segment.width < width:
                    continue
                cursor = segment.x_lo
                for other in occupancy.cells_in_range(
                    row, segment.x_lo, segment.x_hi
                ):
                    other_x = occupancy.placement.x[other]
                    if other_x - cursor >= width:
                        row_spans.append((cursor, other_x))
                    cursor = max(
                        cursor, other_x + design.cell_type_of(other).width
                    )
                if segment.x_hi - cursor >= width:
                    row_spans.append((cursor, segment.x_hi))
            if spans is None:
                spans = row_spans
            else:
                spans = _intersect_spans(spans, row_spans, width)
            if not spans:
                return None

        best_x: Optional[int] = None
        best_dist = math.inf
        for lo, hi in spans or ():
            x = int(min(max(round(gp_x), lo), hi - width))
            dist = abs(x - gp_x)
            if dist < best_dist:
                best_dist = dist
                best_x = x
        return best_x


def _intersect_spans(
    a: List[Tuple[int, int]], b: List[Tuple[int, int]], width: int
) -> List[Tuple[int, int]]:
    """Pairwise intersection of two sorted span lists, keeping >= width."""
    result: List[Tuple[int, int]] = []
    i = j = 0
    a = sorted(a)
    b = sorted(b)
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi - lo >= width:
            result.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return result


def legalize_tetris(design: Design) -> Placement:
    """One-call greedy legalization (the Table 1 baseline)."""
    return TetrisLegalizer(design).run()
