"""Prior-work legalizers used in the paper's comparisons.

* :mod:`repro.baselines.tetris` — greedy nearest-fit legalizer: fence-
  and parity-aware but routability-blind, with no cell spreading or
  post-processing.  Stands in for the ICCAD-2017 contest champion binary
  in Table 1 (whose violation profile — thousands of edge-spacing and
  pin violations, larger displacements — it matches by construction).
* :mod:`repro.baselines.mll` — MLL, Chow et al. DAC'16 [12]: identical
  window machinery to MGL but displacement measured from *current*
  positions, so errors accumulate (the paper's Fig. 3 contrast).
* :mod:`repro.baselines.abacus` — a Wang et al. ASPDAC'17 [7]-style
  ordered legalizer: honors the GP x-order (multi-row Abacus family).
* :mod:`repro.baselines.lcp` — a Chen et al. DAC'17 [9]-style flow:
  greedy seed plus quadratic-displacement refinement solved as an LCP by
  projected Gauss-Seidel under fixed row/order.

Each returns a legal placement for the same :class:`~repro.model.Design`
inputs as the main flow.
"""

from repro.baselines.abacus import AbacusLegalizer, legalize_abacus
from repro.baselines.lcp import LCPLegalizer, legalize_lcp
from repro.baselines.mll import MLLLegalizer, legalize_mll
from repro.baselines.tetris import TetrisLegalizer, legalize_tetris

__all__ = [
    "AbacusLegalizer",
    "LCPLegalizer",
    "MLLLegalizer",
    "TetrisLegalizer",
    "legalize_abacus",
    "legalize_lcp",
    "legalize_mll",
    "legalize_tetris",
]
