"""Routability-driven refinement hooks (paper §3.4).

The :class:`RoutabilityGuard` packages the three rail/IO interactions the
paper weaves into MGL:

* **horizontal rails** — a row whose P/G stripe would short a pin or
  block its access is not a valid insertion row (``row_ok``);
* **vertical rails** — when the curve optimum collides with a vertical
  stripe, nearby positions are examined until a least-cost clean site is
  found (``adjust_x``);
* **IO pins** — overlaps are allowed but penalized (``io_penalty_at``).

It also computes the violation-free *feasible range* ``[l_i, r_i]`` each
cell is confined to during the fixed-row-fixed-order optimization, which
is how stage 3 avoids creating new pin violations.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.geometry import Rect
from repro.model.technology import CellType


class _GuardCaches(threading.local):
    """Per-thread memo caches for the guard's pure queries.

    One :class:`RoutabilityGuard` is shared across the §3.5 scheduler's
    worker threads, and ``evaluate_insert`` must not write shared state.
    Every cached value is a pure function of its key, so per-thread
    dicts trade some re-computation for race-free memoization without
    changing any answer.
    """

    def __init__(self) -> None:
        self.row_ok: Dict[Tuple[str, int], bool] = {}
        self.x_blocked: Dict[Tuple[str, bool, int], bool] = {}
        self.io_pairs: Dict[
            Tuple[str, int], List[Tuple[float, float, float, float]]
        ] = {}
        # SoA mirrors for the vectorized guard path (repro.core.soa):
        # a per-(type, flip) boolean mask over every site, and the
        # io_pairs tuples transposed into four parallel float arrays.
        self.blocked_mask: Dict[Tuple[str, bool], npt.NDArray[np.bool_]] = {}
        self.io_arrays: Dict[
            Tuple[str, int], Optional[Tuple[npt.NDArray[np.float64], ...]]
        ] = {}


class RoutabilityGuard:
    """Cached rail/IO conflict queries for one design."""

    def __init__(self, design: Design, params: Optional[LegalizerParams] = None):
        self.design = design
        self.params = params or LegalizerParams()
        self._caches = _GuardCaches()
        # The x_blocked cache drops the row when every vertical stripe
        # runs the chip's full height (the standard grid does).
        chip_y = design.chip_rect_length_units.y_interval
        self._x_cacheable = all(
            rail.extent.lo <= chip_y.lo and rail.extent.hi >= chip_y.hi
            for rail in design.rails.rails
            if rail.orientation == "v"
        )
        # The adjust_x walk pattern [0, +1, -1, ..., +max, -max] as an
        # offset array — constant for the guard's lifetime.
        shifts = np.arange(1, self.params.guard_max_shift + 1, dtype=np.int64)
        deltas = np.empty(2 * shifts.size + 1, dtype=np.int64)
        deltas[0] = 0
        deltas[1::2] = shifts
        deltas[2::2] = -shifts
        self._walk_deltas = deltas

    # ------------------------------------------------------------------
    # Pin geometry
    # ------------------------------------------------------------------

    def _is_flipped(self, cell_type: CellType, row: int) -> bool:
        """Mirror odd-height cells on off-parity rows (P/G alignment)."""
        if cell_type.parity_constrained:
            return False
        return row % 2 != self.design.power_parity

    def pin_rects_at(
        self, cell_type: CellType, row: int, x: float
    ) -> List[Tuple[int, Rect]]:
        """(layer, rect) of each signal pin for a placement at ``(x, row)``."""
        design = self.design
        x_len = x * design.site_width
        y_len = row * design.row_height
        height_len = cell_type.height * design.row_height
        flipped = self._is_flipped(cell_type, row)
        rects: List[Tuple[int, Rect]] = []
        for pin in cell_type.pins:
            rect = pin.rect
            if flipped:
                rect = Rect(
                    rect.xlo, height_len - rect.yhi, rect.xhi, height_len - rect.ylo
                )
            rects.append((pin.layer, rect.translated(x_len, y_len)))
        return rects

    # ------------------------------------------------------------------
    # Horizontal rails: row validity
    # ------------------------------------------------------------------

    def row_ok(self, cell_type: CellType, row: int) -> bool:
        """False when a horizontal rail shorts/blocks a pin on this row.

        Horizontal stripes run the full chip width, so the conflict
        depends only on the cell type and its row (and flip) — cached.
        """
        if not cell_type.pins:
            return True
        key = (cell_type.name, row)
        cached = self._caches.row_ok.get(key)
        if cached is not None:
            return cached
        rails = self.design.rails
        ok = True
        for layer, rect in self.pin_rects_at(cell_type, row, 0.0):
            if rails.horizontal_blocked(layer, rect.ylo, rect.yhi):
                ok = False
                break
            if rails.horizontal_blocked(layer + 1, rect.ylo, rect.yhi):
                ok = False
                break
        self._caches.row_ok[key] = ok
        return ok

    # ------------------------------------------------------------------
    # Vertical rails and IO pins: x selection
    # ------------------------------------------------------------------

    def x_blocked(self, cell_type: CellType, row: int, x: int) -> bool:
        """True when a vertical rail shorts/blocks some pin at ``(x, row)``.

        Vertical stripes run the full chip height, so (given the flip
        state) the answer depends only on the cell type and x — cached.
        """
        if not cell_type.pins:
            return False
        key = (cell_type.name, self._is_flipped(cell_type, row), int(x))
        if self._x_cacheable:
            cached = self._caches.x_blocked.get(key)
            if cached is not None:
                return cached
        rails = self.design.rails
        blocked = False
        for layer, rect in self.pin_rects_at(cell_type, row, x):
            for rail in rails.rails:
                if rail.orientation != "v":
                    continue
                if rail.layer in (layer, layer + 1) and rail.overlaps_rect(rect):
                    blocked = True
                    break
            if blocked:
                break
        if self._x_cacheable:
            self._caches.x_blocked[key] = blocked
        return blocked

    def _io_pairs(
        self, cell_type: CellType, row: int
    ) -> List[Tuple[float, float, float, float]]:
        """(pin, IO pin) pairs that can overlap at ``row``, x-precomputed.

        The layer and y-overlap tests of :meth:`io_penalty_at` depend
        only on the cell type and row, so they are resolved once here;
        what remains per query is the x test on the surviving pairs,
        stored as ``(pin_xlo, pin_xhi, io_xlo, io_xhi)`` in length units.
        The x test applies the same "translate then compare" arithmetic
        as ``Rect.overlaps`` on ``rect.translated(x_len, y_len)``, so
        counts are bit-identical to the pairwise reference.
        """
        key = (cell_type.name, row)
        cached = self._caches.io_pairs.get(key)
        if cached is not None:
            return cached
        design = self.design
        y_len = row * design.row_height
        height_len = cell_type.height * design.row_height
        flipped = self._is_flipped(cell_type, row)
        pairs: List[Tuple[float, float, float, float]] = []
        for pin in cell_type.pins:
            rect = pin.rect
            if flipped:
                rect = Rect(
                    rect.xlo, height_len - rect.yhi, rect.xhi, height_len - rect.ylo
                )
            ylo = rect.ylo + y_len
            yhi = rect.yhi + y_len
            for io_pin in design.rails.io_pins:
                if io_pin.layer not in (pin.layer, pin.layer + 1):
                    continue
                if not (io_pin.rect.ylo < yhi and ylo < io_pin.rect.yhi):
                    continue
                pairs.append((rect.xlo, rect.xhi, io_pin.rect.xlo, io_pin.rect.xhi))
        self._caches.io_pairs[key] = pairs
        return pairs

    def io_penalty_at(self, cell_type: CellType, row: int, x: int) -> float:
        """Penalty for IO-pin overlaps of any pin at ``(x, row)``."""
        if not cell_type.pins:
            return 0.0
        pairs = self._io_pairs(cell_type, row)
        if not pairs:
            return 0.0
        x_len = x * self.design.site_width
        count = 0
        for pin_xlo, pin_xhi, io_xlo, io_xhi in pairs:
            if io_xlo < pin_xhi + x_len and pin_xlo + x_len < io_xhi:
                count += 1
        return count * self.params.io_penalty

    def adjust_x(
        self,
        cell_type: CellType,
        row: int,
        x_opt: int,
        lo: int,
        hi: int,
        cost_at: Callable[[float], float],
    ) -> Tuple[int, float]:
        """Pick the cheapest clean x near the curve optimum.

        Walks outward from ``x_opt`` (alternating sides, nearest first) up
        to ``guard_max_shift`` sites; among vertical-rail-clean candidates
        the one minimizing ``cost_at(x) + io_penalty`` wins.  When every
        candidate is blocked, the optimum is kept with ``blocked_penalty``
        added (the soft-constraint semantics of §2).
        """
        best_x: Optional[int] = None
        best_total = math.inf
        for offset in range(0, self.params.guard_max_shift + 1):
            for candidate in ((x_opt + offset, x_opt - offset) if offset else (x_opt,)):
                if candidate < lo or candidate > hi:
                    continue
                if self.x_blocked(cell_type, row, candidate):
                    continue
                total = cost_at(candidate) + self.io_penalty_at(cell_type, row, candidate)
                if total < best_total - 1e-12:
                    best_total = total
                    best_x = candidate
            # All remaining candidates are farther, hence costlier on a
            # convex-ish curve; but IO penalties are lumpy, so we scan the
            # full shift budget rather than early-exit.
        if best_x is None:
            penalty = self.params.blocked_penalty + self.io_penalty_at(
                cell_type, row, x_opt
            )
            return x_opt, penalty
        return best_x, best_total - cost_at(best_x)

    # ------------------------------------------------------------------
    # Vectorized guard path (repro.core.soa rail/blockage masks)
    # ------------------------------------------------------------------

    @property
    def x_mask_cacheable(self) -> bool:
        """Whether :meth:`site_blocked_mask` is available (full-height stripes)."""
        return self._x_cacheable

    def site_blocked_mask(
        self, cell_type: CellType, row: int
    ) -> Optional[npt.NDArray[np.bool_]]:
        """Per-site vertical-rail conflict mask for ``cell_type`` at ``row``.

        ``mask[x]`` equals :meth:`x_blocked` for every left-edge site of
        the chip; the mask depends only on the flip state when vertical
        stripes span the full chip height (the same condition under which
        ``x_blocked`` itself is cacheable) — otherwise None is returned
        and callers must stay on the scalar walk.
        """
        if not self._x_cacheable:
            return None
        key = (cell_type.name, self._is_flipped(cell_type, row))
        cached = self._caches.blocked_mask.get(key)
        if cached is not None:
            return cached
        mask = np.fromiter(
            (
                self.x_blocked(cell_type, row, x)
                for x in range(self.design.num_sites + 1)
            ),
            dtype=np.bool_,
            count=self.design.num_sites + 1,
        )
        self._caches.blocked_mask[key] = mask
        return mask

    def _io_pair_arrays(
        self, cell_type: CellType, row: int
    ) -> Optional[Tuple[npt.NDArray[np.float64], ...]]:
        """:meth:`_io_pairs` transposed to four parallel float arrays."""
        key = (cell_type.name, row)
        if key in self._caches.io_arrays:
            return self._caches.io_arrays[key]
        pairs = self._io_pairs(cell_type, row)
        arrays: Optional[Tuple[npt.NDArray[np.float64], ...]] = None
        if pairs:
            columns = np.asarray(pairs, dtype=np.float64).T
            arrays = (columns[0], columns[1], columns[2], columns[3])
        self._caches.io_arrays[key] = arrays
        return arrays

    def io_penalty_array(
        self, cell_type: CellType, row: int, xs: npt.NDArray[np.float64]
    ) -> npt.NDArray[np.float64]:
        """Vectorized :meth:`io_penalty_at` over many x positions.

        Performs the identical translate-then-compare arithmetic per
        position, so every entry is bit-equal to the scalar query.
        """
        if not cell_type.pins:
            return np.zeros(xs.shape, dtype=np.float64)
        arrays = self._io_pair_arrays(cell_type, row)
        if arrays is None:
            return np.zeros(xs.shape, dtype=np.float64)
        pin_xlo, pin_xhi, io_xlo, io_xhi = arrays
        x_len = xs * self.design.site_width
        overlap = (io_xlo[:, None] < pin_xhi[:, None] + x_len[None, :]) & (
            pin_xlo[:, None] + x_len[None, :] < io_xhi[:, None]
        )
        counts = overlap.sum(axis=0).astype(np.float64)
        return counts * self.params.io_penalty

    def adjust_x_vector(
        self,
        cell_type: CellType,
        row: int,
        x_opt: int,
        lo: int,
        hi: int,
        cost_at: Callable[[float], float],
        costs_at: Callable[[npt.NDArray[np.float64]], npt.NDArray[np.float64]],
    ) -> Tuple[int, float]:
        """Bit-identical :meth:`adjust_x` with batched probes.

        The candidate walk, blocked filter, penalty arithmetic, and the
        strict-improvement selection replay the scalar method exactly —
        only the cost/penalty probes are evaluated in one vectorized
        batch (``costs_at`` must be bit-equal to ``cost_at`` per point,
        which :meth:`repro.core.curves.CurveSet.values` guarantees).
        Falls back to :meth:`adjust_x` when the per-site mask is
        unavailable (partial-height vertical stripes).
        """
        mask = self.site_blocked_mask(cell_type, row)
        if mask is None and cell_type.pins:
            return self.adjust_x(cell_type, row, x_opt, lo, hi, cost_at)
        # The scalar walk in array form: in-range filter, then the
        # blocked filter, both preserving the nearest-first visit order.
        candidates = x_opt + self._walk_deltas
        keep = (candidates >= lo) & (candidates <= hi)
        if mask is not None:
            keep &= ~mask[candidates.clip(0, mask.size - 1)]
        candidates = candidates[keep]
        if candidates.size == 0:
            penalty = self.params.blocked_penalty + self.io_penalty_at(
                cell_type, row, x_opt
            )
            return x_opt, penalty
        points = candidates.astype(np.float64)
        costs = costs_at(points)
        if cell_type.pins and self._io_pair_arrays(cell_type, row) is not None:
            totals = (costs + self.io_penalty_array(cell_type, row, points)).tolist()
        else:
            totals = costs.tolist()
        best_index = 0
        best_total = math.inf
        for index, total in enumerate(totals):
            if total < best_total - 1e-12:
                best_total = total
                best_index = index
        return int(candidates[best_index]), best_total - float(costs[best_index])

    # ------------------------------------------------------------------
    # Stage-3 feasible ranges (C_L = C_R = C)
    # ------------------------------------------------------------------

    def feasible_range(
        self,
        cell_type: CellType,
        row: int,
        x: int,
        segment_lo: int,
        segment_hi: int,
    ) -> Tuple[int, int]:
        """Largest clean interval ``[l, r]`` of left-edge sites around ``x``.

        ``segment_lo``/``segment_hi`` bound the cell's span inside its row
        segment (``segment_hi`` already excludes the cell width).  The
        interval is grown site by site from the current position until a
        vertical-rail conflict (or the segment bound) is hit, so every
        position inside it is conflict-free — the restriction §3.4 imposes
        on the stage-3 MCF.
        """
        if not self.params.routability or not cell_type.pins:
            return segment_lo, segment_hi
        def conflicted(candidate: int) -> bool:
            # §3.4: the range is bounded by the P/G rails *or IO pins*.
            return self.x_blocked(cell_type, row, candidate) or (
                self.io_penalty_at(cell_type, row, candidate) > 0
            )

        if conflicted(x):
            # Already conflicting: do not let stage 3 make it worse; pin
            # the cell to its current position.
            return x, x
        limit = self.params.feasible_range_limit
        left = x
        while left > max(segment_lo, x - limit) and not conflicted(left - 1):
            left -= 1
        right = x
        while right < min(segment_hi, x + limit) and not conflicted(right + 1):
            right += 1
        return left, right
