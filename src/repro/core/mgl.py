"""Multi-row global legalization — MGL (paper §3.1, Algorithm 1).

Cells are legalized sequentially.  For each target cell a window around
its GP position is searched: all insertion points are enumerated, each is
costed through displacement curves measured **from GP positions** (the
defining difference from MLL), and the cheapest feasible one is applied,
spreading local cells aside.  The window grows geometrically whenever no
feasible insertion point exists.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from repro.core.insertion import EvaluatedInsertion, GapCache, InsertionContext
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.core.soa import SoAState
from repro.model.design import Design
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.obs.clock import monotonic
from repro.obs.metrics import BATCH_WIDTH_BUCKETS, EXPANSION_BUCKETS
from repro.obs.progress import NULL_PROGRESS, NullProgress
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanPayload

if TYPE_CHECKING:
    from repro.core.shard import ShardTopology
    from repro.perf import PerfRecorder


class LegalizationError(Exception):
    """Raised when a cell cannot be placed anywhere in its fence region."""


def evaluation_span_payload(
    evaluated: int,
    best: Optional[EvaluatedInsertion],
    *,
    reeval: bool = False,
    exhaustive: bool = False,
    duration: Optional[float] = None,
    worker: Optional[int] = None,
) -> SpanPayload:
    """The wire/trace form of one window evaluation (an ``evaluate`` span).

    Every structural attribute is a pure function of the evaluation
    inputs, so a payload built by a worker process and one built by the
    parent's in-process fallback for the same task are identical —
    which is what keeps :func:`repro.obs.tracer.structure_hash` stable
    across ``scheduler_workers`` values.  ``duration`` and ``worker``
    ride along as non-structural extras.
    """
    payload: SpanPayload = {
        "name": "evaluate",
        "attrs": {
            "evaluated": evaluated,
            "found": best is not None,
            "cost": best.cost if best is not None else None,
            "reeval": reeval,
            "exhaustive": exhaustive,
        },
        "children": [],
    }
    if duration is not None:
        payload["duration"] = duration
    if worker is not None:
        payload["worker"] = worker
    return payload


def height_weights(design: Design) -> Callable[[int], float]:
    """Per-cell weights ``n_i = 1 / |C_h|`` implementing Eq. 2."""
    counts: Dict[int, int] = {}
    for group_height, cells in design.cells_by_height().items():
        counts[group_height] = len(cells)

    def weight(cell: int) -> float:
        return 1.0 / counts[design.cell_type_of(cell).height]

    return weight


def mgl_cell_order(design: Design, params: LegalizerParams) -> List[int]:
    """Deterministic processing order of the movable cells.

    The default places tall/large cells first (they have the fewest
    feasible spots) and sweeps by GP x within equal footprints.
    """
    cells = design.movable_cells()
    if params.seed_order == "input":
        return cells
    if params.seed_order == "gp_x":
        return sorted(cells, key=lambda c: (design.gp_x[c], design.gp_y[c], c))
    # "height_area_x"
    def key(cell: int) -> Tuple[int, int, float, float, int]:
        cell_type = design.cell_type_of(cell)
        return (
            -cell_type.height,
            -(cell_type.height * cell_type.width),
            design.gp_x[cell],
            design.gp_y[cell],
            cell,
        )

    return sorted(cells, key=key)


def disp_so_far(occupancy: Occupancy) -> Callable[[], float]:
    """Deferred displacement-so-far for progress events.

    O(placed cells); only invoked for events that pass the emitter's
    throttle, so the per-cell cost on the hot loop is one closure
    allocation.  Fixed cells are pinned at their GP positions, so
    summing every placed cell equals summing the movable ones.
    """
    placement = occupancy.placement

    def total() -> float:
        return sum(
            placement.displacement(cell) for cell in occupancy.placed_cells
        )

    return total


class MGLegalizer:
    """Window-based sequential legalizer minimizing displacement from GP.

    Args:
        design: the problem instance (validated by the caller).
        params: tunables; see :class:`LegalizerParams`.
        guard: routability guard, built automatically when
            ``params.routability`` is set and the design has rails/pins.
        recorder: optional perf instrumentation, forwarded to the
            scheduler's parallel backend for per-worker timers.
        tracer: optional span tracer; the shared zero-overhead
            :data:`repro.obs.tracer.NULL_TRACER` when omitted.
        progress: optional streaming progress emitter; the shared
            :data:`repro.obs.progress.NULL_PROGRESS` when omitted.
            Events are observational only — placements are bit-identical
            with the emitter on or off.
    """

    def __init__(
        self,
        design: Design,
        params: Optional[LegalizerParams] = None,
        guard: Optional[RoutabilityGuard] = None,
        reference: str = "gp",
        recorder: Optional["PerfRecorder"] = None,
        tracer: Optional[NullTracer] = None,
        progress: Optional[NullProgress] = None,
    ):
        self.design = design
        self.params = params or LegalizerParams()
        self.params.validate()
        self.reference = reference
        self.recorder = recorder
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.progress = progress if progress is not None else NULL_PROGRESS
        if guard is None and self.params.routability:
            guard = RoutabilityGuard(design, self.params)
        self.guard = guard
        self.weight_of: Callable[[int], float] = (
            height_weights(design) if self.params.height_weighted else (lambda _c: 1.0)
        )
        self.stats: Dict[str, int] = {
            "insertions_evaluated": 0,
            "window_expansions": 0,
            "cells_placed": 0,
            "gap_cache_hits": 0,
            "gap_cache_misses": 0,
            # Scheduler counters: stay 0 on the plain sequential path
            # (scheduler_capacity == 1) so profile reports always carry
            # the keys (see `repro legalize --profile`).
            "scheduler_batches": 0,
            "scheduler_reevaluations": 0,
        }
        # Shared per-row gap cache for the serial evaluation paths; the
        # scheduler's thread pool bypasses it (evaluate_insert stays pure).
        # Only the scheduler's re-evaluation of unchanged rows can re-hit
        # an entry now that contexts memoize their own gap lists (every
        # other profile component — window, GP x — changes between
        # evaluate_insert calls), so population is gated on
        # scheduler_capacity; see docs/PERFORMANCE.md ("GapCache
        # population policy").
        self.gap_cache: Optional[GapCache] = (
            GapCache()
            if self.params.use_gap_cache and self.params.scheduler_capacity > 1
            else None
        )
        # Shared SoA mirror for the vector evaluation backend, rebuilt
        # when the target occupancy changes; see :meth:`soa_for`.
        self._soa: Optional[SoAState] = None
        #: The row-band partition of the last sharded run (params.shards
        #: > 1); None on the unsharded paths.  See repro.core.shard.
        self.shard_topology: Optional["ShardTopology"] = None

    # ------------------------------------------------------------------

    def initial_window(self, cell: int, scale: float = 1.0) -> Rect:
        """The window around the cell's GP position at a given scale.

        For cells assigned to an explicit fence whose GP lies outside it,
        the window center is clamped into the fence's bounding box so the
        search starts where placement is possible at all.
        """
        design = self.design
        cell_type = design.cell_type_of(cell)
        cx = design.gp_x[cell] + cell_type.width / 2.0
        cy = design.gp_y[cell] + cell_type.height / 2.0
        fence_id = design.fence_of(cell)
        if fence_id != 0:
            box = design.fence_region(fence_id).bounding_box
            cx = min(max(cx, box.xlo), box.xhi)
            cy = min(max(cy, box.ylo), box.yhi)
        half_w = max(self.params.window_width * scale, cell_type.width + 2) / 2.0
        half_h = max(self.params.window_height * scale, cell_type.height + 2) / 2.0
        chip = design.chip_rect
        return Rect(
            max(chip.xlo, cx - half_w),
            max(chip.ylo, cy - half_h),
            min(chip.xhi, cx + half_w),
            min(chip.yhi, cy + half_h),
        )

    def soa_for(self, occupancy: Occupancy) -> Optional[SoAState]:
        """The shared SoA mirror of ``occupancy`` (None on the scalar backend).

        Memoized on the legalizer; the memo write only happens when the
        occupancy identity changes (once per run in practice), so
        concurrent *readers* — the scheduler's thread pool after its
        serial priming call — never race it.  The mirror's per-row
        snapshots are thread-local and version-checked, so sharing one
        instance across evaluations is safe and is exactly what lets
        batch members reuse each other's row snapshots.
        """
        if self.params.eval_backend != "vector":
            return None
        soa = self._soa
        if (
            soa is None
            or soa.occupancy is not occupancy
            or soa.num_cells != self.design.num_cells
        ):
            soa = SoAState(self.design, occupancy)
            self._soa = soa
        return soa

    def evaluate_insert(
        self,
        occupancy: Occupancy,
        cell: int,
        window: Rect,
        exhaustive: bool = False,
        cache: Optional[GapCache] = None,
        soa: Optional[SoAState] = None,
    ) -> Tuple[Optional[EvaluatedInsertion], int]:
        """Best feasible insertion of ``cell`` within ``window`` (unapplied).

        Returns the best evaluated insertion (or None) plus the number of
        insertion points evaluated.  This is the *pure* evaluation path:
        it mutates neither the legalizer nor the occupancy, which is what
        makes submitting it to the scheduler's thread pool safe (§3.5).
        Stats aggregation lives in :meth:`try_insert`, which also passes
        the legalizer's shared gap cache; pool submissions must leave
        ``cache`` as None so no shared state is written.

        The winner is defined order-independently: walk candidates by
        ``(lower bound, enumeration ordinal)``, stop once the bound
        exceeds the incumbent cost plus ``prune_margin``, and keep the
        minimum ``(cost, y, x, ordinal)``.  ``candidate_order=best_first``
        computes this lazily through a heap with row-level short-circuits
        (fast); ``linear`` evaluates every enumerated candidate and then
        applies the identical selection rule (slow, for validation) — the
        two are provably placement-identical (see
        tests/test_perf_equivalence.py).

        ``exhaustive`` lifts the per-row gap and combination caps and
        drops the routability guard — used by the final chip-window
        fallback, where completeness matters more than speed: routability
        is a *soft* constraint (§2), so when the only rows a fence allows
        are rail-conflicted, the cell is placed there anyway and the
        violations are simply counted.

        ``soa`` is the shared SoA mirror for the vector backend.  It is
        deliberately *not* resolved here — :meth:`soa_for` memoizes on
        the legalizer, and this method is contract-pure (repro-lint
        C002) so the scheduler may fan it out to a thread pool.
        Callers resolve it serially and pass it in (see
        :meth:`evaluate_and_count`, :meth:`evaluate_insert_many`);
        leaving it None simply runs the scalar backend, which is
        result-identical.
        """
        context = InsertionContext(
            self.design,
            occupancy,
            cell,
            window,
            weight_of=self.weight_of,
            guard=None if exhaustive else self.guard,
            reference=self.reference,
            max_gaps_per_row=(
                1 << 30 if exhaustive else self.params.max_gaps_per_row
            ),
            gap_cache=cache,
            soa=soa,
        )
        margin = self.params.prune_margin
        max_points = (
            1 << 30 if exhaustive else self.params.max_insertion_points
        )
        if self.params.candidate_order == "linear":
            return context.evaluate_linear(max_points, margin)
        return context.evaluate_best_first(max_points, margin)

    def evaluate_insert_many(
        self,
        occupancy: Occupancy,
        tasks: Sequence[Tuple[int, Rect]],
        exhaustive: bool = False,
        cache: Optional[GapCache] = None,
    ) -> List[Tuple[Optional[EvaluatedInsertion], int]]:
        """Batched :meth:`evaluate_insert` over ``(cell, window)`` tasks.

        All tasks are evaluated against the same frozen occupancy and —
        on the vector backend — share the legalizer's SoA mirror, so row
        snapshots built for one window are reused by every later batch
        member touching the same rows.  Results are element-for-element
        exactly ``evaluate_insert(occupancy, cell, window)``; the batch
        width lands in the ``mgl.batch_width`` histogram, which the
        capacity autotuner reads (see repro.obs.autotune).
        """
        soa = self.soa_for(occupancy)
        if self.recorder is not None and tasks:
            self.recorder.registry.observe(
                "mgl.batch_width", float(len(tasks)), BATCH_WIDTH_BUCKETS
            )
        return [
            self.evaluate_insert(
                occupancy, cell, window,
                exhaustive=exhaustive, cache=cache, soa=soa,
            )
            for cell, window in tasks
        ]

    def try_insert(
        self,
        occupancy: Occupancy,
        cell: int,
        window: Rect,
        exhaustive: bool = False,
    ) -> Optional[EvaluatedInsertion]:
        """Serial-path wrapper of :meth:`evaluate_insert` that records stats.

        Never submit this to a thread pool — the stats update is a
        read-modify-write on shared state (repro-lint C001), and the gap
        cache is not thread-safe; submit :meth:`evaluate_insert` (with
        its default ``cache=None``) and aggregate the counts serially
        instead.
        """
        best, _evaluated_points = self.evaluate_and_count(
            occupancy, cell, window, exhaustive=exhaustive
        )
        return best

    def evaluate_and_count(
        self,
        occupancy: Occupancy,
        cell: int,
        window: Rect,
        exhaustive: bool = False,
    ) -> Tuple[Optional[EvaluatedInsertion], int]:
        """:meth:`try_insert`'s computation, also returning the point count.

        The count feeds ``evaluate`` span payloads; callers that don't
        need it use :meth:`try_insert` (which tests may monkeypatch as
        the serial-evaluation seam).
        """
        best, evaluated_points = self.evaluate_insert(
            occupancy, cell, window, exhaustive=exhaustive,
            cache=self.gap_cache, soa=self.soa_for(occupancy),
        )
        self.stats["insertions_evaluated"] += evaluated_points
        return best, evaluated_points

    def traced_evaluate(
        self,
        occupancy: Occupancy,
        cell: int,
        window: Rect,
        exhaustive: bool = False,
        reeval: bool = False,
    ) -> Optional[EvaluatedInsertion]:
        """Serial evaluation that records an ``evaluate`` span when tracing.

        With the :class:`NullTracer` this is exactly :meth:`try_insert`
        (including the monkeypatch seam); with a recording tracer it
        attaches the same payload a worker process would have produced
        for this evaluation, keeping the trace structure worker-count
        independent.  Cells dropped by the tracer's sampling policy take
        the untraced path — the keep/drop decision is cell-based, so it
        too is worker-count independent.
        """
        tracer = self.tracer
        if not tracer.enabled or not tracer.sampled(cell):
            return self.try_insert(occupancy, cell, window, exhaustive=exhaustive)
        started = monotonic()
        best, evaluated_points = self.evaluate_and_count(
            occupancy, cell, window, exhaustive=exhaustive
        )
        tracer.attach_payloads([
            evaluation_span_payload(
                evaluated_points,
                best,
                reeval=reeval,
                exhaustive=exhaustive,
                duration=monotonic() - started,
            )
        ])
        return best

    def finish_window_span(
        self,
        span: Span,
        cell: int,
        window: Rect,
        expansions: int,
        insertion: EvaluatedInsertion,
        placement: Placement,
        exhaustive: bool = False,
    ) -> None:
        """Stamp a completed ``window`` span with its structural attrs.

        All values are pure functions of the legalization inputs (the
        resulting displacement comes from the just-applied placement),
        so they are safe under the structure-hash determinism contract.
        Sampled-out cells hand in the shared null span, whose
        ``recording`` flag short-circuits the attribute computation.
        """
        if not span.recording:
            return
        span.set(
            cell=cell,
            expansions=expansions,
            window_xlo=window.xlo,
            window_ylo=window.ylo,
            window_xhi=window.xhi,
            window_yhi=window.yhi,
            x=insertion.x,
            y=insertion.y,
            cost=insertion.cost,
            disp=placement.displacement(cell),
            exhaustive=exhaustive,
        )

    def observe_expansions(self, depth: int) -> None:
        """Record one cell's window-expansion depth in the metrics registry."""
        if self.recorder is not None:
            self.recorder.registry.observe(
                "mgl.expansion_depth", float(depth), EXPANSION_BUCKETS
            )

    def apply_insertion(
        self, occupancy: Occupancy, cell: int, insertion: EvaluatedInsertion
    ) -> None:
        """Spread local cells and register the target at its new position."""
        placement = occupancy.placement
        right_moves = sorted(
            (move for move in insertion.moves if move[1] > placement.x[move[0]]),
            key=lambda move: -placement.x[move[0]],
        )
        left_moves = sorted(
            (move for move in insertion.moves if move[1] < placement.x[move[0]]),
            key=lambda move: placement.x[move[0]],
        )
        for moved_cell, new_x in right_moves:
            occupancy.update_x(moved_cell, new_x)
        for moved_cell, new_x in left_moves:
            occupancy.update_x(moved_cell, new_x)
        placement.move(cell, insertion.x, insertion.y)
        occupancy.add(cell)
        self.stats["cells_placed"] += 1

    def legalize_cell(self, occupancy: Occupancy, cell: int) -> EvaluatedInsertion:
        """Place one cell, expanding the window on failure.

        Raises:
            LegalizationError: when no feasible insertion exists even at
                the final (chip-sized) window.
        """
        scale = 1.0
        with self.tracer.cell_span("window", cell) as span:
            for attempt in range(self.params.max_expansions):
                window = self.initial_window(cell, scale)
                insertion = self.traced_evaluate(occupancy, cell, window)
                if insertion is not None:
                    self.apply_insertion(occupancy, cell, insertion)
                    self.finish_window_span(
                        span, cell, window, attempt, insertion,
                        occupancy.placement,
                    )
                    self.observe_expansions(attempt)
                    return insertion
                self.stats["window_expansions"] += 1
                scale *= self.params.window_expand
            # Last resort: the whole chip as the window, with all caps
            # lifted.
            insertion = self.traced_evaluate(
                occupancy, cell, self.design.chip_rect, exhaustive=True
            )
            if insertion is not None:
                self.apply_insertion(occupancy, cell, insertion)
                self.finish_window_span(
                    span, cell, self.design.chip_rect,
                    self.params.max_expansions, insertion,
                    occupancy.placement, exhaustive=True,
                )
                self.observe_expansions(self.params.max_expansions)
                return insertion
        raise LegalizationError(
            f"cell {cell} ({self.design.cells[cell].name!r}) cannot be placed; "
            f"fence {self.design.fence_of(cell)} appears over-full"
        )

    def run(self, placement: Optional[Placement] = None) -> Placement:
        """Legalize every movable cell; returns the placement.

        A fresh placement is created unless one is supplied (whose
        positions are overwritten for movable cells; fixed cells are
        pinned at their GP positions).
        """
        design = self.design
        if placement is None:
            placement = Placement(design)
        occupancy = Occupancy(design, placement)
        for cell in range(design.num_cells):
            if design.cells[cell].fixed:
                placement.move(cell, int(design.gp_x[cell]), int(design.gp_y[cell]))
                occupancy.add(cell)
        # Register the fixed cell order with the tracer's sampling
        # policy before any per-cell span opens; the sampled set is a
        # pure function of this order, never of the execution path
        # (serial / scheduler / sharded) chosen below.
        order = mgl_cell_order(design, self.params)
        self.tracer.set_cell_population(order)
        if self.params.shards > 1:
            from repro.core.shard import run_sharded

            run_sharded(self, occupancy)
        elif self.params.scheduler_capacity > 1:
            from repro.core.scheduler import WindowScheduler

            WindowScheduler(self, occupancy).run()
        else:
            total = len(order)
            progress = self.progress
            progress.phase("mgl_serial", cells=total)
            for placed, cell in enumerate(order, start=1):
                self.legalize_cell(occupancy, cell)
                progress.cells(
                    placed, total, disp=disp_so_far(occupancy),
                    window_expansions=self.stats["window_expansions"],
                )
        if self.gap_cache is not None:
            self.stats["gap_cache_hits"] = self.gap_cache.hits
            self.stats["gap_cache_misses"] = self.gap_cache.misses
        return placement
