"""Insertion-point enumeration and evaluation inside a window (§3.1).

Placing a target cell of height ``h`` means choosing, in ``h`` consecutive
rows, a *gap* between already-placed cells in each row — an *insertion
point* — plus an x position.  Local cells (those lying completely inside
the window) may be pushed aside; everything else is a wall.

The evaluation is exact for multi-row local cells: pushes propagate
through a neighbor DAG across **all** rows a pushed cell spans, with
longest-path offsets, so a combination is only deemed feasible when every
transitive push fits, and the displacement curves (types A-D) receive the
exact chain offsets.  Edge-spacing rules enter the offsets as mandatory
gaps ("fillers", §3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.curves import CurveSet, DisplacementCurve
from repro.core.occupancy import Occupancy
from repro.core.refine import RoutabilityGuard
from repro.core.soa import SoAState, VectorEvaluator
from repro.model.design import Design
from repro.model.geometry import Rect
from repro.model.row import Segment


@dataclass(frozen=True)
class Gap:
    """A candidate gap in one row of an insertion point.

    ``left_cell``/``right_cell`` are the *local* cells bounding the gap
    (None at a wall).  ``left_bound``/``right_bound`` are the wall x
    coordinates when there is no local cell on that side: either a segment
    boundary or the edge of a non-local cell (whose id is kept in
    ``left_wall_cell``/``right_wall_cell`` for edge-spacing rules).
    ``lo_rough``/``hi_rough`` bound the achievable target x using per-row
    compression only; the exact bound is computed during evaluation.
    """

    row: int
    segment: Segment
    left_cell: Optional[int]
    right_cell: Optional[int]
    left_bound: int
    right_bound: int
    left_wall_cell: Optional[int]
    right_wall_cell: Optional[int]
    lo_rough: float
    hi_rough: float


@dataclass
class EvaluatedInsertion:
    """A feasible, costed placement choice for the target cell."""

    x: int
    y: int
    cost: float
    moves: List[Tuple[int, int]]  # (local cell, new x) spread moves
    gaps: Tuple[Gap, ...] = ()

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.cost, self.y, self.x)


class GapCache:
    """Memoized per-row gap enumeration, invalidated by occupancy versions.

    Entries are keyed ``(row, profile)`` where the *profile* captures every
    target-side input of :meth:`InsertionContext.gaps_in_row` — cell type,
    fence, GP x, window rectangle, and the per-row gap cap — while the
    occupancy side is covered by :meth:`Occupancy.row_version`: the
    occupancy bumps a row's version whenever ``add``/``update_x``/``remove``
    touches a cell spanning that row, which is exactly the set of mutations
    that can change the row's gap list.  A cached entry is served only
    while its recorded version is still current, so cached and uncached
    enumeration are indistinguishable (tests/test_perf_equivalence.py).

    The main reuse is the h-fold bottom-row overlap of multi-row targets
    (row ``r`` is re-enumerated for bottom rows ``r-h+1 .. r``) and the
    §3.5 scheduler's re-evaluation of unchanged windows.  The cache is
    bound to one occupancy at a time; a lookup against a different
    occupancy object clears and rebinds it.  Returned lists are shared —
    callers must treat them as immutable.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._occupancy: Optional[Occupancy] = None
        self._entries: Dict[
            Tuple[int, Tuple[object, ...]], Tuple[int, List[Gap]]
        ] = {}

    def gaps_in_row(self, context: "InsertionContext", row: int) -> List[Gap]:
        """Cached equivalent of ``context._compute_gaps_in_row(row)``."""
        occupancy = context.occupancy
        if occupancy is not self._occupancy:
            self._entries.clear()
            self._occupancy = occupancy
        version = occupancy.row_version(row)
        key = (row, context.profile)
        entry = self._entries.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        gaps = context._compute_gaps_in_row(row)
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = (version, gaps)
        return gaps

    def clear(self) -> None:
        self._entries.clear()
        self._occupancy = None


class InsertionContext:
    """Shared state for enumerating/evaluating insertions of one target.

    Args:
        design: the design.
        occupancy: current occupancy (target not yet registered).
        target: target cell index.
        window: window rectangle in site/row units.
        weight_of: displacement weight per cell (row-height units); the
            default weighs every cell equally.
        guard: optional routability guard (see
            :class:`repro.core.refine.RoutabilityGuard`); filters rows with
            horizontal-rail conflicts and steers x away from vertical
            rails / IO pins.
        reference: ``"gp"`` measures local-cell displacement from GP
            positions (MGL, the paper's method); ``"current"`` measures
            from the cells' current positions (MLL [12], reproduced as a
            baseline) — this collapses curve types C/D back into A/B.
        gap_cache: optional shared :class:`GapCache`; per-row gap lists
            are looked up there instead of recomputed.  Must only be
            shared between contexts querying the same occupancy from a
            single thread (the scheduler's thread-pool path passes None).
        soa: optional shared :class:`repro.core.soa.SoAState` mirror of
            the same occupancy.  When given, :meth:`evaluate` and
            :meth:`target_cost_lower_bound` route through the
            vectorized fast path (``eval_backend=vector``); results are
            bit-identical to the scalar path, which remains the oracle
            (tests/test_soa_equivalence.py).
    """

    def __init__(
        self,
        design: Design,
        occupancy: Occupancy,
        target: int,
        window: Rect,
        weight_of: Optional[Callable[[int], float]] = None,
        guard: Optional[RoutabilityGuard] = None,
        reference: str = "gp",
        max_gaps_per_row: int = 12,
        gap_cache: Optional[GapCache] = None,
        soa: Optional[SoAState] = None,
    ):
        if reference not in ("gp", "current"):
            raise ValueError(f"unknown displacement reference {reference!r}")
        self.design = design
        self.occupancy = occupancy
        self.target = target
        self.window = window
        self.weight_of: Callable[[int], float] = weight_of or (lambda _cell: 1.0)
        self.guard = guard
        self.reference = reference
        self.max_gaps_per_row = max_gaps_per_row
        self.gap_cache = gap_cache

        self.target_type = design.cell_type_of(target)
        self.fence = design.fence_of(target)
        self.gp_x = design.gp_x[target]
        self.gp_y = design.gp_y[target]
        self.x_unit = design.x_unit_rows
        #: Everything (besides the occupancy) that a row's gap list depends
        #: on; two contexts with equal profiles enumerate identical gaps.
        self.profile: Tuple[object, ...] = (
            self.target_type.name,
            self.fence,
            self.gp_x,
            window,
            max_gaps_per_row,
        )
        self._widths = design.cell_widths
        self._heights = design.cell_heights
        self._local_cache: Dict[int, bool] = {}
        self._gap_cache: Dict[Tuple[int, int], int] = {}
        # Per-(cell, side) segment-neighbor info; the occupancy is frozen
        # for the context's lifetime, and push sets of different insertion
        # points overlap heavily, so this is shared across evaluations.
        self._neighbor_cache: Dict[
            Tuple[int, int], List[Tuple[int, Optional[int], Optional[Segment]]]
        ] = {}
        # Per-row gap lists, memoized for the context's lifetime: the
        # occupancy is frozen while the context exists, so re-enumeration
        # (multi-row targets revisit row r for bottom rows r-h+1..r) can
        # never observe a different list.  The memo also pins the Gap
        # object identities, which the vector backend's per-row bound
        # tables key on.
        self._row_gaps: Dict[int, List[Gap]] = {}
        self._vector: Optional[VectorEvaluator] = (
            VectorEvaluator(self, soa)
            if soa is not None and soa.occupancy is occupancy
            else None
        )

    # ------------------------------------------------------------------
    # Locality and spacing helpers
    # ------------------------------------------------------------------

    def is_local(self, cell: int) -> bool:
        """Local cells lie completely inside the window and are movable."""
        cached = self._local_cache.get(cell)
        if cached is not None:
            return cached
        if self.design.cells[cell].fixed:
            result = False
        else:
            # Inlined window.contains_rect(placement.rect(cell)): cell
            # rects are never empty, so the bounds test alone decides.
            placement = self.occupancy.placement
            x = placement.x[cell]
            y = placement.y[cell]
            window = self.window
            result = (
                window.xlo <= x
                and x + self._widths[cell] <= window.xhi
                and window.ylo <= y
                and y + self._heights[cell] <= window.yhi
            )
        self._local_cache[cell] = result
        return result

    def edge_gap(self, left_cell: int, right_cell: int) -> int:
        """Required filler sites between two cells (-1 means the target)."""
        key = (left_cell, right_cell)
        cached = self._gap_cache.get(key)
        if cached is not None:
            return cached
        table = self.design.technology.edge_spacing
        left_type = (
            self.target_type if left_cell == -1
            else self.design.cell_type_of(left_cell)
        )
        right_type = (
            self.target_type if right_cell == -1
            else self.design.cell_type_of(right_cell)
        )
        gap = table.spacing(left_type.right_edge, right_type.left_edge)
        self._gap_cache[key] = gap
        return gap

    def cell_width(self, cell: int) -> int:
        return self._widths[cell]

    # ------------------------------------------------------------------
    # Gap enumeration
    # ------------------------------------------------------------------

    def candidate_rows(self) -> List[int]:
        """Bottom rows to try, nearest to the GP row first."""
        height = self.target_type.height
        lo = max(0, int(math.floor(self.window.ylo)))
        hi = min(self.design.num_rows - height, int(math.ceil(self.window.yhi)) - height)
        rows = []
        for row in range(lo, hi + 1):
            if not self.design.row_parity_ok(self.target, row):
                continue
            if self.guard is not None and not self.guard.row_ok(
                self.target_type, row
            ):
                continue
            rows.append(row)
        rows.sort(key=lambda r: (abs(r - self.gp_y), r))
        return rows

    def gaps_in_row(self, row: int) -> List[Gap]:
        """Candidate gaps of one row, within fence-matching segments.

        At most ``max_gaps_per_row`` gaps are kept, preferring those whose
        achievable x-range is nearest the target's GP x; distant gaps are
        dominated in cost and only inflate the combination search.

        Memoized on the context (the occupancy is frozen for its
        lifetime), and served from :attr:`gap_cache` — which persists
        *across* contexts — on the first miss when one is attached.
        Returned lists are shared either way and must not be mutated.
        """
        gaps = self._row_gaps.get(row)
        if gaps is None:
            if self.gap_cache is not None:
                gaps = self.gap_cache.gaps_in_row(self, row)
            else:
                gaps = self._compute_gaps_in_row(row)
            self._row_gaps[row] = gaps
        return gaps

    def _compute_gaps_in_row(self, row: int) -> List[Gap]:
        gaps: List[Gap] = []
        vector = self._vector
        for segment in self.design.segments_in_row(row):
            if segment.fence_id != self.fence:
                continue
            if segment.x_hi <= self.window.xlo or segment.x_lo >= self.window.xhi:
                continue
            if segment.width < self.target_type.width:
                continue
            if vector is not None:
                gaps.extend(vector.gaps_in_segment(row, segment))
            else:
                gaps.extend(self._gaps_in_segment(row, segment))
        if len(gaps) > self.max_gaps_per_row:
            gaps.sort(
                key=lambda g: max(
                    0.0, g.lo_rough - self.gp_x, self.gp_x - g.hi_rough
                )
            )
            gaps = gaps[: self.max_gaps_per_row]
        return gaps

    def _gaps_in_segment(self, row: int, segment: Segment) -> List[Gap]:
        """Gaps of every wall-separated run of local cells in the segment.

        Non-local cells (fixed, or poking out of the window) split the
        segment into independent runs; each run contributes its own gap
        list, bounded by the adjacent walls (or segment ends).
        """
        occupancy = self.occupancy
        placement = occupancy.placement
        cells = occupancy.cells_in_range(row, segment.x_lo, segment.x_hi)

        runs: List[Tuple[int, Optional[int], List[int], int, Optional[int]]] = []
        # Edge rules also apply across segment (fence) boundaries, where
        # sites are contiguous: a cell just beyond the boundary pushes the
        # usable bound inward by its required gap.
        left_bound = segment.x_lo
        outside_left = occupancy.left_neighbor(row, segment.x_lo)
        if outside_left is not None:
            outside_end = (
                placement.x[outside_left] + self.cell_width(outside_left)
            )
            # Unconditional: the rule reaches across the boundary even
            # when the outside cell stops short of it (no-op when it is
            # further away than the required gap).
            left_bound = max(
                left_bound, outside_end + self.edge_gap(outside_left, -1)
            )
        right_cap = segment.x_hi
        outside_right = occupancy.right_neighbor(row, segment.x_hi)
        if outside_right is not None:
            outside_x = placement.x[outside_right]
            right_cap = min(
                right_cap, outside_x - self.edge_gap(-1, outside_right)
            )
        left_wall_cell: Optional[int] = None
        local_run: List[int] = []
        for cell in cells:
            if self.is_local(cell):
                local_run.append(cell)
                continue
            runs.append(
                (left_bound, left_wall_cell, local_run, placement.x[cell], cell)
            )
            left_bound = placement.x[cell] + self.cell_width(cell)
            left_wall_cell = cell
            local_run = []
        runs.append((left_bound, left_wall_cell, local_run, right_cap, None))

        gaps: List[Gap] = []
        for run in runs:
            run_lo, lwall, run_cells, run_hi, rwall = run
            if run_hi - run_lo < self.target_type.width:
                continue
            # Skip runs that cannot intersect the window horizontally (the
            # target is searched inside the window; pushes may still exit).
            if run_hi <= self.window.xlo or run_lo >= self.window.xhi:
                continue
            entities: List[Optional[int]] = [None] + run_cells + [None]
            for index in range(len(entities) - 1):
                gap = self._make_gap(
                    row,
                    segment,
                    entities[index],
                    entities[index + 1],
                    run_lo,
                    run_hi,
                    lwall,
                    rwall,
                    run_cells,
                    index,
                )
                if gap is not None:
                    gaps.append(gap)
        return gaps

    def _make_gap(
        self,
        row: int,
        segment: Segment,
        left_cell: Optional[int],
        right_cell: Optional[int],
        left_bound: int,
        right_bound: int,
        left_wall_cell: Optional[int],
        right_wall_cell: Optional[int],
        local_run: List[int],
        gap_index: int,
    ) -> Optional[Gap]:
        """Build one gap with rough per-row compression bounds."""
        width = self.target_type.width

        # Leftmost achievable target x: compress everything left of the gap.
        position = float(left_bound)
        previous: Optional[int] = left_wall_cell
        for cell in local_run[:gap_index]:
            if previous is not None:
                position += self.edge_gap(previous, cell)
            position += self.cell_width(cell)
            previous = cell
        lo_rough = position + (self.edge_gap(previous, -1) if previous is not None else 0)

        # Rightmost achievable: compress everything right of the gap.
        position = float(right_bound)
        previous = right_wall_cell
        for cell in reversed(local_run[gap_index:]):
            if previous is not None:
                position -= self.edge_gap(cell, previous)
            position -= self.cell_width(cell)
            previous = cell
        hi_rough = position - width - (
            self.edge_gap(-1, previous) if previous is not None else 0
        )

        if lo_rough > hi_rough:
            return None
        return Gap(
            row=row,
            segment=segment,
            left_cell=left_cell,
            right_cell=right_cell,
            left_bound=left_bound,
            right_bound=right_bound,
            left_wall_cell=left_wall_cell,
            right_wall_cell=right_wall_cell,
            lo_rough=lo_rough,
            hi_rough=hi_rough,
        )

    def enumerate_insertion_points(
        self, max_points_per_row_set: int = 128
    ) -> Iterator[Tuple[int, Tuple[Gap, ...]]]:
        """Yield ``(bottom_row, gaps)`` combinations, pruned by rough bounds.

        For multi-row targets the per-row gap choices are combined by a
        depth-first product that abandons any branch whose rough x-ranges
        already fail to intersect; at most ``max_points_per_row_set``
        combinations are yielded per bottom row.
        """
        for bottom_row in self.candidate_rows():
            for gaps in self.row_combinations(bottom_row, max_points_per_row_set):
                yield bottom_row, gaps

    def row_combinations(
        self, bottom_row: int, max_points: int = 128
    ) -> Iterator[Tuple[Gap, ...]]:
        """The per-row-gap combinations of one bottom row (see above)."""
        height = self.target_type.height
        per_row = [self.gaps_in_row(bottom_row + i) for i in range(height)]
        if any(not gaps for gaps in per_row):
            return
        # Try gaps nearest the GP x first (stack => reverse order).  Each
        # row is sorted once, up front; the DFS below revisits a depth for
        # every partial combination, and the order never changes.
        per_row_desc = [
            sorted(
                gaps,
                key=lambda g: abs(
                    (g.lo_rough + g.hi_rough) / 2.0 - self.gp_x
                ),
                reverse=True,
            )
            for gaps in per_row
        ]
        yielded = 0
        stack: List[Tuple[int, Tuple[Gap, ...], float, float]] = [
            (0, (), -math.inf, math.inf)
        ]
        while stack and yielded < max_points:
            depth, chosen, lo, hi = stack.pop()
            if depth == height:
                yield chosen
                yielded += 1
                continue
            for gap in per_row_desc[depth]:
                new_lo = max(lo, gap.lo_rough)
                new_hi = min(hi, gap.hi_rough)
                if new_lo <= new_hi:
                    stack.append((depth + 1, chosen + (gap,), new_lo, new_hi))

    # ------------------------------------------------------------------
    # Candidate traversal strategies
    # ------------------------------------------------------------------
    #
    # Both strategies compute the same order-independent winner: walk the
    # candidates by ``(lower bound, enumeration ordinal)``, stop once a
    # bound exceeds the incumbent cost plus ``margin``, and keep the
    # minimum ``(cost, y, x, ordinal)``.  The stop rule is exact in bound
    # order — after the first failing candidate the incumbent can no
    # longer change (nothing further is evaluated), so every later
    # candidate fails the same test — which is what makes the lazy heap
    # traversal and the exhaustive replay provably identical.

    def evaluate_best_first(
        self, max_points: int, margin: float
    ) -> Tuple[Optional[EvaluatedInsertion], int]:
        """Lazy bound-ordered evaluation with row-level short-circuits.

        Candidates enter a min-heap keyed ``(lower bound, ordinal)`` one
        bottom row at a time and are popped while the heap minimum cannot
        be undercut by any not-yet-enumerated row: every candidate of row
        ``r`` has bound >= weight * |r - gp_y| (its *floor*), and
        :meth:`candidate_rows` is sorted by that distance, so the next
        row's floor is a valid drain threshold.  Pops therefore occur in
        global ``(bound, ordinal)`` order.  Rows whose floor already
        exceeds the incumbent cost plus the margin are never enumerated
        at all — their candidates would fail the stop-rule test at every
        later point of the walk too, since the incumbent only tightens.
        """
        weight = self.weight_of(self.target)
        rows = self.candidate_rows()
        heap: List[Tuple[float, int, int, Tuple[Gap, ...]]] = []
        best: Optional[EvaluatedInsertion] = None
        best_key: Optional[Tuple[float, int, int, int]] = None
        evaluated_points = 0
        seq = 0
        num_rows = len(rows)
        for index, bottom_row in enumerate(rows):
            if (
                best is not None
                and weight * abs(bottom_row - self.gp_y) > best.cost + margin
            ):
                break  # This row's floor fails; later rows' floors are higher.
            for gaps in self.row_combinations(bottom_row, max_points):
                bound = self.target_cost_lower_bound(bottom_row, gaps)
                heappush(heap, (bound, seq, bottom_row, gaps))
                seq += 1
            if index + 1 < num_rows:
                threshold = weight * abs(rows[index + 1] - self.gp_y)
            else:
                threshold = math.inf
            best, best_key, evaluated_points = self._drain_heap(
                heap, threshold, margin, best, best_key, evaluated_points
            )
        best, best_key, evaluated_points = self._drain_heap(
            heap, math.inf, margin, best, best_key, evaluated_points
        )
        return best, evaluated_points

    def _drain_heap(
        self,
        heap: List[Tuple[float, int, int, Tuple[Gap, ...]]],
        threshold: float,
        margin: float,
        best: Optional[EvaluatedInsertion],
        best_key: Optional[Tuple[float, int, int, int]],
        evaluated_points: int,
    ) -> Tuple[
        Optional[EvaluatedInsertion],
        Optional[Tuple[float, int, int, int]],
        int,
    ]:
        """Pop and evaluate heap entries whose bound is within ``threshold``."""
        while heap and heap[0][0] <= threshold:
            bound, order, bottom_row, gaps = heappop(heap)
            if best is not None and bound > best.cost + margin:
                # Bound-ordered: every remaining entry fails the same test
                # (the incumbent cannot improve without evaluations).
                heap.clear()
                break
            result = self.evaluate(bottom_row, gaps)
            evaluated_points += 1
            if result is None:
                continue
            key = (result.cost, result.y, result.x, order)
            if best_key is None or key < best_key:
                best = result
                best_key = key
        return best, best_key, evaluated_points

    def evaluate_linear(
        self, max_points: int, margin: float
    ) -> Tuple[Optional[EvaluatedInsertion], int]:
        """Reference evaluation: cost every candidate, then select.

        Evaluates the full enumeration in its natural order (no pruning,
        so the evaluated count covers every candidate) and replays the
        bound-ordered stop rule over the known costs, yielding the exact
        winner :meth:`evaluate_best_first` converges to.
        """
        entries: List[Tuple[float, int, Optional[EvaluatedInsertion]]] = []
        for bottom_row, gaps in self.enumerate_insertion_points(max_points):
            bound = self.target_cost_lower_bound(bottom_row, gaps)
            entries.append((bound, len(entries), self.evaluate(bottom_row, gaps)))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        best: Optional[EvaluatedInsertion] = None
        best_key: Optional[Tuple[float, int, int, int]] = None
        for bound, order, result in entries:
            if best is not None and bound > best.cost + margin:
                break
            if result is None:
                continue
            key = (result.cost, result.y, result.x, order)
            if best_key is None or key < best_key:
                best = result
                best_key = key
        return best, len(entries)

    def target_cost_lower_bound(
        self, bottom_row: int, gaps: Sequence[Gap]
    ) -> float:
        """Cheap lower bound on the target's own contribution to the cost.

        Uses the rough per-row compression interval; local-cell deltas can
        be negative (type C/D curves), so callers must allow a margin when
        pruning with this bound.  Routed through the vector backend's
        batch-computed per-row tables when one is attached; the values
        are bit-identical either way.
        """
        if self._vector is not None:
            return self._vector.lower_bound(bottom_row, gaps)
        return self.lower_bound_scalar(bottom_row, gaps)

    def lower_bound_scalar(
        self, bottom_row: int, gaps: Sequence[Gap]
    ) -> float:
        """The per-candidate reference form of the bound above."""
        lo = max(gap.lo_rough for gap in gaps)
        hi = min(gap.hi_rough for gap in gaps)
        x_dist = max(0.0, lo - self.gp_x, self.gp_x - hi)
        weight = self.weight_of(self.target)
        return weight * (abs(bottom_row - self.gp_y) + x_dist * self.x_unit)

    # ------------------------------------------------------------------
    # Exact evaluation of one insertion point
    # ------------------------------------------------------------------

    def evaluate(
        self, bottom_row: int, gaps: Sequence[Gap]
    ) -> Optional[EvaluatedInsertion]:
        """Exact feasibility, optimal x, and spread moves for a combination.

        Returns None when the combination is infeasible (a transitive push
        does not fit, or a cell would need to move both ways).  Dispatches
        to the vector backend when one is attached; candidates outside
        its fast-path shape fall back to :meth:`evaluate_scalar`, so the
        two backends are candidate-for-candidate identical.
        """
        if self._vector is not None:
            return self._vector.evaluate(bottom_row, gaps)
        return self.evaluate_scalar(bottom_row, gaps)

    def evaluate_scalar(
        self, bottom_row: int, gaps: Sequence[Gap]
    ) -> Optional[EvaluatedInsertion]:
        """The reference evaluation: per-candidate transitive push walk."""
        right_info = self._push_side(gaps, side=+1)
        if right_info is None:
            return None
        left_info = self._push_side(gaps, side=-1)
        if left_info is None:
            return None
        right_offsets, right_limit = right_info
        left_offsets, left_limit = left_info
        if set(right_offsets) & set(left_offsets):
            return None  # A cell would be pushed both left and right.
        return self.finish_evaluation(
            bottom_row, gaps,
            right_offsets, right_limit, left_offsets, left_limit,
        )

    def finish_evaluation(
        self,
        bottom_row: int,
        gaps: Sequence[Gap],
        right_offsets: Dict[int, int],
        right_limit: float,
        left_offsets: Dict[int, int],
        left_limit: float,
        vectorized: bool = False,
    ) -> Optional[EvaluatedInsertion]:
        """Shared tail of both backends: curves, minimize, guard, moves.

        The offsets dicts must be in push order (right side outward-
        ascending, left side outward-descending): curve summation is a
        float accumulation in curve order, so dict order is part of the
        bit-equality contract.  ``vectorized`` only switches the guard to
        its batched (but walk-identical) probe path.
        """
        lo = left_limit
        hi = right_limit
        if math.ceil(lo) > math.floor(hi):
            return None

        placement = self.occupancy.placement
        curves: List[DisplacementCurve] = [
            DisplacementCurve.target(
                self.gp_x, self.weight_of(self.target) * self.x_unit
            ),
            DisplacementCurve.constant(
                self.weight_of(self.target) * abs(bottom_row - self.gp_y)
            ),
        ]
        # Costs are measured as the *change* in the local cells' summed
        # displacement: each cell's current displacement is subtracted so
        # insertion points with different push sets compare fairly.
        baseline = 0.0
        use_gp = self.reference == "gp"
        for cell, offset in right_offsets.items():
            weight = self.weight_of(cell) * self.x_unit
            anchor = self.design.gp_x[cell] if use_gp else placement.x[cell]
            curves.append(
                DisplacementCurve.pushed_right(
                    placement.x[cell], anchor, offset, weight
                )
            )
            baseline += weight * abs(placement.x[cell] - anchor)
        for cell, offset in left_offsets.items():
            weight = self.weight_of(cell) * self.x_unit
            anchor = self.design.gp_x[cell] if use_gp else placement.x[cell]
            curves.append(
                DisplacementCurve.pushed_left(
                    placement.x[cell], anchor, offset, weight
                )
            )
            baseline += weight * abs(placement.x[cell] - anchor)
        if baseline:
            curves.append(DisplacementCurve.constant(-baseline))

        # One compiled curve set serves both the site minimization and the
        # guard's repeated cost probes; its value() performs bit-identical
        # arithmetic to DisplacementCurve.value on the summed curve.
        return self.finish_with_compiled(
            bottom_row, gaps, right_offsets, left_offsets,
            lo, hi, CurveSet(curves), vectorized,
        )

    def finish_with_compiled(
        self,
        bottom_row: int,
        gaps: Sequence[Gap],
        right_offsets: Dict[int, int],
        left_offsets: Dict[int, int],
        lo: float,
        hi: float,
        compiled: CurveSet,
        vectorized: bool,
    ) -> Optional[EvaluatedInsertion]:
        """Minimize + guard + moves over an already-compiled curve set.

        Split out of :meth:`finish_evaluation` so the SoA backend, which
        assembles the summed curve directly from arrays, can join the
        shared pipeline at the compiled stage.
        """
        placement = self.occupancy.placement
        best = compiled.minimize(lo, hi)
        if best is None:
            return None
        best_x, best_cost = best

        if self.guard is not None:
            if vectorized:
                best_x, extra = self.guard.adjust_x_vector(
                    self.target_type,
                    bottom_row,
                    best_x,
                    int(math.ceil(lo)),
                    int(math.floor(hi)),
                    compiled.value,
                    compiled.values,
                )
            else:
                best_x, extra = self.guard.adjust_x(
                    self.target_type,
                    bottom_row,
                    best_x,
                    int(math.ceil(lo)),
                    int(math.floor(hi)),
                    compiled.value,
                )
            best_cost = compiled.value(best_x) + extra

        moves: List[Tuple[int, int]] = []
        for cell, offset in right_offsets.items():
            new_x = max(placement.x[cell], best_x + offset)
            if new_x != placement.x[cell]:
                moves.append((cell, new_x))
        for cell, offset in left_offsets.items():
            new_x = min(placement.x[cell], best_x - offset)
            if new_x != placement.x[cell]:
                moves.append((cell, new_x))

        return EvaluatedInsertion(
            x=best_x, y=bottom_row, cost=best_cost, moves=moves, gaps=tuple(gaps)
        )

    # ------------------------------------------------------------------

    def _segment_neighbors(
        self, cell: int, side: int
    ) -> List[Tuple[int, Optional[int], Optional[Segment]]]:
        """Adjacent cell per row of ``cell``, restricted to its segment.

        Returns ``(row, neighbor, segment)`` triples for every row the
        cell spans; ``neighbor`` is None when the next cell in that row
        lies beyond the segment boundary (the boundary itself is then the
        wall).
        """
        design = self.design
        placement = self.occupancy.placement
        x, y = placement.x[cell], placement.y[cell]
        height = design.cell_type_of(cell).height
        result: List[Tuple[int, Optional[int], Optional[Segment]]] = []
        for row in range(y, y + height):
            segment = design.segment_at(row, x)
            if side > 0:
                neighbor = self.occupancy.right_neighbor(row, x + 1, exclude=cell)
            else:
                neighbor = self.occupancy.left_neighbor(row, x, exclude=cell)
            if neighbor is not None:
                if segment is None or not (
                    segment.x_lo <= placement.x[neighbor] < segment.x_hi
                ):
                    neighbor = None
            result.append((row, neighbor, segment))
        return result

    def _push_side(
        self, gaps: Sequence[Gap], side: int
    ) -> Optional[Tuple[Dict[int, int], float]]:
        """Transitive push analysis on one side of the insertion point.

        Args:
            gaps: per-row gap choices.
            side: +1 for the right side, -1 for the left side.

        Returns:
            ``(offsets, limit)`` where ``offsets[cell]`` is the chain
            offset from the target and ``limit`` bounds the target's x
            (upper bound for ``side=+1``, lower bound for ``side=-1``),
            or None when some push cannot fit.
        """
        design = self.design
        placement = self.occupancy.placement
        width_t = self.target_type.width

        # Per-cell neighbor info is needed by all three passes below and
        # by every other insertion point whose push set includes the cell;
        # compute it once per (cell, side) for the context's lifetime
        # (this dominates the evaluation cost).
        neighbor_cache = self._neighbor_cache

        def info(cell: int) -> List[Tuple[int, Optional[int], Optional[Segment]]]:
            cached = neighbor_cache.get((cell, side))
            if cached is None:
                cached = self._segment_neighbors(cell, side)
                neighbor_cache[(cell, side)] = cached
            return cached

        # 1. Collect the push set by BFS through local, same-segment
        # neighbors.  A neighbor beyond a segment (fence/blockage) boundary
        # can never be touched by this cell, so pushes must not propagate
        # across it — the segment end is the wall instead.
        seeds = [
            (gap.right_cell if side > 0 else gap.left_cell) for gap in gaps
        ]
        push_set: Set[int] = set(c for c in seeds if c is not None)
        frontier = list(push_set)
        while frontier:
            cell = frontier.pop()
            for _row, neighbor, _segment in info(cell):
                if neighbor is None or neighbor in push_set:
                    continue
                if not self.is_local(neighbor):
                    continue
                push_set.add(neighbor)
                frontier.append(neighbor)

        ordered = sorted(push_set, key=lambda c: (placement.x[c], c))
        if side < 0:
            ordered.reverse()  # Process outward from the target.

        # 2. Chain offsets (longest paths from the target).
        offsets: Dict[int, int] = {}
        for gap in gaps:
            seed = gap.right_cell if side > 0 else gap.left_cell
            if seed is None:
                continue
            if side > 0:
                off = width_t + self.edge_gap(-1, seed)
            else:
                off = self.cell_width(seed) + self.edge_gap(seed, -1)
            offsets[seed] = max(offsets.get(seed, 0), off)
        for cell in ordered:
            if cell not in offsets:
                # Reachable by BFS but only via cells processed later; give
                # it a zero base so chains through it still accumulate.
                offsets[cell] = 0
            base = offsets[cell]
            for _row, neighbor, _segment in info(cell):
                if neighbor is None or neighbor not in push_set:
                    continue
                if side > 0:
                    step = self.cell_width(cell) + self.edge_gap(cell, neighbor)
                else:
                    step = self.cell_width(neighbor) + self.edge_gap(neighbor, cell)
                offsets[neighbor] = max(offsets.get(neighbor, 0), base + step)

        # 3. Extreme positions against walls (processed inward).
        extreme: Dict[int, float] = {}
        for cell in reversed(ordered):
            bounds: List[float] = []
            width_c = self.cell_width(cell)
            for row, neighbor, segment in info(cell):
                if segment is None:
                    return None
                if side > 0:
                    if neighbor is not None and neighbor in push_set:
                        bounds.append(
                            extreme[neighbor] - self.edge_gap(cell, neighbor) - width_c
                        )
                    elif neighbor is not None:
                        bounds.append(
                            placement.x[neighbor]
                            - self.edge_gap(cell, neighbor)
                            - width_c
                        )
                    else:
                        limit = segment.x_hi
                        outside = self.occupancy.right_neighbor(row, segment.x_hi)
                        if outside is not None:
                            # Edge rules reach across the segment boundary
                            # (no-op when the outside cell is far enough).
                            limit = min(
                                limit,
                                placement.x[outside]
                                - self.edge_gap(cell, outside),
                            )
                        bounds.append(limit - width_c)
                else:
                    if neighbor is not None and neighbor in push_set:
                        bounds.append(
                            extreme[neighbor]
                            + self.cell_width(neighbor)
                            + self.edge_gap(neighbor, cell)
                        )
                    elif neighbor is not None:
                        bounds.append(
                            placement.x[neighbor]
                            + self.cell_width(neighbor)
                            + self.edge_gap(neighbor, cell)
                        )
                    else:
                        limit = segment.x_lo
                        outside = self.occupancy.left_neighbor(row, segment.x_lo)
                        if outside is not None:
                            outside_end = (
                                placement.x[outside] + self.cell_width(outside)
                            )
                            # Unconditional, matching the gap bounds above.
                            limit = max(
                                limit,
                                outside_end + self.edge_gap(outside, cell),
                            )
                        bounds.append(limit)
            extreme[cell] = min(bounds) if side > 0 else max(bounds)
            if side > 0 and extreme[cell] < placement.x[cell] - 1e-9:
                return None  # Already violates: cannot even stay put.
            if side < 0 and extreme[cell] > placement.x[cell] + 1e-9:
                return None

        # 4. The target's limit.
        limits: List[float] = []
        for gap in gaps:
            if side > 0:
                if gap.right_cell is not None:
                    limits.append(
                        extreme[gap.right_cell]
                        - self.edge_gap(-1, gap.right_cell)
                        - width_t
                    )
                else:
                    wall_gap = (
                        self.edge_gap(-1, gap.right_wall_cell)
                        if gap.right_wall_cell is not None
                        else 0
                    )
                    limits.append(gap.right_bound - wall_gap - width_t)
            else:
                if gap.left_cell is not None:
                    limits.append(
                        extreme[gap.left_cell]
                        + self.cell_width(gap.left_cell)
                        + self.edge_gap(gap.left_cell, -1)
                    )
                else:
                    wall_gap = (
                        self.edge_gap(gap.left_wall_cell, -1)
                        if gap.left_wall_cell is not None
                        else 0
                    )
                    limits.append(gap.left_bound + wall_gap)
        limit = min(limits) if side > 0 else max(limits)
        return offsets, limit
