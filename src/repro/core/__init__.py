"""The paper's contribution: the three-stage legalization flow.

* :mod:`repro.core.curves` — piecewise-linear displacement curves
  (types A-D of Fig. 4) and their summation/minimization;
* :mod:`repro.core.insertion` — insertion-point enumeration inside a
  window (the method of MLL [12], §3.1);
* :mod:`repro.core.mgl` — multi-row global legalization (Alg. 1);
* :mod:`repro.core.scheduler` — the deterministic non-overlapping-window
  scheduler of §3.5;
* :mod:`repro.core.shard` — fence-aware row-band sharding with
  deterministic halo reconciliation (parallel *regions*, beyond the
  §3.5 parallel windows);
* :mod:`repro.core.matching` — maximum-displacement optimization by
  min-cost bipartite matching per (cell type, fence) group (§3.2);
* :mod:`repro.core.flowopt` — fixed-row-fixed-order optimization through
  the dual min-cost flow (§3.3, Eqs. 4-9);
* :mod:`repro.core.refine` — routability-driven feasible ranges (§3.4);
* :mod:`repro.core.legalizer` — the full pipeline (Fig. 2).
"""

from repro.core.curves import DisplacementCurve, minimize_over_sites, sum_curves
from repro.core.incremental import IncrementalLegalizer, IncrementalResult
from repro.core.legalizer import LegalizationResult, Legalizer, legalize
from repro.core.params import LegalizerParams
from repro.core.shard import Shard, ShardTopology, compute_topology

__all__ = [
    "DisplacementCurve",
    "IncrementalLegalizer",
    "IncrementalResult",
    "LegalizationResult",
    "Legalizer",
    "LegalizerParams",
    "Shard",
    "ShardTopology",
    "compute_topology",
    "legalize",
    "minimize_over_sites",
    "sum_curves",
]
