"""Sharded MGL: fence-aware row bands, parallel interiors, halo stitching.

The §3.5 scheduler (and its process pool, :mod:`repro.core.parallel`)
parallelizes *windows* against one shared occupancy; this module
parallelizes *regions*.  The die is partitioned into horizontal row
bands — never cutting through a fence region — and each band is
legalized independently in its own process with its own
:class:`~repro.core.occupancy.Occupancy`, after which a deterministic
reconciliation pass stitches the bands back into one full-die placement.

The pipeline:

1. **Topology** (:func:`compute_topology`): evenly spaced cut rows,
   each adjusted to the nearest row that does not split a fence
   bounding box (preferring the lower candidate on ties, dropped —
   i.e. bands merged — when no legal row exists).  The shard count is
   additionally capped so every band can hold the tallest movable
   cell.  Every movable cell is assigned to exactly one band: fenced
   cells to the band containing their fence (whole, by construction),
   default-fence cells by their GP row.
2. **Interiors** (:func:`legalize_shard_interior`): each shard runs the
   plain sequential MGL loop over its assigned cells with every search
   window clamped to the shard's *halo-extended* rect — the band plus
   ``shard_halo_rows`` rows on each side.  A cell with no feasible
   insertion even at the exhaustive shard-rect window is **deferred**
   to reconciliation instead of raising.  Because
   ``InsertionContext.candidate_rows`` only yields bottom rows whose
   cell fits entirely inside the window, every interior placement lies
   strictly within the halo-extended row range.
3. **Stitch + reconcile** (:func:`run_sharded`): interior placements
   can only overlap each other inside a *halo band* — the rows within
   ``shard_halo_rows`` of a cut, the only rows two halo-extended rects
   share — so every cell whose rect intersects a halo band (plus every
   deferred cell) is withheld from the stitch and re-legalized against
   the stitched full-die occupancy with the ordinary full-die
   :meth:`MGLegalizer.legalize_cell`, in the fixed global
   :func:`mgl_cell_order`.  All remaining cells are provably
   conflict-free and are committed directly.

Determinism: an interior result is a pure function of
``(design, params, shard)`` — the worker pool computes exactly
:func:`legalize_shard_interior`, the same function the in-process
fallback runs, and reconciliation always runs in the parent in a fixed
order — so for a fixed topology the final placement is bit-identical
for any worker count, including zero.  With ``shards=1`` the single
shard's rect *is* the chip rect, the window clamp is the identity, and
the interior loop degenerates to exactly the sequential path of
:meth:`MGLegalizer.run` (reconciliation has no halo bands and nothing
to do), reproducing the unsharded placement bit-exactly.

Failure policy mirrors :mod:`repro.core.parallel`: a shard worker that
cannot spawn, crashes, or hangs past :data:`~repro.core.parallel.WORKER_TIMEOUT`
is retired and its shards are recomputed in-process, so sharding can
slow down but never lose cells or change the answer.
"""

from __future__ import annotations

import math
import pickle
from bisect import bisect_right
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.core.parallel import WORKER_TIMEOUT, _pick_context
from repro.model.design import Design
from repro.model.fence import DEFAULT_FENCE
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.obs.clock import monotonic
from repro.obs.metrics import SHARD_OCCUPANCY_BUCKETS

if TYPE_CHECKING:
    from multiprocessing.process import BaseProcess

    from repro.core.mgl import MGLegalizer
    from repro.obs.progress import NullProgress
    from repro.obs.tracer import NullTracer
    from repro.perf import PerfRecorder

__all__ = [
    "Shard",
    "ShardTopology",
    "compute_topology",
    "legalize_shard_interior",
    "run_sharded",
    "run_sharded_mgl",
]

#: Stats keys the sharded path maintains on the legalizer (all start 0).
SHARD_STAT_KEYS = (
    "shard_count",
    "shard_halo_cells",
    "shard_deferred",
    "shard_reconciled",
    "shard_fallbacks",
    "shard_worker_failures",
    "shard_workers_spawned",
)


@dataclass(frozen=True)
class Shard:
    """One row band: interior rows, halo-extended rows, assigned cells.

    ``row_lo``/``row_hi`` bound the interior band (half-open);
    ``halo_lo``/``halo_hi`` extend it by the topology's halo rows,
    clamped to the chip.  Interior placement happens anywhere inside the
    halo-extended range; cell *assignment* partitions on the interiors.
    Plain ints and tuples throughout so instances pickle cheaply to
    worker processes.
    """

    index: int
    row_lo: int
    row_hi: int
    halo_lo: int
    halo_hi: int
    cells: Tuple[int, ...]

    def rect(self, design: Design) -> Rect:
        """The halo-extended search rect (full chip width)."""
        return Rect(0, self.halo_lo, design.num_sites, self.halo_hi)


@dataclass(frozen=True)
class ShardTopology:
    """A full-die partition into row bands plus the halo policy."""

    num_rows: int
    halo_rows: int
    #: ``len(shards) + 1`` strictly increasing cut rows, first 0, last
    #: ``num_rows``; shard ``i`` owns rows ``[boundaries[i], boundaries[i+1])``.
    boundaries: Tuple[int, ...]
    shards: Tuple[Shard, ...]

    def halo_bands(self) -> List[Tuple[int, int]]:
        """Row ranges within ``halo_rows`` of an interior cut.

        These are exactly the rows two adjacent halo-extended shard
        rects share, hence the only rows where interior placements from
        different shards can overlap.  Empty when ``halo_rows == 0``
        (adjacent interiors are then disjoint by construction) or when
        there is a single shard.
        """
        if self.halo_rows <= 0:
            return []
        return [
            (max(0, cut - self.halo_rows), min(self.num_rows, cut + self.halo_rows))
            for cut in self.boundaries[1:-1]
        ]

    def as_dict(self) -> Dict[str, object]:
        """Compact JSON form for manifests and bench reports."""
        return {
            "shards": len(self.shards),
            "halo_rows": self.halo_rows,
            "boundaries": list(self.boundaries),
            "bands": [
                {
                    "index": shard.index,
                    "row_lo": shard.row_lo,
                    "row_hi": shard.row_hi,
                    "halo_lo": shard.halo_lo,
                    "halo_hi": shard.halo_hi,
                    "cells": len(shard.cells),
                }
                for shard in self.shards
            ],
        }


def compute_topology(
    design: Design, num_shards: int, halo_rows: int
) -> ShardTopology:
    """Partition the die into fence-aware row bands.

    Deterministic: cuts start evenly spaced; a cut that would pass
    strictly through a fence region's bounding-box row span is moved to
    the nearest legal row (lower candidate preferred on equal distance)
    and dropped entirely — merging the two bands — when no legal row
    remains between its neighbors.  The requested count is capped so a
    band (before halo extension) can hold the tallest movable cell.
    """
    num_rows = design.num_rows
    max_height = 1
    for cell in design.movable_cells():
        height = design.cell_type_of(cell).height
        if height > max_height:
            max_height = height
    requested = max(1, min(num_shards, num_rows // max_height))

    # Rows a cut may not pass through: strictly inside some fence's
    # bounding-box row span.  Cutting at the span's first or one-past-
    # last row keeps the fence whole on one side.
    forbidden = set()
    for fence in design.fences:
        box = fence.bounding_box
        for row in range(int(math.floor(box.ylo)) + 1, int(math.ceil(box.yhi))):
            forbidden.add(row)

    cuts: List[int] = []
    previous = 0
    for i in range(1, requested):
        target = (i * num_rows) // requested
        chosen: Optional[int] = None
        for distance in range(num_rows):
            for candidate in (target - distance, target + distance):
                if previous < candidate < num_rows and candidate not in forbidden:
                    chosen = candidate
                    break
            if chosen is not None:
                break
        if chosen is None:
            continue  # No legal row left: merge into the next band.
        cuts.append(chosen)
        previous = chosen
    boundaries = tuple([0] + cuts + [num_rows])

    def band_of(row: int) -> int:
        return bisect_right(boundaries, row) - 1

    assigned: List[List[int]] = [[] for _ in range(len(boundaries) - 1)]
    for cell in design.movable_cells():
        fence_id = design.fence_of(cell)
        if fence_id != DEFAULT_FENCE:
            # The fence's whole row span lies inside one band (its
            # interior rows are cut-forbidden), so anchoring on the
            # span's first row assigns the cell to that band.
            row = int(
                math.floor(design.fence_region(fence_id).bounding_box.ylo)
            )
        else:
            row = int(round(design.gp_y[cell]))
        row = min(max(row, 0), num_rows - 1)
        assigned[band_of(row)].append(cell)

    shards = tuple(
        Shard(
            index=i,
            row_lo=boundaries[i],
            row_hi=boundaries[i + 1],
            halo_lo=max(0, boundaries[i] - halo_rows),
            halo_hi=min(num_rows, boundaries[i + 1] + halo_rows),
            cells=tuple(assigned[i]),
        )
        for i in range(len(boundaries) - 1)
    )
    return ShardTopology(
        num_rows=num_rows,
        halo_rows=halo_rows,
        boundaries=boundaries,
        shards=shards,
    )


# ----------------------------------------------------------------------
# Shard interiors (runs in worker processes and in-process fallback)
# ----------------------------------------------------------------------


@dataclass
class ShardInteriorResult:
    """One shard's interior outcome, shipped back to the parent.

    ``positions`` holds ``(cell, x, y)`` for every assigned cell placed
    inside the halo-extended rect; ``deferred`` lists assigned cells
    with no feasible insertion there (re-legalized full-die during
    reconciliation); ``stats`` is the interior legalizer's counter dict.
    """

    index: int
    positions: List[Tuple[int, int, int]]
    deferred: List[int]
    stats: Dict[str, int]


def interior_params(params: LegalizerParams) -> LegalizerParams:
    """The parameter set every shard interior runs with.

    Worker processes and the in-process fallback must compute the same
    pure function, so nested parallelism is stripped and the interior
    always runs the plain sequential MGL loop (the §3.5 scheduler
    applies to the unsharded path only; shards are the parallel unit).
    """
    return replace(
        params,
        shards=1,
        scheduler_workers=0,
        scheduler_threads=0,
        scheduler_capacity=1,
    )


def legalize_shard_interior(
    design: Design,
    params: LegalizerParams,
    reference: str,
    shard: Shard,
) -> ShardInteriorResult:
    """Legalize one shard's assigned cells inside its halo-extended rect.

    A pure function of its arguments: builds a fresh legalizer,
    placement, and occupancy (fixed cells pinned exactly as
    :meth:`MGLegalizer.run` does), walks the assigned cells in the
    global :func:`mgl_cell_order`, and runs the standard
    expand-on-failure window loop with every window — including the
    final exhaustive one — intersected with the shard rect.  With the
    chip-sized shard of a ``shards=1`` topology the clamp is the
    identity and this reproduces the sequential path of
    :meth:`MGLegalizer.run` bit-exactly.
    """
    from repro.core.mgl import MGLegalizer, mgl_cell_order

    legalizer = MGLegalizer(design, params, reference=reference)
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    for cell in range(design.num_cells):
        if design.cells[cell].fixed:
            placement.move(cell, int(design.gp_x[cell]), int(design.gp_y[cell]))
            occupancy.add(cell)

    shard_rect = shard.rect(design)
    assigned = frozenset(shard.cells)
    deferred: List[int] = []
    for cell in mgl_cell_order(design, params):
        if cell not in assigned:
            continue
        if not _legalize_cell_clamped(legalizer, occupancy, cell, shard_rect):
            deferred.append(cell)
    positions = [
        (cell, placement.x[cell], placement.y[cell])
        for cell in sorted(assigned)
        if occupancy.is_placed(cell)
    ]
    return ShardInteriorResult(
        index=shard.index,
        positions=positions,
        deferred=deferred,
        stats=dict(legalizer.stats),
    )


def _legalize_cell_clamped(
    legalizer: "MGLegalizer",
    occupancy: Occupancy,
    cell: int,
    shard_rect: Rect,
) -> bool:
    """:meth:`MGLegalizer.legalize_cell` with windows clamped to the shard.

    Returns False (defer) instead of raising when even the exhaustive
    shard-rect window holds no feasible insertion — inside a shard
    that is an expected outcome near over-full bands, not an error.
    """
    params = legalizer.params
    scale = 1.0
    for _attempt in range(params.max_expansions):
        window = legalizer.initial_window(cell, scale).intersect(shard_rect)
        if not window.empty:
            insertion = legalizer.try_insert(occupancy, cell, window)
            if insertion is not None:
                legalizer.apply_insertion(occupancy, cell, insertion)
                return True
        legalizer.stats["window_expansions"] += 1
        scale *= params.window_expand
    insertion = legalizer.try_insert(occupancy, cell, shard_rect, exhaustive=True)
    if insertion is not None:
        legalizer.apply_insertion(occupancy, cell, insertion)
        return True
    return False


# ----------------------------------------------------------------------
# Worker pool (parent side + worker entry point)
# ----------------------------------------------------------------------


def shard_worker_main(conn: Connection) -> None:
    """Entry point of one shard worker process.

    Protocol (tuples, tag first — the :mod:`repro.core.parallel` idiom,
    without the occupancy journal: shard occupancies are disjoint, so
    there is no shared state to mirror):

    * receive ``("init", design, params, reference)`` once, reply
      ``("ready",)``;
    * then repeatedly receive ``("shards", [Shard, ...])`` — run
      :func:`legalize_shard_interior` on each, reply
      ``("results", [ShardInteriorResult, ...], busy_seconds)``;
    * ``("stop",)`` ends the loop.

    Any exception is reported as ``("error", message)`` and kills the
    worker; the parent recomputes its shards in-process.
    """
    try:
        message = conn.recv()
        if message[0] != "init":  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected init, got {message[0]!r}")
        design, params, reference = message[1:]
        assert isinstance(params, LegalizerParams)
        conn.send(("ready",))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            if message[0] != "shards":  # pragma: no cover - protocol guard
                raise RuntimeError(f"expected shards, got {message[0]!r}")
            _tag, shards = message
            busy_start = monotonic()
            results = [
                legalize_shard_interior(design, params, reference, shard)
                for shard in shards
            ]
            conn.send(("results", results, monotonic() - busy_start))
    except EOFError:
        pass  # Parent went away; nothing to report to.
    except Exception as error:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (OSError, ValueError, pickle.PicklingError):
            pass
    finally:
        conn.close()


@dataclass
class _ShardWorker:
    """Parent-side bookkeeping for one shard worker process."""

    index: int
    process: "BaseProcess"
    conn: Connection
    alive: bool = True


def _run_shard_pool(
    design: Design,
    params: LegalizerParams,
    reference: str,
    shards: Sequence[Shard],
    num_workers: int,
    stats: Dict[str, int],
    recorder: Optional["PerfRecorder"],
) -> Dict[int, ShardInteriorResult]:
    """Fan shards out to a process pool; return whatever succeeded.

    Shards are striped over the workers that survive the init
    handshake; each worker receives one message with its share and
    sends one reply.  Workers that fail at any point are retired (a
    ``shard.worker_retired`` counter when a recorder is attached) and
    their shards simply stay absent from the result map — the caller
    recomputes them in-process, so failures cost time, never answers.
    """
    results: Dict[int, ShardInteriorResult] = {}

    def retire(worker: _ShardWorker) -> None:
        if not worker.alive:
            return
        worker.alive = False
        stats["shard_worker_failures"] += 1
        if recorder is not None:
            recorder.registry.count("shard.worker_retired")
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()

    try:
        context = _pick_context()
    except Exception:  # noqa: BLE001 - no multiprocessing at all
        stats["shard_worker_failures"] += num_workers
        return results
    init_message = ("init", design, params, reference)
    workers: List[_ShardWorker] = []
    for index in range(num_workers):
        try:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=shard_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            parent_conn.send(init_message)
            workers.append(_ShardWorker(index, process, parent_conn))
        except Exception:  # noqa: BLE001 - spawn failure => fewer workers
            stats["shard_worker_failures"] += 1
    try:
        for worker in workers:
            try:
                if not worker.conn.poll(WORKER_TIMEOUT):
                    raise TimeoutError("shard worker init handshake timed out")
                reply = worker.conn.recv()
                if reply[0] != "ready":
                    raise RuntimeError(f"shard worker init failed: {reply!r}")
            except Exception:  # noqa: BLE001
                retire(worker)
        alive = [worker for worker in workers if worker.alive]
        stats["shard_workers_spawned"] += len(alive)
        if not alive:
            return results

        shares: Dict[int, List[Shard]] = {worker.index: [] for worker in alive}
        for position, shard in enumerate(shards):
            shares[alive[position % len(alive)].index].append(shard)
        pending: List[_ShardWorker] = []
        for worker in alive:
            share = shares[worker.index]
            if not share:
                continue
            try:
                worker.conn.send(("shards", share))
            except Exception:  # noqa: BLE001 - retire, recompute locally
                retire(worker)
                continue
            pending.append(worker)
        for worker in pending:
            try:
                if not worker.conn.poll(WORKER_TIMEOUT):
                    raise TimeoutError("shard worker reply timed out")
                reply = worker.conn.recv()
                if reply[0] != "results":
                    raise RuntimeError(f"shard worker reported: {reply!r}")
                _tag, worker_results, busy_seconds = reply
                if recorder is not None:
                    recorder.record(
                        f"shard.worker{worker.index}", busy_seconds
                    )
                for result in worker_results:
                    results[result.index] = result
            except Exception:  # noqa: BLE001 - retire, recompute locally
                retire(worker)
    finally:
        for worker in workers:
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except Exception:  # noqa: BLE001
                    pass
                worker.alive = False
                worker.conn.close()
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
    return results


# ----------------------------------------------------------------------
# Orchestration (parent)
# ----------------------------------------------------------------------

#: Interior-legalizer counters folded into the parent's stats; the rest
#: (scheduler/parallel keys) stay 0 on the interior path by construction.
_MERGED_STAT_KEYS = (
    "insertions_evaluated",
    "window_expansions",
    "cells_placed",
    "gap_cache_hits",
    "gap_cache_misses",
)


def _intersects_bands(y: int, height: int, bands: Sequence[Tuple[int, int]]) -> bool:
    """Whether rows ``[y, y + height)`` touch any halo band."""
    for lo, hi in bands:
        if y < hi and y + height > lo:
            return True
    return False


def run_sharded(legalizer: "MGLegalizer", occupancy: Occupancy) -> None:
    """Run the sharded MGL flow against a prepared occupancy.

    The occupancy (and its placement) must already hold the fixed cells
    — exactly the state :meth:`MGLegalizer.run` hands over.  On return
    every movable cell is placed, ``legalizer.stats`` carries the
    interior counters plus the ``shard_*`` keys, and
    ``legalizer.shard_topology`` records the partition.

    Raises:
        LegalizationError: from the reconciliation pass, when a cell
            cannot be placed anywhere in its fence even full-die (the
            same over-full condition as the unsharded path).
    """
    from repro.core.mgl import disp_so_far, mgl_cell_order

    design = legalizer.design
    params = legalizer.params
    tracer = legalizer.tracer
    recorder = legalizer.recorder
    progress = legalizer.progress
    stats = legalizer.stats
    for key in SHARD_STAT_KEYS:
        stats.setdefault(key, 0)

    # The fixed global order drives both the tracer's sampling policy
    # and the reconciliation pass; registering it here keeps direct
    # run_sharded_mgl() callers under the same sampling contract as
    # MGLegalizer.run() (the call is idempotent).
    global_order = mgl_cell_order(design, params)
    tracer.set_cell_population(global_order)

    topology = compute_topology(design, params.shards, params.shard_halo_rows)
    legalizer.shard_topology = topology
    stats["shard_count"] = len(topology.shards)
    iparams = interior_params(params)

    with tracer.span("shard_mgl") as root:
        if tracer.enabled:
            root.set(
                shards=len(topology.shards), halo_rows=topology.halo_rows
            )

        results: Dict[int, ShardInteriorResult] = {}
        num_workers = min(params.scheduler_workers, len(topology.shards))
        progress.phase(
            "shard_interiors",
            shards=len(topology.shards),
            halo_rows=topology.halo_rows,
            workers=num_workers,
        )
        if num_workers >= 1:
            results = _run_shard_pool(
                design, iparams, legalizer.reference, topology.shards,
                num_workers, stats, recorder,
            )
            missing = len(topology.shards) - len(results)
            stats["shard_fallbacks"] += missing
        for shard in topology.shards:
            if shard.index not in results:
                results[shard.index] = legalize_shard_interior(
                    design, iparams, legalizer.reference, shard
                )

        # Merge interior counters and emit per-shard observability in
        # shard order — everything below is derived from the results,
        # so it is identical for any worker count.
        for shard in topology.shards:
            result = results[shard.index]
            for key in _MERGED_STAT_KEYS:
                stats[key] += result.stats.get(key, 0)
            if tracer.enabled:
                with tracer.span("shard") as span:
                    span.set(
                        index=shard.index,
                        row_lo=shard.row_lo,
                        row_hi=shard.row_hi,
                        halo_lo=shard.halo_lo,
                        halo_hi=shard.halo_hi,
                        cells=len(shard.cells),
                        placed=len(result.positions),
                        deferred=len(result.deferred),
                    )
            if recorder is not None:
                recorder.registry.observe(
                    "shard.occupancy",
                    float(len(result.positions)),
                    SHARD_OCCUPANCY_BUCKETS,
                )
            progress.heartbeat(
                "shard",
                shard=shard.index,
                cells=len(shard.cells),
                placed=len(result.positions),
                deferred=len(result.deferred),
            )

        # Stitch: withhold halo-band residents and deferred cells;
        # commit everything else (provably conflict-free — interior
        # placements stay inside their halo-extended rects, which only
        # overlap inside the halo bands).
        placement = occupancy.placement
        bands = topology.halo_bands()
        keep: List[Tuple[int, int, int]] = []
        halo_resident: List[int] = []
        deferred: List[int] = []
        for shard in topology.shards:
            result = results[shard.index]
            deferred.extend(result.deferred)
            for cell, x, y in result.positions:
                height = design.cell_type_of(cell).height
                if _intersects_bands(y, height, bands):
                    halo_resident.append(cell)
                else:
                    keep.append((cell, x, y))
        keep.sort()
        for cell, x, y in keep:
            placement.move(cell, x, y)
            occupancy.add(cell)

        # Interior cells_placed counted the halo residents once; their
        # reconciliation placement will count them again, so the net
        # total stays exactly the number of movable cells.
        stats["cells_placed"] -= len(halo_resident)
        stats["shard_halo_cells"] += len(halo_resident)
        stats["shard_deferred"] += len(deferred)
        if recorder is not None:
            recorder.registry.count(
                "shard.halo_relegalized", len(halo_resident)
            )
            recorder.registry.count("shard.deferred", len(deferred))

        # Reconcile in the fixed global order against the stitched
        # full-die occupancy: ordinary unclamped legalize_cell, so a
        # deferred cell failing here raises exactly like the unsharded
        # path would for an over-full fence.
        reconcile = frozenset(halo_resident) | frozenset(deferred)
        order = [c for c in global_order if c in reconcile]
        stats["shard_reconciled"] += len(order)
        progress.phase(
            "reconcile",
            cells=len(order),
            halo=len(halo_resident),
            deferred=len(deferred),
        )
        total_movable = len(global_order)
        with tracer.span("reconcile") as span:
            if tracer.enabled:
                span.set(
                    cells=len(order),
                    halo=len(halo_resident),
                    deferred=len(deferred),
                )
            for cell in order:
                legalizer.legalize_cell(occupancy, cell)
                progress.cells(
                    stats["cells_placed"],
                    total_movable,
                    disp=disp_so_far(occupancy),
                )


def run_sharded_mgl(
    design: Design,
    params: LegalizerParams,
    recorder: Optional["PerfRecorder"] = None,
    tracer: Optional["NullTracer"] = None,
    progress: Optional["NullProgress"] = None,
) -> Tuple[Placement, "MGLegalizer"]:
    """Run the sharded path directly, for any shard count (including 1).

    :meth:`MGLegalizer.run` only routes here when ``params.shards > 1``;
    tests and benchmarks use this helper to exercise the ``shards=1``
    bit-identity contract against the plain sequential path.
    """
    from repro.core.mgl import MGLegalizer

    legalizer = MGLegalizer(
        design, params, recorder=recorder, tracer=tracer, progress=progress
    )
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    for cell in range(design.num_cells):
        if design.cells[cell].fixed:
            placement.move(cell, int(design.gp_x[cell]), int(design.gp_y[cell]))
            occupancy.add(cell)
    run_sharded(legalizer, occupancy)
    return placement, legalizer
