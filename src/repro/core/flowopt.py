"""Fixed-row-fixed-order optimization (paper §3.3, Eqs. 4-9).

With rows and per-row cell order frozen, the remaining freedom is a
horizontal shift per cell.  Minimizing the weighted total displacement
(plus, optionally, a weighted maximum-displacement term) subject to
ordering and boundary constraints is the LP of Eq. 4 / Eq. 8; the paper
solves its dual, a min-cost circulation on a graph with one node per cell
plus ``v_z`` (and ``v_p``/``v_n`` for the max-displacement extension,
Eq. 9).  The optimal node potentials *are* the primal positions:
``x_i = pi[v_z] - pi[v_i]``.

Compared to MrDP's formulation this graph has ``m + 3`` nodes instead of
``3m + 2`` (the per-cell auxiliary nodes are eliminated into single
edges), carries the height weights ``n_i`` of Eq. 2, and optimizes the
weighted max displacement simultaneously — the paper's three claimed
strengths.

Two backends are provided:

* ``"mcf"`` — our network simplex on the dual graph (the paper's method);
  all data is integer, so the recovered positions are exact sites.
* ``"lp"`` — ``scipy.optimize.linprog`` (HiGHS) on the primal, used for
  cross-validation and as a fallback for very large instances.

Edge-spacing requirements are folded into the pair constraints
(``x_i + w_i + gap_ij <= x_j``) and the §3.4 feasible ranges
``[l_i, r_i]`` keep cells clear of vertical rails and IO pins, with
``C_L = C_R = C`` as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.flow.graph import FlowGraph, INFINITE
from repro.flow.network_simplex import NetworkSimplex
from repro.model.placement import Placement

#: Integer scale for the height weights n_i = 1 / |C_h|.
WEIGHT_SCALE = 1 << 16


@dataclass
class FixedRowOrderProblem:
    """The frozen-row-and-order shift problem extracted from a placement.

    All x data is in integer sites.  ``cells[k]`` is the design cell index
    of variable ``k``; every other list is indexed by ``k``.
    """

    cells: List[int]
    weights: List[int]  # n_i, integer-scaled
    widths: List[int]
    gp_x: List[int]  # GP targets rounded to sites
    dy: List[int]  # y displacement in site-equivalents (constant here)
    lower: List[int]  # l_i
    upper: List[int]  # r_i (left-edge upper bound)
    pairs: List[Tuple[int, int, int]]  # (k_left, k_right, min_separation)

    def index_of(self) -> Dict[int, int]:
        return {cell: k for k, cell in enumerate(self.cells)}

    def current_x(self, placement: Placement) -> List[int]:
        return [placement.x[cell] for cell in self.cells]

    def objective(self, xs: List[int], n0: int) -> int:
        """Exact objective value of Eq. 8 (minimization form) at ``xs``."""
        total = 0
        max_right = 0
        max_left = 0
        for k, x in enumerate(xs):
            dx = x - self.gp_x[k]
            total += self.weights[k] * abs(dx)
            max_right = max(max_right, max(0, dx) + self.dy[k])
            max_left = max(max_left, max(0, -dx) + self.dy[k])
        return total + n0 * (max_right + max_left)

    def check_feasible(self, xs: List[int]) -> List[str]:
        """Constraint violations of a candidate solution (for tests)."""
        problems = []
        for k, x in enumerate(xs):
            if not (self.lower[k] <= x <= self.upper[k]):
                problems.append(f"var {k}: {x} outside [{self.lower[k]}, {self.upper[k]}]")
        for left, right, sep in self.pairs:
            if xs[left] + sep > xs[right]:
                problems.append(
                    f"pair ({left}, {right}): {xs[left]} + {sep} > {xs[right]}"
                )
        return problems


def build_problem(
    placement: Placement,
    params: Optional[LegalizerParams] = None,
    guard: Optional[RoutabilityGuard] = None,
) -> FixedRowOrderProblem:
    """Extract the stage-3 problem from a legal placement.

    Pair constraints come from row adjacency (deduplicated over rows,
    keeping the tightest separation); bounds start at segment limits,
    are tightened by adjacent fixed cells, and — when a guard is given —
    intersected with the violation-free feasible range of §3.4.
    """
    design = placement.design
    params = params or LegalizerParams()

    movable = design.movable_cells()
    index = {cell: k for k, cell in enumerate(movable)}
    n = len(movable)

    if params.height_weighted:
        counts: Dict[int, int] = {}
        for height, cells in design.cells_by_height().items():
            counts[height] = len(cells)
        weights = [
            max(1, round(WEIGHT_SCALE / counts[design.cell_type_of(c).height]))
            for c in movable
        ]
    else:
        weights = [1] * n

    y_to_sites = design.row_height / design.site_width
    widths = [design.cell_type_of(c).width for c in movable]
    gp_x = [int(round(design.gp_x[c])) for c in movable]
    dy = [
        int(round(abs(placement.y[c] - design.gp_y[c]) * y_to_sites))
        for c in movable
    ]
    lower = [0] * n
    upper = [0] * n

    # Row-wise sweep: ordering pairs and boundary bounds.
    pair_sep: Dict[Tuple[int, int], int] = {}
    per_row: Dict[int, List[Tuple[int, int]]] = {}
    for cell in range(design.num_cells):
        cell_type = design.cell_type_of(cell)
        x, y = placement.x[cell], placement.y[cell]
        for row in range(y, y + cell_type.height):
            per_row.setdefault(row, []).append((x, cell))

    seg_lo: Dict[int, int] = {}
    seg_hi: Dict[int, int] = {}
    for k, cell in enumerate(movable):
        lo = -(1 << 30)
        hi = 1 << 30
        x, y = placement.x[cell], placement.y[cell]
        for row in range(y, y + design.cell_type_of(cell).height):
            segment = design.segment_at(row, x)
            if segment is None:
                raise ValueError(
                    f"cell {cell} is not on a segment; legalize before stage 3"
                )
            lo = max(lo, segment.x_lo)
            hi = min(hi, segment.x_hi - widths[k])
        seg_lo[cell] = lo
        seg_hi[cell] = hi
        lower[k] = lo
        upper[k] = hi

    from repro.checker.routability import required_gap

    for row, spans in per_row.items():
        spans.sort()
        for (x_a, cell_a), (x_b, cell_b) in zip(spans, spans[1:]):
            gap = required_gap(design, cell_a, cell_b)
            sep_a = design.cell_type_of(cell_a).width + gap
            movable_a = not design.cells[cell_a].fixed
            movable_b = not design.cells[cell_b].fixed
            seg = design.segment_at(row, x_a)
            if seg is None or not (seg.x_lo <= x_b < seg.x_hi):
                # Cross-segment neighbors (sites are contiguous across a
                # fence boundary): freeze the boundary gap conservatively
                # so no new edge violation can appear there.
                if movable_a:
                    upper[index[cell_a]] = min(upper[index[cell_a]], x_b - sep_a)
                if movable_b:
                    lower[index[cell_b]] = max(lower[index[cell_b]], x_a + sep_a)
                continue
            if movable_a and movable_b:
                key = (index[cell_a], index[cell_b])
                pair_sep[key] = max(pair_sep.get(key, 0), sep_a)
            elif movable_a and not movable_b:
                k = index[cell_a]
                upper[k] = min(upper[k], x_b - sep_a)
            elif movable_b and not movable_a:
                k = index[cell_b]
                lower[k] = max(lower[k], x_a + sep_a)

    if guard is not None and params.routability:
        for k, cell in enumerate(movable):
            cell_type = design.cell_type_of(cell)
            left, right = guard.feasible_range(
                cell_type,
                placement.y[cell],
                placement.x[cell],
                seg_lo[cell],
                seg_hi[cell],
            )
            lower[k] = max(lower[k], left)
            upper[k] = min(upper[k], right)

    # The current placement must stay feasible (it is our fallback).
    for k, cell in enumerate(movable):
        lower[k] = min(lower[k], placement.x[cell])
        upper[k] = max(upper[k], placement.x[cell])

    pairs = [(a, b, sep) for (a, b), sep in sorted(pair_sep.items())]
    return FixedRowOrderProblem(
        cells=list(movable),
        weights=weights,
        widths=widths,
        gp_x=gp_x,
        dy=dy,
        lower=lower,
        upper=upper,
        pairs=pairs,
    )


# ----------------------------------------------------------------------
# MCF backend (the paper's dual formulation)
# ----------------------------------------------------------------------


def build_dual_graph(
    problem: FixedRowOrderProblem, n0: int
) -> Tuple[FlowGraph, int]:
    """Construct the Eq. 6/Eq. 9 min-cost circulation.

    Returns the graph and the node id of ``v_z``.  Node ``k`` is cell
    variable ``k``; ``v_z`` follows, then ``v_p`` and ``v_n`` when
    ``n0 > 0``.
    """
    n = len(problem.cells)
    graph = FlowGraph()
    for k in range(n):
        graph.add_node()
    v_z = graph.add_node()

    for k in range(n):
        target = problem.gp_x[k]
        weight = problem.weights[k]
        graph.add_edge(k, v_z, capacity=weight, cost=target, name=f"f+{k}")
        graph.add_edge(v_z, k, capacity=weight, cost=-target, name=f"f-{k}")
        graph.add_edge(v_z, k, capacity=INFINITE, cost=-problem.lower[k], name=f"fl{k}")
        graph.add_edge(k, v_z, capacity=INFINITE, cost=problem.upper[k], name=f"fr{k}")
    for left, right, sep in problem.pairs:
        graph.add_edge(left, right, capacity=INFINITE, cost=-sep,
                       name=f"fe{left}_{right}")

    if n0 > 0 and n > 0:
        v_p = graph.add_node()
        v_n = graph.add_node()
        max_dy = max(problem.dy)
        for k in range(n):
            graph.add_edge(
                k, v_p, capacity=INFINITE,
                cost=problem.gp_x[k] - problem.dy[k], name=f"fp{k}",
            )
            graph.add_edge(
                v_n, k, capacity=INFINITE,
                cost=-problem.gp_x[k] - problem.dy[k], name=f"fn{k}",
            )
        graph.add_edge(v_p, v_z, capacity=n0, cost=max_dy, name="fP")
        graph.add_edge(v_z, v_n, capacity=n0, cost=max_dy, name="fN")
    return graph, v_z


def solve_mcf(problem: FixedRowOrderProblem, n0: int) -> List[int]:
    """Solve the dual circulation and recover positions from potentials."""
    graph, v_z = build_dual_graph(problem, n0)
    result = NetworkSimplex(graph).solve()
    pi = result.potentials
    return [pi[v_z] - pi[k] for k in range(len(problem.cells))]


# ----------------------------------------------------------------------
# LP backend (validation / fallback)
# ----------------------------------------------------------------------


def solve_lp(problem: FixedRowOrderProblem, n0: int) -> List[int]:
    """Solve the primal Eq. 8 LP with scipy (HiGHS) and round to sites.

    The constraint matrix is totally unimodular with integer data, so the
    LP optimum is integral up to solver tolerance; rounding recovers it.
    """
    import numpy as np
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix

    n = len(problem.cells)
    if n == 0:
        return []
    # Variables: x (n), p (n), q (n), t_plus, t_minus.
    num_vars = 3 * n + 2
    cost = np.zeros(num_vars)
    cost[n : 2 * n] = problem.weights
    cost[2 * n : 3 * n] = problem.weights
    cost[3 * n] = n0
    cost[3 * n + 1] = n0

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs: List[float] = []
    row_id = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    for k in range(n):
        # x_k - p_k <= gp_k  (p_k >= x_k - gp_k)
        add_entry(row_id, k, 1.0)
        add_entry(row_id, n + k, -1.0)
        rhs.append(problem.gp_x[k])
        row_id += 1
        # -x_k - q_k <= -gp_k (q_k >= gp_k - x_k)
        add_entry(row_id, k, -1.0)
        add_entry(row_id, 2 * n + k, -1.0)
        rhs.append(-problem.gp_x[k])
        row_id += 1
        if n0 > 0:
            # t_plus >= (x_k - gp_k) + dy_k
            add_entry(row_id, k, 1.0)
            add_entry(row_id, 3 * n, -1.0)
            rhs.append(problem.gp_x[k] - problem.dy[k])
            row_id += 1
            # t_minus >= (gp_k - x_k) + dy_k
            add_entry(row_id, k, -1.0)
            add_entry(row_id, 3 * n + 1, -1.0)
            rhs.append(-problem.gp_x[k] - problem.dy[k])
            row_id += 1
    for left, right, sep in problem.pairs:
        add_entry(row_id, left, 1.0)
        add_entry(row_id, right, -1.0)
        rhs.append(-sep)
        row_id += 1

    matrix = coo_matrix((vals, (rows, cols)), shape=(row_id, num_vars))
    bounds = (
        [(problem.lower[k], problem.upper[k]) for k in range(n)]
        + [(0, None)] * (2 * n)
        + [(max(problem.dy, default=0), None)] * 2
    )
    solution = linprog(
        cost, A_ub=matrix, b_ub=rhs, bounds=bounds, method="highs"
    )
    if not solution.success:
        raise RuntimeError(f"stage-3 LP failed: {solution.message}")
    return [int(round(v)) for v in solution.x[:n]]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


@dataclass
class FlowOptStats:
    """What the stage-3 optimization achieved."""

    cells: int = 0
    moved: int = 0
    objective_before: int = 0
    objective_after: int = 0
    backend: str = "mcf"
    avg_disp_before: float = 0.0
    avg_disp_after: float = 0.0
    max_disp_before: float = 0.0
    max_disp_after: float = 0.0


def optimize_fixed_row_order(
    placement: Placement,
    params: Optional[LegalizerParams] = None,
    guard: Optional[RoutabilityGuard] = None,
    backend: str = "auto",
) -> FlowOptStats:
    """Run the stage-3 optimization in place.

    Args:
        placement: legal placement; x positions are updated in place
            (rows and per-row order never change).
        params: supplies ``flow_n0``, ``height_weighted``, routability.
        guard: used for §3.4 feasible ranges when routability is on.
        backend: ``"mcf"``, ``"lp"``, or ``"auto"`` (mcf up to 4000 cells,
            lp beyond — the pure-Python simplex is exact but slower).

    Returns:
        Before/after statistics; the solution is only applied when it
        does not worsen the exact objective (it cannot, barring solver
        failure, in which case the placement is left untouched).
    """
    params = params or LegalizerParams()
    design = placement.design
    if guard is None and params.routability:
        guard = RoutabilityGuard(design, params)
    problem = build_problem(placement, params, guard)
    stats = FlowOptStats(cells=len(problem.cells))
    if not problem.cells:
        return stats

    n0 = params.flow_n0 * (max(problem.weights) if problem.weights else 1)
    current = problem.current_x(placement)
    stats.objective_before = problem.objective(current, n0)
    movable = problem.cells
    disps = [placement.displacement(c) for c in movable]
    stats.max_disp_before = max(disps)
    stats.avg_disp_before = sum(disps) / len(disps)

    if backend == "auto":
        backend = "mcf" if len(problem.cells) <= 4000 else "lp"
    stats.backend = backend
    if backend == "mcf":
        solution = solve_mcf(problem, n0)
    elif backend == "lp":
        solution = solve_lp(problem, n0)
    else:
        raise ValueError(f"unknown stage-3 backend {backend!r}")

    if problem.check_feasible(solution):
        return stats  # Defensive: never apply an infeasible solution.
    stats.objective_after = problem.objective(solution, n0)
    if stats.objective_after > stats.objective_before:
        stats.objective_after = stats.objective_before
        return stats

    for k, cell in enumerate(problem.cells):
        if placement.x[cell] != solution[k]:
            placement.x[cell] = solution[k]
            stats.moved += 1

    disps = [placement.displacement(c) for c in movable]
    stats.max_disp_after = max(disps)
    stats.avg_disp_after = sum(disps) / len(disps)
    return stats
