"""HPWL-driven fixed-row-fixed-order optimization (MrDP-style).

The paper contrasts its displacement objective with MrDP's
wirelength-driven refinement [13] and notes that optimizing HPWL during
legalization "may disturb some other metrics optimized in GP" (§1).
This module implements that alternative objective on the same dual-MCF
substrate as :mod:`repro.core.flowopt`, so the trade-off can actually be
measured (see ``benchmarks/bench_ablation_objective.py``):

    minimize  K * sum_n w_n (R_n - L_n)  +  sum_i |x_i - x'_i|

with rows and per-row order frozen.  ``L_n``/``R_n`` are each net's
bounding-box edges in x; the displacement term (weight 1 against the
HPWL weight ``K``) acts as a tie-break that keeps cells near their GP
positions where HPWL is indifferent.

The LP is a pure difference system, so its dual is again a min-cost
flow: one node per cell, per net-L, per net-R, plus ``v_z``; net nodes
carry supplies ``±K w_n`` (the objective coefficients), ordering/bound
constraints become the same arcs as Eq. 6, and the optimal node
potentials are the primal positions, exactly as in §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.flowopt import FixedRowOrderProblem, build_problem
from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.flow.graph import FlowGraph, INFINITE
from repro.flow.network_simplex import NetworkSimplex
from repro.model.placement import Placement


@dataclass
class HpwlProblem:
    """A fixed-order problem plus net membership for the HPWL term.

    ``nets`` holds, per net, the list of ``(variable index, x offset in
    sites)`` pairs (offsets are pin/cell-center offsets from the cell's
    left edge) and a list of fixed terminal x positions in sites.
    """

    base: FixedRowOrderProblem
    nets: List[Tuple[List[Tuple[int, int]], List[int], int]] = field(
        default_factory=list
    )  # (pins, terminals, weight)

    def hpwl_x(self, xs: Sequence[int]) -> int:
        """x-component of HPWL (site units) at positions ``xs``."""
        total = 0
        for pins, terminals, weight in self.nets:
            points = [xs[k] + off for k, off in pins] + list(terminals)
            if len(points) >= 2:
                total += weight * (max(points) - min(points))
        return total

    def objective(self, xs: Sequence[int], hpwl_weight: int) -> int:
        disp = sum(
            self.base.weights[k] * abs(x - g)
            for k, (x, g) in enumerate(zip(xs, self.base.gp_x))
        )
        return hpwl_weight * self.hpwl_x(xs) + disp


def build_hpwl_problem(
    placement: Placement,
    params: Optional[LegalizerParams] = None,
    guard: Optional[RoutabilityGuard] = None,
) -> HpwlProblem:
    """Extract the HPWL variant of the stage-3 problem.

    Net pins anchor at cell centers (x offset = width/2 rounded), the
    standard HPWL approximation; nets entirely on fixed/absent cells are
    dropped.
    """
    design = placement.design
    base = build_problem(placement, params, guard)
    index = base.index_of()

    problem = HpwlProblem(base=base)
    for net in design.netlist.nets:
        pins: List[Tuple[int, int]] = []
        terminals = [
            int(round(t[0] / design.site_width)) for t in net.terminals
        ]
        for pin in net.pins:
            cell = pin.cell
            offset = design.cell_type_of(cell).width // 2
            if cell in index:
                pins.append((index[cell], offset))
            else:
                terminals.append(placement.x[cell] + offset)
        if len(pins) >= 1 and len(pins) + len(terminals) >= 2:
            problem.nets.append((pins, terminals, 1))
    return problem


def build_hpwl_dual_graph(
    problem: HpwlProblem, hpwl_weight: int
) -> Tuple[FlowGraph, int]:
    """The dual min-cost flow of the HPWL + displacement LP.

    Node potentials recover the variables as ``v = pi[v_z] - pi[node]``;
    net-L/net-R nodes carry supplies ``+K w`` / ``-K w`` (their objective
    coefficients enter the conservation equations), while the
    displacement term uses the capacitated ``f+/f-`` arc pair of Eq. 6.
    """
    base = problem.base
    n = len(base.cells)
    graph = FlowGraph()
    for _ in range(n):
        graph.add_node()
    v_z = graph.add_node()

    # Displacement term and bounds — identical to Eq. 6.
    for k in range(n):
        weight = base.weights[k]
        graph.add_edge(k, v_z, capacity=weight, cost=base.gp_x[k], name=f"f+{k}")
        graph.add_edge(v_z, k, capacity=weight, cost=-base.gp_x[k], name=f"f-{k}")
        graph.add_edge(v_z, k, capacity=INFINITE, cost=-base.lower[k], name=f"fl{k}")
        graph.add_edge(k, v_z, capacity=INFINITE, cost=base.upper[k], name=f"fr{k}")
    for left, right, sep in base.pairs:
        graph.add_edge(left, right, capacity=INFINITE, cost=-sep,
                       name=f"fe{left}_{right}")

    # Net bounding-box variables: supply +Kw at L (coefficient -Kw in the
    # minimization) and -Kw at R.
    for net_id, (pins, terminals, weight) in enumerate(problem.nets):
        supply = hpwl_weight * weight
        node_l = graph.add_node(supply=supply)
        node_r = graph.add_node(supply=-supply)
        for k, offset in pins:
            # L_n - x_k <= offset ; x_k - R_n <= -offset
            graph.add_edge(node_l, k, capacity=INFINITE, cost=offset,
                           name=f"nl{net_id}_{k}")
            graph.add_edge(k, node_r, capacity=INFINITE, cost=-offset,
                           name=f"nr{net_id}_{k}")
        for t in terminals:
            # L_n <= t ; R_n >= t  (against v_z, potential 0)
            graph.add_edge(node_l, v_z, capacity=INFINITE, cost=t,
                           name=f"ntl{net_id}_{t}")
            graph.add_edge(v_z, node_r, capacity=INFINITE, cost=-t,
                           name=f"ntr{net_id}_{t}")
    return graph, v_z


def solve_hpwl_mcf(problem: HpwlProblem, hpwl_weight: int) -> List[int]:
    """Solve the dual and read positions from potentials."""
    graph, v_z = build_hpwl_dual_graph(problem, hpwl_weight)
    result = NetworkSimplex(graph).solve()
    pi = result.potentials
    return [pi[v_z] - pi[k] for k in range(len(problem.base.cells))]


def solve_hpwl_lp(problem: HpwlProblem, hpwl_weight: int) -> List[int]:
    """scipy/HiGHS reference solution of the same LP."""
    import numpy as np
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix

    base = problem.base
    n = len(base.cells)
    m = len(problem.nets)
    if n == 0:
        return []
    # Variables: x (n), p (n), q (n), L (m), R (m).
    num_vars = 3 * n + 2 * m
    cost = np.zeros(num_vars)
    cost[n:2 * n] = base.weights
    cost[2 * n:3 * n] = base.weights
    for net_id, (_pins, _terms, weight) in enumerate(problem.nets):
        cost[3 * n + net_id] = -hpwl_weight * weight  # L enters as -L
        cost[3 * n + m + net_id] = hpwl_weight * weight

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs: List[float] = []

    def constraint(entries: List[Tuple[int, float]], bound: float) -> None:
        row_id = len(rhs)
        for col, val in entries:
            rows.append(row_id)
            cols.append(col)
            vals.append(val)
        rhs.append(bound)

    for k in range(n):
        constraint([(k, 1.0), (n + k, -1.0)], base.gp_x[k])
        constraint([(k, -1.0), (2 * n + k, -1.0)], -base.gp_x[k])
    for left, right, sep in base.pairs:
        constraint([(left, 1.0), (right, -1.0)], -sep)
    for net_id, (pins, _terminals, _weight) in enumerate(problem.nets):
        for k, offset in pins:
            constraint([(3 * n + net_id, 1.0), (k, -1.0)], offset)
            constraint([(k, 1.0), (3 * n + m + net_id, -1.0)], -offset)
    # Fixed terminals bound L from above and R from below directly.
    bounds = (
        [(base.lower[k], base.upper[k]) for k in range(n)]
        + [(0, None)] * (2 * n)
        + [
            (None, min(problem.nets[i][1]) if problem.nets[i][1] else None)
            for i in range(m)
        ]
        + [
            (max(problem.nets[i][1]) if problem.nets[i][1] else None, None)
            for i in range(m)
        ]
    )
    matrix = coo_matrix(
        (vals, (rows, cols)), shape=(len(rhs), num_vars)
    )
    solution = linprog(cost, A_ub=matrix, b_ub=rhs, bounds=bounds, method="highs")
    if not solution.success:
        raise RuntimeError(f"HPWL LP failed: {solution.message}")
    return [int(round(v)) for v in solution.x[:n]]


@dataclass
class HpwlOptStats:
    """Outcome of the HPWL-driven refinement."""

    cells: int = 0
    moved: int = 0
    hpwl_x_before: int = 0
    hpwl_x_after: int = 0
    disp_before: int = 0
    disp_after: int = 0


def optimize_hpwl_fixed_order(
    placement: Placement,
    params: Optional[LegalizerParams] = None,
    guard: Optional[RoutabilityGuard] = None,
    hpwl_weight: int = 100,
    backend: str = "mcf",
) -> HpwlOptStats:
    """Shift cells in x to minimize HPWL (with displacement tie-break).

    Rows and per-row order are preserved; the solution is applied only if
    feasible and non-worsening on the exact objective.
    """
    params = params or LegalizerParams()
    if guard is None and params.routability:
        guard = RoutabilityGuard(placement.design, params)
    problem = build_hpwl_problem(placement, params, guard)
    base = problem.base
    stats = HpwlOptStats(cells=len(base.cells))
    if not base.cells:
        return stats

    current = base.current_x(placement)
    stats.hpwl_x_before = problem.hpwl_x(current)
    stats.disp_before = sum(
        w * abs(x - g) for w, x, g in zip(base.weights, current, base.gp_x)
    )

    if backend == "mcf":
        solution = solve_hpwl_mcf(problem, hpwl_weight)
    elif backend == "lp":
        solution = solve_hpwl_lp(problem, hpwl_weight)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    if base.check_feasible(solution):
        return stats
    if problem.objective(solution, hpwl_weight) > problem.objective(
        current, hpwl_weight
    ):
        return stats

    for k, cell in enumerate(base.cells):
        if placement.x[cell] != solution[k]:
            placement.x[cell] = solution[k]
            stats.moved += 1
    after = base.current_x(placement)
    stats.hpwl_x_after = problem.hpwl_x(after)
    stats.disp_after = sum(
        w * abs(x - g) for w, x, g in zip(base.weights, after, base.gp_x)
    )
    return stats
