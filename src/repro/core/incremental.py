"""Incremental (ECO-style) legalization.

A natural extension of the paper's machinery: engineering change orders
add, resize, or move a handful of cells in an otherwise legal placement,
and rerunning full legalization would disturb thousands of already-good
positions.  MGL's window insertion is inherently incremental — it places
one cell into an existing legal context — so ECO legalization is: freeze
everything, rip up the affected cells, re-insert them with MGL windows,
then (optionally) run the two post-processing stages restricted to the
paper's semantics (they are global but position-preserving in spirit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.checker.legality import check_legal
from repro.core.mgl import MGLegalizer
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement


@dataclass
class IncrementalResult:
    """Outcome of one ECO pass."""

    placed: List[int] = field(default_factory=list)
    disturbed: List[int] = field(default_factory=list)  # cells that shifted
    total_disturbance_sites: int = 0


class IncrementalLegalizer:
    """Re-legalizes a subset of cells inside a legal placement.

    Usage::

        eco = IncrementalLegalizer(design, placement)
        eco.relegalize([cell_a, cell_b])        # rip up and re-insert
        eco.insert_new(cell_c)                  # a cell added to the design

    The placement is mutated in place; all untouched cells keep their
    positions unless a window spread shifts them (reported in the
    result).
    """

    def __init__(
        self,
        design: Design,
        placement: Placement,
        params: Optional[LegalizerParams] = None,
    ):
        self.design = design
        self.placement = placement
        self.params = params or LegalizerParams()
        self.legalizer = MGLegalizer(design, self.params)
        self._occupancy: Optional[Occupancy] = None

    def _occ(self) -> Occupancy:
        """Occupancy over every cell currently considered placed."""
        if self._occupancy is None:
            occupancy = Occupancy(self.design, self.placement)
            for cell in range(self.design.num_cells):
                occupancy.add(cell)
            self._occupancy = occupancy
        return self._occupancy

    # ------------------------------------------------------------------

    def relegalize(self, cells: Sequence[int]) -> IncrementalResult:
        """Rip up ``cells`` and re-insert them near their GP positions.

        Raises:
            ValueError: when a requested cell is fixed.
        """
        occupancy = self._occ()
        for cell in cells:
            if self.design.cells[cell].fixed:
                raise ValueError(f"cell {cell} is fixed; cannot rip up")
            occupancy.remove(cell)
        return self._insert(cells)

    def insert_new(self, cell: int) -> IncrementalResult:
        """Legalize a cell that has never been placed (freshly added).

        The caller must have grown the placement to cover the new cell
        (e.g. by constructing it after the cell was added, or appending
        to ``placement.x``/``placement.y``).  The cell's current
        placement coordinates are treated as garbage.
        """
        occupancy = self._occ()
        if occupancy.is_placed(cell):
            # The occupancy indexed the whole design, including this
            # not-really-placed cell; deregister its garbage position.
            occupancy.remove(cell)
        return self._insert([cell])

    # ------------------------------------------------------------------

    def _insert(self, cells: Iterable[int]) -> IncrementalResult:
        occupancy = self._occ()
        before = {
            other: (self.placement.x[other], self.placement.y[other])
            for other in range(self.design.num_cells)
        }
        result = IncrementalResult()
        order = sorted(
            cells,
            key=lambda c: (
                -self.design.cell_type_of(c).height,
                -self.design.cell_type_of(c).width,
                self.design.gp_x[c],
                c,
            ),
        )
        for cell in order:
            self.legalizer.legalize_cell(occupancy, cell)
            result.placed.append(cell)

        ripped = set(order)
        for other, (old_x, old_y) in before.items():
            if other in ripped:
                continue
            new_x, new_y = self.placement.x[other], self.placement.y[other]
            if (new_x, new_y) != (old_x, old_y):
                result.disturbed.append(other)
                result.total_disturbance_sites += abs(new_x - old_x)
        return result

    def verify(self) -> bool:
        """Convenience: is the current placement legal?"""
        return check_legal(self.placement).is_legal

    def verify_region(self, cells: Iterable[int]) -> bool:
        """Fast ECO check: only the constraints touching ``cells``."""
        from repro.checker.legality import check_legal_region

        return check_legal_region(self.placement, cells).is_legal
