"""Row occupancy: sorted per-row bookkeeping of already-placed cells.

MGL legalizes cells one at a time; this structure tracks which cells sit
where while the placement is being built, answers neighbor queries, and
applies the horizontal "spread" moves.  Multi-row cells are registered in
every row they span.  Fixed cells are registered up-front and behave as
obstacles.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.design import Design
from repro.model.placement import Placement


class Occupancy:
    """Mutable per-row index of placed cells, ordered by x.

    The structure mirrors (a subset of) a :class:`Placement`: call
    :meth:`add` when a cell is placed, :meth:`update_x` when it shifts
    horizontally, :meth:`remove` to un-place it.  Positions are read from
    and written to the backing placement, keeping the two consistent.
    """

    def __init__(self, design: Design, placement: Placement):
        self.design = design
        self.placement = placement
        # Per row: parallel arrays of x positions and cell ids, x-sorted.
        self._xs: List[List[int]] = [[] for _ in range(design.num_rows)]
        self._cells: List[List[int]] = [[] for _ in range(design.num_rows)]
        self._placed: Set[int] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, cell: int) -> None:
        """Register ``cell`` at its current placement position."""
        if cell in self._placed:
            raise ValueError(f"cell {cell} is already placed")
        x, y = self.placement.x[cell], self.placement.y[cell]
        height = self.design.cell_type_of(cell).height
        for row in range(y, y + height):
            index = self._insert_index(row, x, cell)
            self._xs[row].insert(index, x)
            self._cells[row].insert(index, cell)
        self._placed.add(cell)

    def remove(self, cell: int) -> None:
        """Unregister ``cell`` (its placement position is left untouched)."""
        if cell not in self._placed:
            raise ValueError(f"cell {cell} is not placed")
        x, y = self.placement.x[cell], self.placement.y[cell]
        height = self.design.cell_type_of(cell).height
        for row in range(y, y + height):
            index = self._find_index(row, x, cell)
            del self._xs[row][index]
            del self._cells[row][index]
        self._placed.discard(cell)

    def update_x(self, cell: int, new_x: int) -> None:
        """Shift ``cell`` horizontally, preserving its order in every row.

        The caller guarantees the shift does not reorder cells within any
        row (MGL's spreads never do); this is asserted cheaply.
        """
        old_x = self.placement.x[cell]
        if new_x == old_x:
            return
        y = self.placement.y[cell]
        height = self.design.cell_type_of(cell).height
        for row in range(y, y + height):
            index = self._find_index(row, old_x, cell)
            xs = self._xs[row]
            xs[index] = new_x
            if index > 0 and xs[index - 1] > new_x:
                raise AssertionError(
                    f"update_x would reorder row {row} (cell {cell})"
                )
            if index + 1 < len(xs) and xs[index + 1] < new_x:
                raise AssertionError(
                    f"update_x would reorder row {row} (cell {cell})"
                )
        self.placement.x[cell] = new_x

    def is_placed(self, cell: int) -> bool:
        return cell in self._placed

    @property
    def placed_cells(self) -> Set[int]:
        return set(self._placed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def row_cells(self, row: int) -> Sequence[int]:
        """Cells registered in ``row``, ordered by x."""
        return self._cells[row]

    def cells_in_range(self, row: int, x_lo: float, x_hi: float) -> List[int]:
        """Cells whose span intersects ``[x_lo, x_hi)`` on ``row``."""
        xs = self._xs[row]
        cells = self._cells[row]
        result: List[int] = []
        index = bisect_left(xs, x_lo)
        # The cell just left of x_lo may still reach into the range.
        if index > 0:
            cell = cells[index - 1]
            width = self.design.cell_type_of(cell).width
            if xs[index - 1] + width > x_lo:
                result.append(cell)
        while index < len(xs) and xs[index] < x_hi:
            result.append(cells[index])
            index += 1
        return result

    def left_neighbor(self, row: int, x: float, exclude: int = -1) -> Optional[int]:
        """The placed cell with the largest position strictly below ``x``."""
        xs = self._xs[row]
        index = bisect_left(xs, x)
        while index > 0:
            cell = self._cells[row][index - 1]
            if cell != exclude:
                return cell
            index -= 1
        return None

    def right_neighbor(self, row: int, x: float, exclude: int = -1) -> Optional[int]:
        """The placed cell with the smallest position at/above ``x``."""
        xs = self._xs[row]
        index = bisect_left(xs, x)
        while index < len(xs):
            cell = self._cells[row][index]
            if cell != exclude:
                return cell
            index += 1
        return None

    def neighbors_of(self, cell: int) -> Tuple[List[int], List[int]]:
        """Immediate (left, right) neighbor cells of ``cell`` over its rows."""
        x, y = self.placement.x[cell], self.placement.y[cell]
        height = self.design.cell_type_of(cell).height
        lefts: List[int] = []
        rights: List[int] = []
        for row in range(y, y + height):
            index = self._find_index(row, x, cell)
            if index > 0:
                lefts.append(self._cells[row][index - 1])
            if index + 1 < len(self._cells[row]):
                rights.append(self._cells[row][index + 1])
        return lefts, rights

    def verify_consistent(self) -> None:
        """Internal consistency check used by tests (O(total entries))."""
        for row in range(self.design.num_rows):
            xs = self._xs[row]
            cells = self._cells[row]
            assert len(xs) == len(cells)
            assert xs == sorted(xs), f"row {row} not sorted"
            for x, cell in zip(xs, cells):
                assert self.placement.x[cell] == x, (
                    f"row {row}: cell {cell} stale position"
                )
                y = self.placement.y[cell]
                height = self.design.cell_type_of(cell).height
                assert y <= row < y + height, f"cell {cell} in wrong row {row}"

    # ------------------------------------------------------------------

    def _insert_index(self, row: int, x: int, cell: int) -> int:
        """Insertion index keeping (x, cell) lexicographic stability."""
        xs = self._xs[row]
        index = bisect_left(xs, x)
        while index < len(xs) and xs[index] == x and self._cells[row][index] < cell:
            index += 1
        return index

    def _find_index(self, row: int, x: int, cell: int) -> int:
        """Index of ``cell`` in ``row`` given its current x."""
        xs = self._xs[row]
        cells = self._cells[row]
        index = bisect_left(xs, x)
        while index < len(xs) and xs[index] == x:
            if cells[index] == cell:
                return index
            index += 1
        raise KeyError(f"cell {cell} not found in row {row} at x={x}")


def build_occupancy(
    design: Design, placement: Placement, cells: Iterable[int]
) -> Occupancy:
    """Occupancy over a chosen subset of cells (e.g. the fixed ones)."""
    occupancy = Occupancy(design, placement)
    for cell in cells:
        occupancy.add(cell)
    return occupancy
