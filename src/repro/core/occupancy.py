"""Row occupancy: sorted per-row bookkeeping of already-placed cells.

MGL legalizes cells one at a time; this structure tracks which cells sit
where while the placement is being built, answers neighbor queries, and
applies the horizontal "spread" moves.  Multi-row cells are registered in
every row they span.  Fixed cells are registered up-front and behave as
obstacles.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.design import Design
from repro.model.placement import Placement

#: One occupancy mutation, as recorded in a :attr:`Occupancy.journal` and
#: shipped to parallel workers (see repro.core.parallel).  The op codes
#: are ``"a"`` (add: cell, x, y), ``"m"`` (move: cell, new_x, 0) and
#: ``"r"`` (remove: cell, 0, 0); the fixed 4-tuple shape keeps the
#: pickled delta stream compact and trivially versioned.
DeltaOp = Tuple[str, int, int, int]

#: Gate for the O(total entries) consistency sweep below.  Tests leave it
#: on (the default); benchmark harnesses turn it off so measured MGL time
#: is the algorithm, not the self-checks.  ``REPRO_EXPENSIVE_CHECKS=0``
#: disables it for whole processes (e.g. CI bench smoke runs).
_expensive_checks = os.environ.get("REPRO_EXPENSIVE_CHECKS", "1") != "0"


def set_expensive_checks(enabled: bool) -> bool:
    """Enable/disable :meth:`Occupancy.verify_consistent`; returns the old value."""
    global _expensive_checks
    previous = _expensive_checks
    _expensive_checks = enabled
    return previous


def expensive_checks_enabled() -> bool:
    """Whether :meth:`Occupancy.verify_consistent` actually runs."""
    return _expensive_checks


class Occupancy:
    """Mutable per-row index of placed cells, ordered by x.

    The structure mirrors (a subset of) a :class:`Placement`: call
    :meth:`add` when a cell is placed, :meth:`update_x` when it shifts
    horizontally, :meth:`remove` to un-place it.  Positions are read from
    and written to the backing placement, keeping the two consistent.
    """

    def __init__(self, design: Design, placement: Placement):
        self.design = design
        self.placement = placement
        # Per row: parallel arrays of x positions and cell ids, x-sorted.
        self._xs: List[List[int]] = [[] for _ in range(design.num_rows)]
        self._cells: List[List[int]] = [[] for _ in range(design.num_rows)]
        self._placed: Set[int] = set()
        # Monotone per-row mutation counters: every add/update_x/remove
        # bumps the counter of each row the cell spans.  Caches derived
        # from a row's contents (e.g. repro.core.insertion.GapCache) stay
        # valid exactly while the version they recorded is current.
        self._row_versions: List[int] = [0] * design.num_rows
        self._placed_view: Optional[FrozenSet[int]] = None
        self._widths = design.cell_widths
        self._heights = design.cell_heights
        #: Optional mutation log: while attached (see :meth:`set_journal`),
        #: every add/update_x/remove appends one :data:`DeltaOp`.  The
        #: parallel scheduler drains it to ship compact occupancy deltas
        #: to worker processes instead of full snapshots.
        self.journal: Optional[List[DeltaOp]] = None

    def set_journal(self, journal: Optional[List[DeltaOp]]) -> None:
        """Attach (or detach, with None) a mutation journal."""
        self.journal = journal

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, cell: int) -> None:
        """Register ``cell`` at its current placement position."""
        if cell in self._placed:
            raise ValueError(f"cell {cell} is already placed")
        if cell >= len(self._heights):
            # Cells were added to the design after this occupancy was
            # built; re-fetch the (design-cached) dimension arrays.
            self._widths = self.design.cell_widths
            self._heights = self.design.cell_heights
        x, y = self.placement.x[cell], self.placement.y[cell]
        height = self._heights[cell]
        for row in range(y, y + height):
            index = self._insert_index(row, x, cell)
            self._xs[row].insert(index, x)
            self._cells[row].insert(index, cell)
            self._row_versions[row] += 1
        self._placed.add(cell)
        self._placed_view = None
        if self.journal is not None:
            self.journal.append(("a", cell, x, y))

    def remove(self, cell: int) -> None:
        """Unregister ``cell`` (its placement position is left untouched)."""
        if cell not in self._placed:
            raise ValueError(f"cell {cell} is not placed")
        x, y = self.placement.x[cell], self.placement.y[cell]
        height = self._heights[cell]
        for row in range(y, y + height):
            index = self._find_index(row, x, cell)
            del self._xs[row][index]
            del self._cells[row][index]
            self._row_versions[row] += 1
        self._placed.discard(cell)
        self._placed_view = None
        if self.journal is not None:
            self.journal.append(("r", cell, 0, 0))

    def update_x(self, cell: int, new_x: int) -> None:
        """Shift ``cell`` horizontally, preserving its order in every row.

        The caller guarantees the shift does not reorder cells within any
        row (MGL's spreads never do); this is asserted cheaply.
        """
        old_x = self.placement.x[cell]
        if new_x == old_x:
            return
        y = self.placement.y[cell]
        height = self._heights[cell]
        for row in range(y, y + height):
            index = self._find_index(row, old_x, cell)
            xs = self._xs[row]
            xs[index] = new_x
            if index > 0 and xs[index - 1] > new_x:
                raise AssertionError(
                    f"update_x would reorder row {row} (cell {cell})"
                )
            if index + 1 < len(xs) and xs[index + 1] < new_x:
                raise AssertionError(
                    f"update_x would reorder row {row} (cell {cell})"
                )
            self._row_versions[row] += 1
        self.placement.x[cell] = new_x
        if self.journal is not None:
            self.journal.append(("m", cell, new_x, 0))

    def is_placed(self, cell: int) -> bool:
        return cell in self._placed

    @property
    def placed_cells(self) -> FrozenSet[int]:
        """Read-only view of the placed cell ids.

        The frozenset is cached and rebuilt lazily after the next
        :meth:`add`/:meth:`remove`, so repeated reads cost O(1) instead
        of copying the whole set on every access.
        """
        if self._placed_view is None:
            self._placed_view = frozenset(self._placed)
        return self._placed_view

    def row_version(self, row: int) -> int:
        """Mutation counter of ``row`` (see ``_row_versions`` above)."""
        return self._row_versions[row]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def row_cells(self, row: int) -> Sequence[int]:
        """Cells registered in ``row``, ordered by x."""
        return self._cells[row]

    def row_positions(self, row: int) -> Sequence[int]:
        """x positions of :meth:`row_cells`, parallel and x-sorted.

        Together with :meth:`row_version` this is the sync surface the
        structure-of-arrays mirror (repro.core.soa) snapshots from: a
        row's arrays are rebuilt exactly when its version moved.  The
        returned sequence is the live internal list — callers must not
        mutate it and must not hold it across occupancy mutations.
        """
        return self._xs[row]

    def cells_in_range(self, row: int, x_lo: float, x_hi: float) -> List[int]:
        """Cells whose span intersects ``[x_lo, x_hi)`` on ``row``."""
        xs = self._xs[row]
        cells = self._cells[row]
        result: List[int] = []
        index = bisect_left(xs, x_lo)
        # The cell just left of x_lo may still reach into the range.
        if index > 0:
            cell = cells[index - 1]
            if xs[index - 1] + self._widths[cell] > x_lo:
                result.append(cell)
        while index < len(xs) and xs[index] < x_hi:
            result.append(cells[index])
            index += 1
        return result

    def left_neighbor(self, row: int, x: float, exclude: int = -1) -> Optional[int]:
        """The placed cell with the largest position strictly below ``x``."""
        xs = self._xs[row]
        index = bisect_left(xs, x)
        while index > 0:
            cell = self._cells[row][index - 1]
            if cell != exclude:
                return cell
            index -= 1
        return None

    def right_neighbor(self, row: int, x: float, exclude: int = -1) -> Optional[int]:
        """The placed cell with the smallest position at/above ``x``."""
        xs = self._xs[row]
        index = bisect_left(xs, x)
        while index < len(xs):
            cell = self._cells[row][index]
            if cell != exclude:
                return cell
            index += 1
        return None

    def neighbors_of(self, cell: int) -> Tuple[List[int], List[int]]:
        """Immediate (left, right) neighbor cells of ``cell`` over its rows."""
        x, y = self.placement.x[cell], self.placement.y[cell]
        height = self._heights[cell]
        lefts: List[int] = []
        rights: List[int] = []
        for row in range(y, y + height):
            index = self._find_index(row, x, cell)
            if index > 0:
                lefts.append(self._cells[row][index - 1])
            if index + 1 < len(self._cells[row]):
                rights.append(self._cells[row][index + 1])
        return lefts, rights

    def verify_consistent(self) -> None:
        """Internal consistency check used by tests (O(total entries)).

        A no-op while the module-level gate is off (see
        :func:`set_expensive_checks`): benchmark paths disable it so the
        sweep never contaminates timing measurements.
        """
        if not _expensive_checks:
            return
        for row in range(self.design.num_rows):
            xs = self._xs[row]
            cells = self._cells[row]
            assert len(xs) == len(cells)
            assert xs == sorted(xs), f"row {row} not sorted"
            for x, cell in zip(xs, cells):
                assert self.placement.x[cell] == x, (
                    f"row {row}: cell {cell} stale position"
                )
                y = self.placement.y[cell]
                height = self._heights[cell]
                assert y <= row < y + height, f"cell {cell} in wrong row {row}"

    # ------------------------------------------------------------------

    def _insert_index(self, row: int, x: int, cell: int) -> int:
        """Insertion index keeping (x, cell) lexicographic stability."""
        xs = self._xs[row]
        index = bisect_left(xs, x)
        while index < len(xs) and xs[index] == x and self._cells[row][index] < cell:
            index += 1
        return index

    def _find_index(self, row: int, x: int, cell: int) -> int:
        """Index of ``cell`` in ``row`` given its current x."""
        xs = self._xs[row]
        cells = self._cells[row]
        index = bisect_left(xs, x)
        while index < len(xs) and xs[index] == x:
            if cells[index] == cell:
                return index
            index += 1
        raise KeyError(f"cell {cell} not found in row {row} at x={x}")


def build_occupancy(
    design: Design, placement: Placement, cells: Iterable[int]
) -> Occupancy:
    """Occupancy over a chosen subset of cells (e.g. the fixed ones)."""
    occupancy = Occupancy(design, placement)
    for cell in cells:
        occupancy.add(cell)
    return occupancy
