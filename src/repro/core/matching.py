"""Maximum-displacement optimization by bipartite matching (paper §3.2).

After MGL, cells placed late may sit far from their GP positions.  Within
each (cell type, fence region) group, any permutation of the group's
current positions is still legal and routability-neutral — same
footprint, same edges, same pin geometry, same fence — so a min-cost
perfect matching between cells and positions can cut the maximum
displacement while preserving the average.

The cost of assigning cell ``i`` to position ``j`` is ``phi(delta_ij)``
(Eq. 3): linear up to the threshold ``delta_0`` (preserving the average
displacement) and growing like ``delta^5`` beyond it (crushing outliers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import LegalizerParams
from repro.flow.assignment import min_cost_assignment
from repro.model.design import Design
from repro.model.placement import Placement

#: Fixed-point scale for displacement quantization in the exact backend.
PHI_SCALE = 16


def phi(delta: float, delta0: float) -> float:
    """The matching cost function of Eq. 3 (row-height units)."""
    if delta <= delta0:
        return delta
    return delta**5 / delta0**4


def phi_int(delta_scaled: int, delta0_scaled: int) -> int:
    """Integer-exact Eq. 3 on ``PHI_SCALE``-quantized displacements.

    Both pieces carry the common factor ``delta0_scaled**4`` so the two
    branches compare exactly: ``phi_int = delta * delta0^4`` below the
    threshold and ``delta^5`` above it.
    """
    if delta_scaled <= delta0_scaled:
        return delta_scaled * delta0_scaled**4
    return delta_scaled**5


def adaptive_delta0(placement: Placement) -> float:
    """Pick Eq. 3's threshold from the displacement distribution.

    The 90th percentile keeps ~90% of cells in the average-preserving
    linear region while the tail pays the ``delta^5`` price; never below
    one row height so near-perfect placements are left alone.
    """
    movable = placement.design.movable_cells()
    if not movable:
        return 1.0
    disps = sorted(placement.displacement(c) for c in movable)
    p90 = disps[min(len(disps) - 1, int(0.90 * len(disps)))]
    return max(1.0, p90)


@dataclass
class MatchingStats:
    """What the matching stage did."""

    groups: int = 0
    cells_considered: int = 0
    cells_moved: int = 0
    max_disp_before: float = 0.0
    max_disp_after: float = 0.0
    avg_disp_before: float = 0.0
    avg_disp_after: float = 0.0
    delta0: float = 0.0
    group_sizes: List[int] = field(default_factory=list)


def _group_cells(design: Design) -> Dict[Tuple[str, int], List[int]]:
    """Movable cells grouped by (cell type name, fence id)."""
    groups: Dict[Tuple[str, int], List[int]] = {}
    for cell in design.movable_cells():
        key = (design.cell_type_of(cell).name, design.fence_of(cell))
        groups.setdefault(key, []).append(cell)
    return groups


def _chunk_by_displacement(
    placement: Placement, cells: List[int], max_group: int
) -> List[List[int]]:
    """Split an oversized group into chunks, worst offenders first.

    Matching is cubic in the group size, so huge groups are partitioned;
    sorting by displacement keeps the cells that most need relief in the
    same chunk as the positions they want to trade for.
    """
    if len(cells) <= max_group:
        return [cells]
    ordered = sorted(cells, key=lambda c: (-placement.displacement(c), c))
    return [ordered[i : i + max_group] for i in range(0, len(ordered), max_group)]


def _match_group(
    placement: Placement,
    cells: Sequence[int],
    delta0: float,
    backend: str,
) -> int:
    """Optimally permute one group's positions; returns #cells moved."""
    design = placement.design
    positions = [(placement.x[c], placement.y[c]) for c in cells]
    xu = design.x_unit_rows
    n = len(cells)

    if backend == "flow":
        delta0_scaled = max(1, int(round(delta0 * PHI_SCALE)))
        costs: List[List[int]] = []
        for cell in cells:
            gx, gy = design.gp_x[cell], design.gp_y[cell]
            row = []
            for px, py in positions:
                delta = abs(px - gx) * xu + abs(py - gy)
                row.append(phi_int(int(round(delta * PHI_SCALE)), delta0_scaled))
            costs.append(row)
        columns = min_cost_assignment(costs, backend="flow").columns
    else:
        import numpy as np
        from scipy.optimize import linear_sum_assignment

        gx = np.array([design.gp_x[c] for c in cells])
        gy = np.array([design.gp_y[c] for c in cells])
        px = np.array([p[0] for p in positions], dtype=float)
        py = np.array([p[1] for p in positions], dtype=float)
        delta = np.abs(px[None, :] - gx[:, None]) * xu + np.abs(
            py[None, :] - gy[:, None]
        )
        matrix = np.where(delta <= delta0, delta, delta**5 / delta0**4)
        row_indices, col_indices = linear_sum_assignment(matrix)
        columns = [0] * n
        for row_index, col_index in zip(row_indices, col_indices):
            columns[int(row_index)] = int(col_index)

    moved = 0
    for index, cell in enumerate(cells):
        new_x, new_y = positions[columns[index]]
        if (new_x, new_y) != (placement.x[cell], placement.y[cell]):
            placement.move(cell, new_x, new_y)
            moved += 1
    return moved


def optimize_max_displacement(
    placement: Placement,
    params: Optional[LegalizerParams] = None,
    backend: str = "scipy",
) -> MatchingStats:
    """Run the §3.2 matching stage in place.

    Args:
        placement: a legal placement; mutated in place.
        params: supplies ``matching_delta0`` and ``matching_max_group``.
        backend: ``"scipy"`` (dense float64 Hungarian, the fast default)
            or ``"flow"`` (the paper's exact integer MCF formulation).

    Returns:
        Statistics including before/after max and average displacement.

    The permutation-only structure guarantees the output is exactly as
    legal and routable as the input.
    """
    params = params or LegalizerParams()
    design = placement.design
    stats = MatchingStats()

    movable = design.movable_cells()
    if movable:
        disps = [placement.displacement(c) for c in movable]
        stats.max_disp_before = max(disps)
        stats.avg_disp_before = sum(disps) / len(disps)

    delta0 = params.matching_delta0
    if delta0 is None:
        delta0 = adaptive_delta0(placement)
    stats.delta0 = delta0

    groups = _group_cells(design)
    for key in sorted(groups):
        cells = groups[key]
        if len(cells) < 2:
            continue
        for chunk in _chunk_by_displacement(
            placement, cells, params.matching_max_group
        ):
            if len(chunk) < 2:
                continue
            stats.groups += 1
            stats.group_sizes.append(len(chunk))
            stats.cells_considered += len(chunk)
            stats.cells_moved += _match_group(placement, chunk, delta0, backend)

    if movable:
        disps = [placement.displacement(c) for c in movable]
        stats.max_disp_after = max(disps)
        stats.avg_disp_after = sum(disps) / len(disps)
    return stats
