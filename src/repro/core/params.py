"""Tunable parameters of the legalization flow.

All knobs referenced in the paper are collected here so benchmarks and
ablations can sweep them: the MGL window geometry and expansion policy
(§3.1), the matching threshold ``delta_0`` of Eq. 3 (§3.2), the
max-vs-average weight ``n_0`` of Eq. 8 (§3.3.1), routability penalties
(§3.4), and the scheduler's batch capacity (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class LegalizerParams:
    """Parameters of the three-stage legalizer.

    Attributes:
        window_width: initial MGL window width in sites.
        window_height: initial MGL window height in rows.
        window_expand: multiplicative growth per failed insertion attempt.
        max_expansions: attempts before MGL gives up on a cell (an error;
            indicates an over-full fence region).
        height_weighted: weigh displacement by ``1/|C_h|`` per Eq. 2
            during MGL (True) or uniformly (False, the Table 2 setting).
        use_matching: run the §3.2 max-displacement matching stage.
        use_flow_opt: run the §3.3 fixed-row-fixed-order MCF stage.
        use_global_moves: run the rip-up-and-reinsert refinement after
            the paper's three stages (an extension, off by default; see
            repro.core.globalmove).
        matching_delta0: tolerable max-displacement threshold ``delta_0``
            in Eq. 3 (row-height units); None picks it adaptively as the
            90th percentile of the current displacement distribution, so
            the linear region preserves the average while the ``delta^5``
            region crushes the outliers.
        matching_max_group: largest (type, fence) group matched exactly;
            bigger groups are split by displacement-first chunks.
        flow_n0: weight ``n_0`` of the max-displacement term in Eq. 8
            (in units of one cell's weight; height weights are scaled to
            exact integers internally, see repro.core.flowopt).
        routability: honor rails/IO pins during MGL and restrict stage-3
            ranges to violation-free intervals (§3.4).
        io_penalty: added insertion cost per IO-pin conflict.
        blocked_penalty: added cost when no rail-clean x exists nearby.
        guard_max_shift: how far (sites) MGL may walk from the curve
            optimum to clear a vertical-rail conflict.
        feasible_range_limit: cap (sites per side) on the stage-3
            violation-free range growth around each cell.
        max_insertion_points: cap on gap combinations per bottom row.
        max_gaps_per_row: keep only this many candidate gaps per row
            (nearest the GP x first); bounds work in expanded windows.
        prune_margin: slack (row-height units) added to the incumbent cost
            when pruning insertion points by the target-only lower bound;
            covers local-cell displacement *reductions* the bound ignores.
        scheduler_capacity: max simultaneously processed windows (the
            ``L_p`` capacity of §3.5); determinism holds for any value.
            The default of 1 is plain sequential MGL — Python gains no
            wall-clock from batching (GIL), so the scheduler is for
            reproducing the paper's determinism claim, not for speed.
        scheduler_threads: thread-pool size for the scheduler's
            evaluation phase (0/1 = no pool).  Results are identical with
            or without threads; see repro.core.scheduler.
        scheduler_workers: *process*-pool size for the scheduler's
            evaluation phase (0 = in-process).  Unlike the GIL-bound
            thread pool this buys real wall-clock speedup on multicore
            hardware; placements are bit-identical to the in-process
            path for any worker count (see repro.core.parallel).  Takes
            precedence over ``scheduler_threads`` when both are set.
            When ``shards > 1`` this is reused as the *shard* process
            pool size instead (see repro.core.shard).
        shards: number of fence-aware row-band shards MGL partitions
            the die into (see repro.core.shard).  1 (the default) is
            the unsharded path; >1 legalizes shard interiors
            independently — in ``scheduler_workers`` processes when set
            — then reconciles halo-resident cells deterministically.
            For a fixed topology the placement is bit-identical for any
            worker count; changing the shard count is a *topology*
            change and legitimately moves cells near band boundaries.
            Shard interiors always run the plain sequential MGL loop;
            the §3.5 scheduler applies to the unsharded path only.
        shard_halo_rows: rows of halo added to each side of a shard's
            band; interiors may place into the halo, and every cell
            landing within this many rows of a band boundary is
            re-legalized full-die during reconciliation.
        seed_order: cell-ordering strategy for MGL
            ("height_area_x" | "gp_x" | "input").
        candidate_order: insertion-point evaluation strategy inside
            ``MGLegalizer.evaluate_insert``.  ``"best_first"`` pushes the
            enumerated ``(bottom_row, gaps)`` combinations through a
            lower-bound-ordered heap so the incumbent tightens early and
            the bound prunes most exact evaluations; ``"linear"``
            evaluates every enumerated candidate and then applies the
            identical bound-ordered selection rule.  Both produce
            bit-identical placements (see
            tests/test_perf_equivalence.py); best_first is simply
            faster.
        use_gap_cache: memoize per-row gap enumeration across the
            overlapping bottom rows of multi-row targets and across
            scheduler re-evaluations, invalidated by occupancy row
            versions (see repro.core.insertion.GapCache).  Results are
            identical with or without the cache.
        eval_backend: insertion-evaluation backend.  ``"vector"`` (the
            default) routes ``InsertionContext.evaluate`` through the
            structure-of-arrays fast path (repro.core.soa): per-run
            prefix-sum push analysis, vectorized lower bounds, and
            batched CurveSet/guard probes.  ``"scalar"`` keeps the
            original per-candidate walk and is the oracle: both
            backends produce bit-identical placements and identical
            ``insertions_evaluated`` counts (property-tested in
            tests/test_soa_equivalence.py), exactly like the
            ``candidate_order`` contract.
    """

    window_width: int = 40
    window_height: int = 10
    window_expand: float = 1.6
    max_expansions: int = 12
    height_weighted: bool = False
    use_matching: bool = True
    use_flow_opt: bool = True
    use_global_moves: bool = False
    matching_delta0: Optional[float] = None
    matching_max_group: int = 600
    flow_n0: int = 4
    routability: bool = True
    io_penalty: float = 10.0
    blocked_penalty: float = 50.0
    guard_max_shift: int = 12
    feasible_range_limit: int = 64
    max_insertion_points: int = 128
    max_gaps_per_row: int = 12
    prune_margin: float = 2.0
    scheduler_capacity: int = 1
    scheduler_threads: int = 0
    scheduler_workers: int = 0
    shards: int = 1
    shard_halo_rows: int = 2
    seed_order: str = "height_area_x"
    candidate_order: str = "best_first"
    use_gap_cache: bool = True
    eval_backend: str = "vector"

    def validate(self) -> None:
        """Raise :class:`ValueError` on out-of-range settings."""
        if self.window_width <= 0 or self.window_height <= 0:
            raise ValueError("window dimensions must be positive")
        if self.window_expand <= 1.0:
            raise ValueError("window_expand must exceed 1.0")
        if self.max_expansions < 1:
            raise ValueError("max_expansions must be at least 1")
        if self.matching_delta0 is not None and self.matching_delta0 <= 0:
            raise ValueError("matching_delta0 must be positive")
        if self.flow_n0 < 0:
            raise ValueError("flow_n0 must be non-negative")
        if self.seed_order not in ("height_area_x", "gp_x", "input"):
            raise ValueError(f"unknown seed_order {self.seed_order!r}")
        if self.scheduler_capacity < 1:
            raise ValueError("scheduler_capacity must be at least 1")
        if self.scheduler_threads < 0:
            raise ValueError("scheduler_threads must be non-negative")
        if self.scheduler_workers < 0:
            raise ValueError("scheduler_workers must be non-negative")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shard_halo_rows < 0:
            raise ValueError("shard_halo_rows must be non-negative")
        if self.candidate_order not in ("best_first", "linear"):
            raise ValueError(f"unknown candidate_order {self.candidate_order!r}")
        if self.eval_backend not in ("vector", "scalar"):
            raise ValueError(f"unknown eval_backend {self.eval_backend!r}")
