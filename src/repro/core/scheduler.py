"""Deterministic multi-window scheduler (paper §3.5).

The paper parallelizes MGL by processing non-overlapping windows
simultaneously: a scheduler keeps a processing list ``L_p`` (bounded
capacity) and a waiting list ``L_w``; windows that fail get expanded and
re-queued.  Because the scheduler synchronizes after every batch and
selects windows deterministically, the outcome is identical for any
thread count once the ``L_p`` capacity is fixed.

Our reproduction keeps exactly that structure.  Batch members are
pairwise non-overlapping; their insertions are **evaluated** against the
frozen batch-start occupancy — optionally on a thread pool
(``scheduler_threads``) or, for real wall-clock speedup, on a process
pool (``scheduler_workers``; see :mod:`repro.core.parallel`) — and then
**applied** serially in selection order.  Since pushes may exit a window
(up to the nearest wall), each application first verifies the evaluated
moves are still conflict-free and silently re-evaluates when an earlier
batch member interfered.  The result is therefore a pure function of
the batch order — deterministic regardless of thread/process timing,
the property the paper claims.  Python's GIL means the *thread* pool is
about structure, not speed; the *process* pool is the one that scales
with cores, at bit-identical placements.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.core.insertion import EvaluatedInsertion
from repro.core.mgl import (
    LegalizationError,
    MGLegalizer,
    disp_so_far,
    evaluation_span_payload,
    mgl_cell_order,
)
from repro.core.occupancy import Occupancy
from repro.model.geometry import Rect
from repro.obs.metrics import BATCH_OCCUPANCY_BUCKETS, BATCH_WIDTH_BUCKETS
from repro.obs.tracer import SpanPayload

if TYPE_CHECKING:
    from repro.core.parallel import ParallelEvaluator

#: One batch member's evaluation: the insertion (or None) plus, when a
#: tracer is enabled, the ``evaluate`` span payload that produced it.
EvalOutcome = Tuple[Optional[EvaluatedInsertion], Optional[SpanPayload]]


class WindowScheduler:
    """Batches non-overlapping MGL windows with bounded capacity."""

    def __init__(self, legalizer: MGLegalizer, occupancy: Occupancy):
        self.legalizer = legalizer
        self.occupancy = occupancy
        self.capacity = legalizer.params.scheduler_capacity
        self.threads = legalizer.params.scheduler_threads
        self.workers = legalizer.params.scheduler_workers
        self.batches_run = 0
        self.reevaluations = 0
        #: Live process-pool backend, when ``scheduler_workers`` >= 1
        #: and the pool came up (see :meth:`run`).
        self.parallel: Optional["ParallelEvaluator"] = None

    def run(self) -> None:
        """Process every movable cell to completion.

        Raises:
            LegalizationError: propagated from the legalizer when a cell
                cannot be placed at the maximum window size.
        """
        legalizer = self.legalizer
        params = legalizer.params
        waiting: Deque[Tuple[int, float, int]] = deque(
            (cell, 1.0, 0) for cell in mgl_cell_order(legalizer.design, params)
        )
        total_cells = len(waiting)
        progress = legalizer.progress
        progress.phase(
            "mgl_scheduler",
            cells=total_cells,
            capacity=self.capacity,
            workers=self.workers,
        )
        pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=self.threads)
            if self.threads > 1 and self.workers == 0
            else None
        )
        parallel = None
        if self.workers >= 1:
            from repro.core.parallel import ParallelEvaluator, ParallelUnavailable

            try:
                parallel = ParallelEvaluator(
                    legalizer,
                    self.occupancy,
                    self.workers,
                    recorder=legalizer.recorder,
                )
            except ParallelUnavailable:
                # Degrade to the (identical-output) in-process path.
                parallel = None
        self.parallel = parallel

        tracer = legalizer.tracer
        try:
            while waiting:
                batch, waiting = self._select_batch(waiting)
                self.batches_run += 1
                if legalizer.recorder is not None:
                    legalizer.recorder.registry.observe(
                        "scheduler.batch_occupancy",
                        float(len(batch)),
                        BATCH_OCCUPANCY_BUCKETS,
                    )
                with tracer.span("batch") as batch_span:
                    if tracer.enabled:
                        batch_span.set(size=len(batch))
                    evaluations = self._evaluate_batch(batch, pool)
                    for (cell, scale, attempts, window), (
                        insertion, payload
                    ) in zip(batch, evaluations):
                        with tracer.cell_span("window", cell) as span:
                            # The payload gate mirrors cell_span's
                            # sampling decision: worker processes build
                            # payloads for every member, but only
                            # sampled cells' spans join the tree.
                            if payload is not None and tracer.sampled(cell):
                                tracer.attach_payloads([payload])
                            if insertion is not None and not self._still_valid(
                                cell, insertion
                            ):
                                # An earlier batch member's spread
                                # interfered; redo this one against the
                                # current state.
                                self.reevaluations += 1
                                insertion = legalizer.traced_evaluate(
                                    self.occupancy, cell, window, reeval=True
                                )
                            if insertion is not None:
                                legalizer.apply_insertion(
                                    self.occupancy, cell, insertion
                                )
                                legalizer.finish_window_span(
                                    span, cell, window, attempts, insertion,
                                    self.occupancy.placement,
                                )
                                legalizer.observe_expansions(attempts)
                                continue
                            legalizer.stats["window_expansions"] += 1
                            attempts += 1
                            if attempts >= params.max_expansions:
                                # Final attempt at chip scale,
                                # synchronously and exhaustively.
                                chip = legalizer.design.chip_rect
                                insertion = legalizer.traced_evaluate(
                                    self.occupancy, cell, chip,
                                    exhaustive=True,
                                )
                                if insertion is None:
                                    raise LegalizationError(
                                        f"cell {cell} cannot be placed; "
                                        f"fence "
                                        f"{legalizer.design.fence_of(cell)} "
                                        f"appears over-full"
                                    )
                                legalizer.apply_insertion(
                                    self.occupancy, cell, insertion
                                )
                                legalizer.finish_window_span(
                                    span, cell, chip, attempts, insertion,
                                    self.occupancy.placement, exhaustive=True,
                                )
                                legalizer.observe_expansions(attempts)
                            else:
                                # Re-queue at the front: a failed (usually
                                # large) cell must not fall behind the
                                # small cells that would otherwise fragment
                                # its remaining space.
                                if span.recording:
                                    span.set(cell=cell, requeued=True)
                                waiting.appendleft(
                                    (cell, scale * params.window_expand,
                                     attempts)
                                )
                if progress.enabled:
                    alive = (
                        sum(1 for w in self.parallel.workers if w.alive)
                        if self.parallel is not None
                        else 0
                    )
                    progress.cells(
                        legalizer.stats["cells_placed"],
                        total_cells,
                        disp=disp_so_far(self.occupancy),
                        batches=self.batches_run,
                        reevals=self.reevaluations,
                        deferred=len(waiting),
                        workers_alive=alive,
                    )
            legalizer.stats["scheduler_batches"] = self.batches_run
            legalizer.stats["scheduler_reevaluations"] = self.reevaluations
        finally:
            if pool is not None:
                pool.shutdown(wait=False)
            if parallel is not None:
                parallel.close()

    # ------------------------------------------------------------------

    def _select_batch(
        self, waiting: Deque[Tuple[int, float, int]]
    ) -> Tuple[List[Tuple[int, float, int, Rect]], Deque[Tuple[int, float, int]]]:
        """Fill L_p: first-fit scan of L_w for pairwise-disjoint windows."""
        legalizer = self.legalizer
        batch: List[Tuple[int, float, int, Rect]] = []
        batch_windows: List[Rect] = []
        deferred: Deque[Tuple[int, float, int]] = deque()
        while waiting and len(batch) < self.capacity:
            cell, scale, attempts = waiting.popleft()
            window = legalizer.initial_window(cell, scale)
            if any(window.overlaps(other) for other in batch_windows):
                deferred.append((cell, scale, attempts))
                continue
            batch.append((cell, scale, attempts, window))
            batch_windows.append(window)
        # Anything skipped during selection stays at the queue front,
        # preserving the deterministic order.
        while waiting:
            deferred.append(waiting.popleft())
        return batch, deferred

    def _evaluate_batch(
        self,
        batch: List[Tuple[int, float, int, Rect]],
        pool: Optional[ThreadPoolExecutor],
    ) -> List[EvalOutcome]:
        """Evaluate all members against the frozen batch-start state.

        Returns one ``(insertion, payload)`` pair per batch member; the
        payload is the member's ``evaluate`` span and stays None when no
        tracer is enabled.  Whichever backend runs the evaluation —
        worker process, thread pool, or in-process — the payload is the
        same pure function of the task, so the trace structure never
        depends on the backend.

        The in-process path hands the whole batch to
        :meth:`MGLegalizer.evaluate_insert_many`, so members share the
        legalizer's SoA mirror (row snapshots built for one window are
        reused by later members) and the batch width lands in the
        ``mgl.batch_width`` histogram; the pool paths observe the same
        width so the distribution stays backend-independent.
        """
        legalizer = self.legalizer
        traced = legalizer.tracer.enabled
        parallel = self.parallel
        if parallel is not None and len(batch) > 1:
            if parallel.active:
                self._observe_batch_width(len(batch))
                return parallel.evaluate_batch(batch, want_payloads=traced)
            # Every worker failed earlier; continue serially for the
            # rest of the run (identical placements either way).
            parallel.close()
            self.parallel = None
        if pool is None or len(batch) <= 1:
            results = legalizer.evaluate_insert_many(
                self.occupancy,
                [(cell, window) for cell, _scale, _attempts, window in batch],
                cache=legalizer.gap_cache,
            )
            for _best, points in results:
                legalizer.stats["insertions_evaluated"] += points
            return [
                (
                    best,
                    evaluation_span_payload(points, best)
                    if traced and legalizer.tracer.sampled(cell)
                    else None,
                )
                for (cell, _scale, _attempts, _window), (best, points)
                in zip(batch, results)
            ]
        # Submit the pure evaluation (not try_insert: its stats update is
        # a shared-state write) and fold the counts back in serially.  The
        # SoA mirror is resolved *here*, on the scheduler thread, so the
        # memo write happens before any pool thread reads it; the mirror's
        # per-row snapshots are thread-local, making the shared instance
        # safe to read concurrently.
        self._observe_batch_width(len(batch))
        soa = legalizer.soa_for(self.occupancy)
        futures = [
            pool.submit(legalizer.evaluate_insert, self.occupancy, cell,
                        window, soa=soa)
            for cell, _scale, _attempts, window in batch
        ]
        results = [future.result() for future in futures]
        for _best, evaluated_points in results:
            legalizer.stats["insertions_evaluated"] += evaluated_points
        return [
            (
                best,
                evaluation_span_payload(points, best)
                if traced and legalizer.tracer.sampled(cell)
                else None,
            )
            for (cell, _scale, _attempts, _window), (best, points)
            in zip(batch, results)
        ]

    def _observe_batch_width(self, width: int) -> None:
        """Mirror ``evaluate_insert_many``'s histogram on the pool paths.

        The process/thread backends fan batch members out one task at a
        time, so the batched entry point never sees them; observing the
        width here keeps the ``mgl.batch_width`` distribution identical
        across backends (the metrics determinism contract).
        """
        if self.legalizer.recorder is not None:
            self.legalizer.recorder.registry.observe(
                "mgl.batch_width", float(width), BATCH_WIDTH_BUCKETS
            )

    def _still_valid(self, target: int, insertion: EvaluatedInsertion) -> bool:
        """Check the evaluated moves against the *current* occupancy.

        Every planned span (spread moves plus the target itself) must be
        overlap-free and edge-spacing-clean against cells outside the
        plan; planned cells are consistent among themselves by
        construction.
        """
        from repro.checker.routability import required_gap

        design = self.legalizer.design
        placement = self.occupancy.placement
        planned: Dict[int, Tuple[int, int]] = {
            cell: (new_x, placement.y[cell]) for cell, new_x in insertion.moves
        }
        planned[target] = (insertion.x, insertion.y)

        for cell, (x, y) in planned.items():
            cell_type = design.cell_type_of(cell)
            for row in range(y, y + cell_type.height):
                for other in self.occupancy.cells_in_range(
                    row, x - 64, x + cell_type.width + 64
                ):
                    if other == cell or other in planned:
                        continue
                    other_x = placement.x[other]
                    other_w = design.cell_type_of(other).width
                    if other_x < x:
                        if other_x + other_w + required_gap(
                            design, other, cell
                        ) > x:
                            return False
                    else:
                        if x + cell_type.width + required_gap(
                            design, cell, other
                        ) > other_x:
                            return False
        return True
