"""Structure-of-arrays mirror of the MGL insertion hot path.

The scalar evaluation in :mod:`repro.core.insertion` walks Python
objects per candidate: a BFS over neighbor queries, per-cell dict
updates, and per-cell wall checks.  For the dominant candidate shape —
a height-1 target inserted into a run of height-1 local cells — the
whole push analysis collapses into integer prefix sums over the run:

* Let the run be ``c_0 .. c_{n-1}`` (x-sorted local cells between two
  walls) and ``t_k = w(c_k) + edge_gap(c_k, c_{k+1})`` the mandatory
  pitch between neighbors.  With ``Q[j] = sum(t[:j])``:

  - pushing right from gap ``gi`` (target left of ``c_gi``) gives chain
    offsets ``offset(c_j) = w_t + eg(target, c_gi) + Q[j] - Q[gi]`` for
    ``j >= gi`` — exactly the longest-path offsets of the scalar BFS,
    because the push DAG of a single-row run is the chain itself;
  - the extreme (wall-limited) positions are gap-independent:
    ``ext_r[k] = wall_base_r - w(c_{n-1}) - sum(t[k:])`` and
    ``ext_l[k] = wall_base_l + Q[k]``, with the wall bases computed by
    the same cross-boundary edge rules the scalar walk applies;
  - feasibility of a push from ``gi`` is a suffix/prefix minimum of
    ``ext - x`` — precomputed once per run, O(1) per candidate.

Every quantity is integer arithmetic, so the results are bit-identical
to the scalar walk regardless of evaluation order; the scalar path's
``1e-9`` wall tolerance is exact on integers (``ext < x - 1e-9`` iff
``ext < x``).  Candidates outside the fast shape (multi-row targets,
runs containing multi-row or out-of-segment cells) fall back to the
scalar evaluator, keeping the two backends' outputs — placements *and*
``insertions_evaluated`` counts — provably equal; the property is
enforced by tests/test_soa_equivalence.py with ``eval_backend=scalar``
as the oracle.

Synchronization: :class:`SoAState` snapshots occupancy rows through the
public :meth:`Occupancy.row_positions` / :meth:`Occupancy.row_cells`
accessors, keyed by :meth:`Occupancy.row_version` — a snapshot is
rebuilt exactly when its row's version moved.  Snapshots live in
``threading.local`` storage so the scheduler's thread pool can share
one :class:`SoAState` across concurrent evaluations without locking.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.core.curves import CurveSet, DisplacementCurve
from repro.core.occupancy import Occupancy
from repro.model.approx import approx_eq
from repro.model.design import Design
from repro.model.row import Segment

if TYPE_CHECKING:
    from repro.core.insertion import EvaluatedInsertion, Gap, InsertionContext

#: Per-row occupancy snapshot: (row version, x positions, cell ids,
#: placement y per cell), the arrays parallel and x-sorted.
RowSnapshot = Tuple[
    int,
    npt.NDArray[np.int64],
    npt.NDArray[np.int64],
    npt.NDArray[np.int64],
]

#: Push-analysis product of one gap, mirroring the scalar
#: ``_push_side`` outputs: (right offsets, right limit, left offsets,
#: left limit).  Offsets map pushed cell -> chain offset from the
#: target; the dicts preserve the scalar insertion order (right side
#: outward-ascending, left side outward-descending) because the curve
#: summation downstream is float and order-sensitive.
Sides = Tuple[Dict[int, int], int, Dict[int, int], int]


class _RowCaches(threading.local):
    """Thread-local row snapshot store (one dict per thread)."""

    def __init__(self) -> None:
        self.rows: Dict[int, RowSnapshot] = {}


class SoAState:
    """Contiguous-array mirror of a design + occupancy pair.

    Geometry arrays are built once from the design's cached
    ``cell_widths``/``cell_heights`` lists; row snapshots are built
    lazily per (thread, row) and invalidated by ``row_version``.  One
    instance is shared by every evaluation against the same occupancy —
    the legalizer holds it (see :meth:`repro.core.mgl.MGLegalizer.soa_for`)
    and batch evaluation reuses its snapshots across batch members.
    """

    def __init__(self, design: Design, occupancy: Occupancy):
        self.design = design
        self.occupancy = occupancy
        self.num_cells = design.num_cells
        self.widths: npt.NDArray[np.int64] = np.asarray(
            design.cell_widths, dtype=np.int64
        )
        self.heights: npt.NDArray[np.int64] = np.asarray(
            design.cell_heights, dtype=np.int64
        )
        self.fixed: npt.NDArray[np.bool_] = np.fromiter(
            (cell.fixed for cell in design.cells),
            dtype=np.bool_,
            count=design.num_cells,
        )
        # Dense cell-type codes (by type name) and the edge-spacing
        # matrix over them: eg[i, j] is the mandatory filler between a
        # type-i cell's right edge and a type-j cell's left edge.
        codes: Dict[str, int] = {}
        types = []
        code_list: List[int] = []
        for cell in design.cells:
            cell_type = cell.cell_type
            code = codes.get(cell_type.name)
            if code is None:
                code = len(types)
                codes[cell_type.name] = code
                types.append(cell_type)
            code_list.append(code)
        self.type_code_of = codes
        self.type_codes: npt.NDArray[np.int64] = np.asarray(
            code_list, dtype=np.int64
        )
        table = design.technology.edge_spacing
        size = len(types)
        matrix = np.zeros((size, size), dtype=np.int64)
        for i, left in enumerate(types):
            for j, right in enumerate(types):
                matrix[i, j] = table.spacing(left.right_edge, right.left_edge)
        self.edge_gap_matrix: npt.NDArray[np.int64] = matrix
        # Plain nested-list twins for the Python-level hot loops (list
        # indexing beats array scalar indexing there).
        self.edge_gap_lists: List[List[int]] = matrix.tolist()
        self.type_code_list: List[int] = code_list
        self.fixed_list: List[bool] = self.fixed.tolist()
        self._rows = _RowCaches()

    def row_arrays(
        self, row: int
    ) -> Tuple[
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
    ]:
        """(xs, cells, ys) snapshot of ``row``, rebuilt when its version moved."""
        occupancy = self.occupancy
        version = occupancy.row_version(row)
        cache = self._rows.rows
        entry = cache.get(row)
        if entry is None or entry[0] != version:
            cells_list = occupancy.row_cells(row)
            xs = np.asarray(occupancy.row_positions(row), dtype=np.int64)
            cells = np.asarray(cells_list, dtype=np.int64)
            placement_y = occupancy.placement.y
            ys = np.fromiter(
                (placement_y[cell] for cell in cells_list),
                dtype=np.int64,
                count=len(cells_list),
            )
            entry = (version, xs, cells, ys)
            cache[row] = entry
        return entry[1], entry[2], entry[3]


class _Run:
    """Precomputed push tables of one wall-separated run of local cells.

    All members are plain Python lists/ints (converted from the int64
    arrays they were computed with) so per-candidate lookups stay cheap
    and the values flowing into curves/moves are exact Python ints, the
    same types the scalar path produces.
    """

    __slots__ = (
        "n", "cells", "ws", "q", "egt_right", "egt_left",
        "ext_r", "ext_l", "feas_r", "feas_l",
    )

    def __init__(
        self,
        n: int,
        cells: List[int],
        ws: List[int],
        q: List[int],
        egt_right: List[int],
        egt_left: List[int],
        ext_r: List[int],
        ext_l: List[int],
        feas_r: List[bool],
        feas_l: List[bool],
    ):
        self.n = n
        self.cells = cells
        self.ws = ws
        self.q = q
        self.egt_right = egt_right
        self.egt_left = egt_left
        self.ext_r = ext_r
        self.ext_l = ext_l
        self.feas_r = feas_r
        self.feas_l = feas_l


class _SegTable:
    """Run tables of one (row, segment), plus cell -> (run, index) map.

    A ``None`` entry in ``runs`` marks an ineligible run (it contains a
    multi-row or out-of-segment local cell, so its push graph is not the
    chain); gaps bordered by its cells take the generic push path, while
    gaps in the segment's other runs stay on the O(1) tables.
    """

    __slots__ = ("runs", "pos")

    def __init__(
        self, runs: List[Optional[_Run]], pos: Dict[int, Tuple[int, int]]
    ):
        self.runs = runs
        self.pos = pos


class VectorEvaluator:
    """Per-context vectorized evaluation over one :class:`SoAState`.

    Owns two lazy caches, both valid for the context's lifetime (the
    occupancy is frozen while a context exists):

    * per-(row, segment) run tables for the O(1) fast-path push
      analysis (:meth:`evaluate`);
    * per-row vectorized lower-bound tables feeding the best-first
      heap's prefilter (:meth:`lower_bound`), keyed by gap identity —
      gap lists are memoized on the context, so identities are stable.
    """

    def __init__(self, context: "InsertionContext", soa: SoAState):
        self.context = context
        self.soa = soa
        self._segments: Dict[Tuple[int, int], _SegTable] = {}
        self._bounds: Dict[int, Dict[int, float]] = {}
        self._width_t = context.target_type.width
        self._multi_row = context.target_type.height != 1
        self._target_code = soa.type_code_of[context.target_type.name]
        # Constants of the curve assembly; the expressions mirror the
        # ones finish_evaluation computes per call, so the values (and
        # bits) are the same every time.
        self._wt = context.weight_of(context.target)
        self._wt_x = context.weight_of(context.target) * context.x_unit
        self._use_gp = context.reference == "gp"
        self._widths = soa.design.cell_widths
        self._heights = soa.design.cell_heights
        from repro.core.insertion import Gap

        self._gap_cls = Gap

    # ------------------------------------------------------------------
    # Lower bounds
    # ------------------------------------------------------------------

    def lower_bound(self, bottom_row: int, gaps: Sequence["Gap"]) -> float:
        """Bit-identical, batch-computed version of the scalar bound.

        Single-gap candidates read a per-row table computed in one
        vectorized pass; multi-row combinations (whose bound folds
        several gaps) fall back to the scalar formula.
        """
        if len(gaps) == 1:
            gap = gaps[0]
            table = self._bounds.get(gap.row)
            if table is None:
                table = self._bound_table(gap.row)
                self._bounds[gap.row] = table
            bound = table.get(id(gap))
            if bound is not None:
                return bound
        return self.context.lower_bound_scalar(bottom_row, gaps)

    def _bound_table(self, row: int) -> Dict[int, float]:
        """All single-gap lower bounds of ``row`` in one array pass.

        The arithmetic mirrors the scalar expression operation for
        operation (max chain, then ``|dy| + x_dist * x_unit`` scaled by
        the weight), so each table entry equals the scalar bound bit
        for bit.
        """
        context = self.context
        gaps = context.gaps_in_row(row)
        if not gaps:
            return {}
        count = len(gaps)
        lo = np.fromiter(
            (gap.lo_rough for gap in gaps), dtype=np.float64, count=count
        )
        hi = np.fromiter(
            (gap.hi_rough for gap in gaps), dtype=np.float64, count=count
        )
        x_dist = np.maximum(
            0.0, np.maximum(lo - context.gp_x, context.gp_x - hi)
        )
        weight = context.weight_of(context.target)
        bounds = weight * (
            abs(row - context.gp_y) + x_dist * context.x_unit
        )
        return {
            id(gap): bound for gap, bound in zip(gaps, bounds.tolist())
        }

    # ------------------------------------------------------------------
    # Exact evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, bottom_row: int, gaps: Sequence["Gap"]
    ) -> Optional["EvaluatedInsertion"]:
        """Exact evaluation of one candidate on the array backend.

        The push analysis comes from the O(1) run tables when the
        candidate fits the fast shape and from the scalar transitive
        walk otherwise (same offsets, same limits either way); every
        candidate then finishes through :meth:`_finish_fast`, which
        assembles the summed displacement curve directly instead of
        materializing per-cell curve objects.
        """
        context = self.context
        sides: Optional[Sides] = None
        if not self._multi_row and len(gaps) == 1:
            handled, fast_sides = self._sides(gaps[0])
            if handled:
                if fast_sides is None:
                    return None  # Infeasible, where the scalar walk bails.
                sides = fast_sides
        if sides is None:
            right_info = self._push_fast(gaps, +1)
            if right_info is None:
                return None
            left_info = self._push_fast(gaps, -1)
            if left_info is None:
                return None
            right_offsets, right_limit = right_info
            left_offsets, left_limit = left_info
            if set(right_offsets) & set(left_offsets):
                return None  # A cell would be pushed both ways.
            sides = (right_offsets, right_limit, left_offsets, left_limit)
        return self._finish_fast(bottom_row, gaps, *sides)

    def _push_fast(
        self, gaps: Sequence["Gap"], side: int
    ) -> Optional[Tuple[Dict[int, int], int]]:
        """Flat-data mirror of :meth:`InsertionContext._push_side`.

        Runs the identical BFS / chain-offset / extremes / limit passes
        — every quantity is the same Python int the scalar walk produces
        (edge gaps come from the type-code matrix, which tabulates the
        same spacing-table lookups ``edge_gap`` performs) — but through
        plain list indexing instead of method and dict-cache calls.  The
        offsets dict is built by the same assignment sequence, so its
        insertion order (part of the float-summation contract downstream)
        matches the scalar dict exactly.  Shares the context's neighbor
        and locality caches, which are populated with identical values.
        """
        context = self.context
        soa = self.soa
        occupancy = context.occupancy
        placement = occupancy.placement
        px = placement.x
        py = placement.y
        widths = self._widths
        heights = self._heights
        fixed = soa.fixed_list
        codes = soa.type_code_list
        egm = soa.edge_gap_lists
        tcode = self._target_code
        width_t = self._width_t
        window = context.window
        wxlo = window.xlo
        wxhi = window.xhi
        wylo = window.ylo
        wyhi = window.yhi
        local_cache = context._local_cache
        ncache = context._neighbor_cache
        seg_neighbors = context._segment_neighbors

        # 1. Push set by BFS through local, same-segment neighbors.
        seeds = [
            (gap.right_cell if side > 0 else gap.left_cell) for gap in gaps
        ]
        push_set = set(c for c in seeds if c is not None)
        frontier = list(push_set)
        while frontier:
            cell = frontier.pop()
            key = (cell, side)
            nb = ncache.get(key)
            if nb is None:
                nb = seg_neighbors(cell, side)
                ncache[key] = nb
            for _row, neighbor, _segment in nb:
                if neighbor is None or neighbor in push_set:
                    continue
                loc = local_cache.get(neighbor)
                if loc is None:
                    if fixed[neighbor]:
                        loc = False
                    else:
                        nx = px[neighbor]
                        ny = py[neighbor]
                        loc = (
                            wxlo <= nx
                            and nx + widths[neighbor] <= wxhi
                            and wylo <= ny
                            and ny + heights[neighbor] <= wyhi
                        )
                    local_cache[neighbor] = loc
                if not loc:
                    continue
                push_set.add(neighbor)
                frontier.append(neighbor)

        ordered = sorted(push_set, key=lambda c: (px[c], c))
        if side < 0:
            ordered.reverse()  # Process outward from the target.

        # 2. Chain offsets (longest paths from the target).
        offsets: Dict[int, int] = {}
        for gap in gaps:
            seed = gap.right_cell if side > 0 else gap.left_cell
            if seed is None:
                continue
            if side > 0:
                off = width_t + egm[tcode][codes[seed]]
            else:
                off = widths[seed] + egm[codes[seed]][tcode]
            prev = offsets.get(seed, 0)
            offsets[seed] = off if off > prev else prev
        for cell in ordered:
            base = offsets.get(cell)
            if base is None:
                offsets[cell] = base = 0
            ccode = codes[cell]
            w_c = widths[cell]
            for _row, neighbor, _segment in ncache[(cell, side)]:
                if neighbor is None or neighbor not in push_set:
                    continue
                if side > 0:
                    step = w_c + egm[ccode][codes[neighbor]]
                else:
                    step = widths[neighbor] + egm[codes[neighbor]][ccode]
                cand = base + step
                if cand > offsets.get(neighbor, 0):
                    offsets[neighbor] = cand

        # 3. Extreme positions against walls (processed inward).
        extreme: Dict[int, int] = {}
        for cell in reversed(ordered):
            w_c = widths[cell]
            ccode = codes[cell]
            best: Optional[int] = None
            for row, neighbor, segment in ncache[(cell, side)]:
                if segment is None:
                    return None
                if side > 0:
                    if neighbor is not None and neighbor in push_set:
                        b = extreme[neighbor] - egm[ccode][codes[neighbor]] - w_c
                    elif neighbor is not None:
                        b = px[neighbor] - egm[ccode][codes[neighbor]] - w_c
                    else:
                        limit = segment.x_hi
                        outside = occupancy.right_neighbor(row, segment.x_hi)
                        if outside is not None:
                            lim2 = px[outside] - egm[ccode][codes[outside]]
                            if lim2 < limit:
                                limit = lim2
                        b = limit - w_c
                    if best is None or b < best:
                        best = b
                else:
                    if neighbor is not None and neighbor in push_set:
                        b = (
                            extreme[neighbor]
                            + widths[neighbor]
                            + egm[codes[neighbor]][ccode]
                        )
                    elif neighbor is not None:
                        b = (
                            px[neighbor]
                            + widths[neighbor]
                            + egm[codes[neighbor]][ccode]
                        )
                    else:
                        limit = segment.x_lo
                        outside = occupancy.left_neighbor(row, segment.x_lo)
                        if outside is not None:
                            lim2 = (
                                px[outside]
                                + widths[outside]
                                + egm[codes[outside]][ccode]
                            )
                            if lim2 > limit:
                                limit = lim2
                        b = limit
                    if best is None or b > best:
                        best = b
            assert best is not None
            extreme[cell] = best
            if side > 0:
                if best < px[cell] - 1e-9:
                    return None  # Already violates: cannot even stay put.
            elif best > px[cell] + 1e-9:
                return None

        # 4. The target's limit.
        limit_val: Optional[int] = None
        for gap in gaps:
            if side > 0:
                rc = gap.right_cell
                if rc is not None:
                    v = extreme[rc] - egm[tcode][codes[rc]] - width_t
                else:
                    rw = gap.right_wall_cell
                    wall_gap = egm[tcode][codes[rw]] if rw is not None else 0
                    v = gap.right_bound - wall_gap - width_t
                if limit_val is None or v < limit_val:
                    limit_val = v
            else:
                lc = gap.left_cell
                if lc is not None:
                    v = extreme[lc] + widths[lc] + egm[codes[lc]][tcode]
                else:
                    lw = gap.left_wall_cell
                    wall_gap = egm[codes[lw]][tcode] if lw is not None else 0
                    v = gap.left_bound + wall_gap
                if limit_val is None or v > limit_val:
                    limit_val = v
        assert limit_val is not None
        return offsets, limit_val

    def _finish_fast(
        self,
        bottom_row: int,
        gaps: Sequence["Gap"],
        right_offsets: Dict[int, int],
        right_limit: float,
        left_offsets: Dict[int, int],
        left_limit: float,
    ) -> Optional["EvaluatedInsertion"]:
        """Array-backed twin of :meth:`InsertionContext.finish_evaluation`.

        Builds the *summed* curve straight from the offsets — anchor,
        ordered value/slope sums, merged breakpoints — performing, per
        curve, the same float operations ``sum_curves`` runs on the
        factory-built curve objects (every kept intermediate rounds
        identically), then rejoins the shared compiled pipeline.  The
        per-curve closed forms below are the reference ``value()`` walks
        at the summed anchor ``m``, which sits at or left of every
        per-curve anchor because ``min`` includes the constant curve's
        anchor ``0.0``; bit-equality against the object path is pinned
        by tests/test_soa_equivalence.py.
        """
        lo = left_limit
        hi = right_limit
        if math.ceil(lo) > math.floor(hi):
            return None

        context = self.context
        placement = context.occupancy.placement
        gp_of = context.design.gp_x
        weight_of = context.weight_of
        x_unit = context.x_unit
        use_gp = self._use_gp
        gp_x = context.gp_x
        wt_x = self._wt_x

        # Pass 1: per-curve primitives in the scalar curve-list order
        # (target V, row constant, right cells, left cells).
        anchors: List[float] = [gp_x, 0.0]
        merged: List[Tuple[float, float]] = [(gp_x, 2.0 * wt_x)]
        # (kind, base, weight, crit, turn): kind 0 = A/C (value is base),
        # 1 = B, 2 = D.
        records: List[Tuple[int, float, float, float, float]] = []
        baseline = 0.0
        # Ordered left-fold of the per-curve initial slopes (V's -wt_x,
        # then each left cell's -w; the interleaved 0.0 terms of the
        # constant and right-cell curves are bitwise identities here
        # because a negative or +0.0 running sum survives "+ 0.0").
        initial_slope = 0.0 + -wt_x
        for cell, offset in right_offsets.items():
            weight = weight_of(cell) * x_unit
            cur = placement.x[cell]
            anchor = gp_of[cell] if use_gp else cur
            crit = cur - offset
            base = weight * abs(cur - anchor)
            anchors.append(crit)
            if anchor <= cur:  # Type A
                merged.append((crit, weight))
            else:  # Type C
                merged.append((crit, -weight))
                merged.append((anchor - offset, 2.0 * weight))
            records.append((0, base, weight, crit, 0.0))
            baseline += base
        for cell, offset in left_offsets.items():
            weight = weight_of(cell) * x_unit
            cur = placement.x[cell]
            anchor = gp_of[cell] if use_gp else cur
            crit = cur + offset
            base = weight * abs(cur - anchor)
            anchors.append(crit)
            initial_slope += -weight
            if anchor >= cur:  # Type B
                merged.append((crit, weight))
                records.append((1, base, weight, crit, 0.0))
            else:  # Type D
                turn = anchor + offset
                merged.append((turn, 2.0 * weight))
                merged.append((crit, -weight))
                records.append((2, base, weight, crit, turn))
            baseline += base

        m = min(anchors)

        # Pass 2: the ordered value sum at m.  builtins.sum starts from
        # int 0 exactly like the scalar generator sum; each term is the
        # reference backward (or anchor-coincident forward) walk of its
        # curve, collapsed to a closed form.
        anchor_value = 0.0 + (
            wt_x * (m - gp_x) if m >= gp_x else wt_x * (gp_x - m)
        )
        anchor_value += self._wt * abs(bottom_row - context.gp_y)
        for kind, base, weight, crit, turn in records:
            if kind == 0:  # A/C: flat left of crit.
                anchor_value += base
            elif kind == 1:  # B: slope -w left of crit.
                anchor_value += base - (-weight) * (crit - m)
            elif m >= turn:  # D, between turn and crit.
                anchor_value += base - weight * (crit - m)
            else:  # D, left of turn.
                anchor_value += (base - weight * (crit - turn)) - (
                    -weight
                ) * (turn - m)
        if baseline:
            anchor_value += -baseline

        # Merge + coalesce, verbatim sum_curves semantics.
        merged.sort()
        coalesced: List[Tuple[float, float]] = []
        for bp_x, delta in merged:
            if coalesced and approx_eq(coalesced[-1][0], bp_x):
                coalesced[-1] = (coalesced[-1][0], coalesced[-1][1] + delta)
            else:
                coalesced.append((bp_x, delta))

        compiled = CurveSet.from_total(
            DisplacementCurve(m, anchor_value, initial_slope, tuple(coalesced))
        )
        return context.finish_with_compiled(
            bottom_row, gaps, right_offsets, left_offsets,
            lo, hi, compiled, vectorized=True,
        )

    def _cells_slice(
        self, row: int, segment: Segment
    ) -> Tuple[
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
    ]:
        """Array mirror of ``Occupancy.cells_in_range(row, x_lo, x_hi)``.

        Bisect on the x-sorted snapshot plus the one cell that may
        overhang the range start from the left.
        """
        soa = self.soa
        xs_all, cells_all, ys_all = soa.row_arrays(row)
        lo_i = int(np.searchsorted(xs_all, segment.x_lo, side="left"))
        if lo_i > 0:
            prev = int(cells_all[lo_i - 1])
            if int(xs_all[lo_i - 1]) + int(soa.widths[prev]) > segment.x_lo:
                lo_i -= 1
        hi_i = int(np.searchsorted(xs_all, segment.x_hi, side="left"))
        return xs_all[lo_i:hi_i], cells_all[lo_i:hi_i], ys_all[lo_i:hi_i]

    def _local_mask(
        self,
        xs: npt.NDArray[np.int64],
        cells: npt.NDArray[np.int64],
        ys: npt.NDArray[np.int64],
        widths: npt.NDArray[np.int64],
    ) -> npt.NDArray[np.bool_]:
        """Vectorized :meth:`InsertionContext.is_local`: movable and
        entirely inside the window (exact comparisons; ints vs float
        bounds)."""
        soa = self.soa
        window = self.context.window
        heights = soa.heights[cells]
        return (
            ~soa.fixed[cells]
            & (window.xlo <= xs)
            & (xs + widths <= window.xhi)
            & (window.ylo <= ys)
            & (ys + heights <= window.yhi)
        )

    # ------------------------------------------------------------------
    # Gap enumeration
    # ------------------------------------------------------------------

    def gaps_in_segment(self, row: int, segment: Segment) -> List["Gap"]:
        """Array-backed twin of :meth:`InsertionContext._gaps_in_segment`.

        The scalar rough bounds are float accumulations of integer
        pitches — every intermediate is an exact integer — so computing
        them as int64 prefix/suffix sums and converting once yields the
        same floats.  Runs, walls, filters and emission order mirror the
        scalar walk clause for clause; list equality is pinned by
        tests/test_soa_equivalence.py.
        """
        context = self.context
        soa = self.soa
        occupancy = context.occupancy
        placement = occupancy.placement
        window = context.window

        xs, cells, ys = self._cells_slice(row, segment)
        widths = soa.widths[cells]
        local = self._local_mask(xs, cells, ys, widths)

        # Segment bounds with the cross-boundary edge rules
        # (scalar-identical: the outside neighbor pushes the bound
        # inward by its required gap, unconditionally).
        left_bound = segment.x_lo
        outside_left = occupancy.left_neighbor(row, segment.x_lo)
        if outside_left is not None:
            outside_end = (
                placement.x[outside_left] + context.cell_width(outside_left)
            )
            left_bound = max(
                left_bound, outside_end + context.edge_gap(outside_left, -1)
            )
        right_cap = segment.x_hi
        outside_right = occupancy.right_neighbor(row, segment.x_hi)
        if outside_right is not None:
            right_cap = min(
                right_cap,
                placement.x[outside_right]
                - context.edge_gap(-1, outside_right),
            )

        cells_list: List[int] = cells.tolist()
        local_list: List[bool] = local.tolist()
        xs_list: List[int] = xs.tolist()
        widths_list: List[int] = widths.tolist()

        gaps: List["Gap"] = []
        width_t = self._width_t
        total = len(cells_list)
        index = 0
        lwall: Optional[int] = None
        run_lo = left_bound
        while True:
            start = index
            while index < total and local_list[index]:
                index += 1
            if index < total:
                rwall: Optional[int] = cells_list[index]
                run_hi = xs_list[index]
            else:
                rwall = None
                run_hi = right_cap
            if run_hi - run_lo >= width_t and not (
                run_hi <= window.xlo or run_lo >= window.xhi
            ):
                self._emit_run_gaps(
                    gaps, row, segment, cells, widths, cells_list,
                    start, index, run_lo, run_hi, lwall, rwall,
                )
            if index >= total:
                return gaps
            run_lo = xs_list[index] + widths_list[index]
            lwall = cells_list[index]
            index += 1

    def _emit_run_gaps(
        self,
        gaps: List["Gap"],
        row: int,
        segment: Segment,
        cells: npt.NDArray[np.int64],
        widths: npt.NDArray[np.int64],
        cells_list: List[int],
        start: int,
        end: int,
        run_lo: int,
        run_hi: int,
        lwall: Optional[int],
        rwall: Optional[int],
    ) -> None:
        """Append one run's gaps: batched twin of ``_make_gap``.

        For gap index ``i`` over run cells ``c_0..c_{n-1}``, the scalar
        compress-left walk gives ``lo[i] = run_lo + sum(add[:i]) +
        eg(c_{i-1}, t)`` with ``add[j] = eg(prev_j, c_j) + w(c_j)``, and
        the compress-right walk ``hi[i] = run_hi - sum(sub[i:]) - w_t -
        eg(t, c_i)`` with ``sub[j] = w(c_j) + eg(c_j, next_j)`` — plain
        cumsums.
        """
        context = self.context
        soa = self.soa
        matrix = soa.edge_gap_matrix
        type_codes = soa.type_codes
        tcode = self._target_code
        width_t = self._width_t
        gap_cls = self._gap_cls
        n = end - start
        # eg(lwall, target) / eg(target, rwall) at the run ends.
        lw_t = int(matrix[type_codes[lwall], tcode]) if lwall is not None else 0
        t_rw = int(matrix[tcode, type_codes[rwall]]) if rwall is not None else 0
        if n == 0:
            lo0 = float(run_lo + lw_t)
            hi0 = float(run_hi - width_t - t_rw)
            if lo0 <= hi0:
                gaps.append(gap_cls(
                    row=row, segment=segment,
                    left_cell=None, right_cell=None,
                    left_bound=run_lo, right_bound=run_hi,
                    left_wall_cell=lwall, right_wall_cell=rwall,
                    lo_rough=lo0, hi_rough=hi0,
                ))
            return

        rcells = cells[start:end]
        rcodes = type_codes[rcells]
        rws = widths[start:end]
        add = rws.copy()
        sub = rws.copy()
        if n > 1:
            egn = matrix[rcodes[:-1], rcodes[1:]]
            add[1:] += egn
            sub[:-1] += egn
        if lwall is not None:
            add[0] += matrix[type_codes[lwall], rcodes[0]]
        if rwall is not None:
            sub[-1] += matrix[rcodes[-1], type_codes[rwall]]
        lo_arr = np.empty(n + 1, dtype=np.int64)
        lo_arr[0] = run_lo + lw_t
        lo_arr[1:] = (run_lo + np.cumsum(add)) + matrix[rcodes, tcode]
        hi_arr = np.empty(n + 1, dtype=np.int64)
        suffix = np.cumsum(sub[::-1])[::-1]
        hi_arr[:n] = ((run_hi - width_t) - suffix) - matrix[tcode, rcodes]
        hi_arr[n] = run_hi - width_t - t_rw
        lo_list: List[float] = lo_arr.astype(np.float64).tolist()
        hi_list: List[float] = hi_arr.astype(np.float64).tolist()

        run_cells = cells_list[start:end]
        left_c: Optional[int] = None
        for i in range(n + 1):
            right_c = run_cells[i] if i < n else None
            lo_v = lo_list[i]
            hi_v = hi_list[i]
            if lo_v <= hi_v:
                gaps.append(gap_cls(
                    row=row, segment=segment,
                    left_cell=left_c, right_cell=right_c,
                    left_bound=run_lo, right_bound=run_hi,
                    left_wall_cell=lwall, right_wall_cell=rwall,
                    lo_rough=lo_v, hi_rough=hi_v,
                ))
            left_c = right_c

    def _sides(self, gap: "Gap") -> Tuple[bool, Optional[Sides]]:
        """Push analysis of one single-row gap.

        Returns ``(handled, sides)``: ``handled=False`` means the run
        violates a fast-path precondition and the caller must use the
        scalar evaluator; ``sides=None`` (with ``handled=True``) means
        the candidate is infeasible — a push does not fit.
        """
        context = self.context
        key = (gap.row, gap.segment.x_lo)
        if key in self._segments:
            table = self._segments[key]
        else:
            table = self._build_segment(gap.row, gap.segment)
            self._segments[key] = table
        width_t = self._width_t

        if gap.right_cell is not None:
            run_index, gi = table.pos[gap.right_cell]
        elif gap.left_cell is not None:
            run_index, gi = table.pos[gap.left_cell]
            gi += 1
        else:
            # Empty run: both sides are walls, no pushes at all.
            right_gap = (
                context.edge_gap(-1, gap.right_wall_cell)
                if gap.right_wall_cell is not None
                else 0
            )
            left_gap = (
                context.edge_gap(gap.left_wall_cell, -1)
                if gap.left_wall_cell is not None
                else 0
            )
            return True, (
                {},
                gap.right_bound - right_gap - width_t,
                {},
                gap.left_bound + left_gap,
            )

        run = table.runs[run_index]
        if run is None:
            return False, None
        n = run.n
        cells = run.cells
        q = run.q

        if gi < n:
            if not run.feas_r[gi]:
                return True, None
            base = width_t + run.egt_right[gi]
            q_gi = q[gi]
            right_offsets = {
                cells[j]: base + q[j] - q_gi for j in range(gi, n)
            }
            right_limit = run.ext_r[gi] - run.egt_right[gi] - width_t
        else:
            wall_gap = (
                context.edge_gap(-1, gap.right_wall_cell)
                if gap.right_wall_cell is not None
                else 0
            )
            right_offsets = {}
            right_limit = gap.right_bound - wall_gap - width_t

        if gi > 0:
            k = gi - 1
            if not run.feas_l[k]:
                return True, None
            base = run.ws[k] + run.egt_left[k]
            q_k = q[k]
            left_offsets = {
                cells[j]: base + q_k - q[j] for j in range(k, -1, -1)
            }
            left_limit = run.ext_l[k] + run.ws[k] + run.egt_left[k]
        else:
            wall_gap = (
                context.edge_gap(gap.left_wall_cell, -1)
                if gap.left_wall_cell is not None
                else 0
            )
            left_offsets = {}
            left_limit = gap.left_bound + wall_gap

        return True, (right_offsets, right_limit, left_offsets, left_limit)

    # ------------------------------------------------------------------

    def _build_segment(self, row: int, segment: Segment) -> _SegTable:
        """Run tables of one segment; ineligible runs are ``None``.

        Precondition for a run's fast path: every local cell in it is
        height 1 and lies entirely inside the segment, so its push DAG
        is the run chain and its only wall is the run boundary.  Walls
        (non-local cells) may be any shape, and a violating run only
        disqualifies itself — push never crosses a wall, so the other
        runs in the segment keep their tables.
        """
        soa = self.soa
        xs, cells, ys = self._cells_slice(row, segment)
        widths = soa.widths[cells]
        heights = soa.heights[cells]
        local = self._local_mask(xs, cells, ys, widths)
        bad = local & (
            (heights != 1) | (xs < segment.x_lo) | (xs + widths > segment.x_hi)
        )

        cells_list: List[int] = cells.tolist()
        local_list: List[bool] = local.tolist()
        bad_list: List[bool] = bad.tolist()
        runs: List[Optional[_Run]] = []
        pos: Dict[int, Tuple[int, int]] = {}
        index = 0
        total = len(cells_list)
        prev_wall: Optional[int] = None
        while index < total:
            if not local_list[index]:
                prev_wall = cells_list[index]
                index += 1
                continue
            start = index
            while index < total and local_list[index]:
                index += 1
            next_wall = cells_list[index] if index < total else None
            if any(bad_list[start:index]):
                run: Optional[_Run] = None
            else:
                run = self._build_run(
                    row, segment,
                    cells[start:index], xs[start:index],
                    prev_wall, next_wall,
                )
            run_index = len(runs)
            runs.append(run)
            for offset, cell in enumerate(cells_list[start:index]):
                pos[cell] = (run_index, offset)
        return _SegTable(runs=runs, pos=pos)

    def _build_run(
        self,
        row: int,
        segment: Segment,
        cells: npt.NDArray[np.int64],
        xs: npt.NDArray[np.int64],
        lwall: Optional[int],
        rwall: Optional[int],
    ) -> _Run:
        """Prefix sums, extremes and feasibility of one run (all ints)."""
        context = self.context
        soa = self.soa
        placement = context.occupancy.placement
        matrix = soa.edge_gap_matrix
        codes = soa.type_codes[cells]
        widths = soa.widths[cells]
        n = len(cells)
        tcode = self._target_code
        egt_right = matrix[tcode, codes]  # eg(target, c_k)
        egt_left = matrix[codes, tcode]   # eg(c_k, target)

        # Pitches t_k between run neighbors and their prefix sums Q.
        if n > 1:
            pitch = widths[:-1] + matrix[codes[:-1], codes[1:]]
        else:
            pitch = np.zeros(0, dtype=np.int64)
        q = np.zeros(n, dtype=np.int64)
        np.cumsum(pitch, out=q[1:])

        # Right wall base: the extreme of the last cell plus its width.
        # Identical to the scalar walk's wall branch, including the
        # cross-boundary edge rule when the run ends at the segment.
        last = int(cells[-1])
        if rwall is not None:
            wall_base_r = placement.x[rwall] - context.edge_gap(last, rwall)
        else:
            limit = segment.x_hi
            outside = context.occupancy.right_neighbor(row, segment.x_hi)
            if outside is not None:
                limit = min(
                    limit,
                    placement.x[outside] - context.edge_gap(last, outside),
                )
            wall_base_r = limit
        # suffix[k] = sum(pitch[k:]); ext_r walks inward from the wall.
        suffix = np.concatenate(
            [np.cumsum(pitch[::-1])[::-1], np.zeros(1, dtype=np.int64)]
        )
        ext_r = (wall_base_r - int(widths[-1])) - suffix
        feas_r = np.minimum.accumulate((ext_r - xs)[::-1])[::-1] >= 0

        first = int(cells[0])
        if lwall is not None:
            wall_base_l = (
                placement.x[lwall]
                + context.cell_width(lwall)
                + context.edge_gap(lwall, first)
            )
        else:
            limit = segment.x_lo
            outside = context.occupancy.left_neighbor(row, segment.x_lo)
            if outside is not None:
                outside_end = (
                    placement.x[outside] + context.cell_width(outside)
                )
                limit = max(
                    limit, outside_end + context.edge_gap(outside, first)
                )
            wall_base_l = limit
        ext_l = wall_base_l + q
        feas_l = np.minimum.accumulate(xs - ext_l) >= 0

        return _Run(
            n=n,
            cells=cells.tolist(),
            ws=widths.tolist(),
            q=q.tolist(),
            egt_right=egt_right.tolist(),
            egt_left=egt_left.tolist(),
            ext_r=ext_r.tolist(),
            ext_l=ext_l.tolist(),
            feas_r=feas_r.tolist(),
            feas_l=feas_l.tolist(),
        )
