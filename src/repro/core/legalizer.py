"""The full three-stage legalization flow (paper Fig. 2).

1. **MGL** inserts every cell near its GP position (§3.1, §3.5);
2. **matching** trims the maximum displacement by permuting same-type
   cells within each fence region (§3.2);
3. **fixed-row-fixed-order MCF** shifts cells horizontally for the final
   weighted average + maximum displacement optimum (§3.3, §3.4).

:func:`legalize` is the one-call public entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.flowopt import FlowOptStats, optimize_fixed_row_order
from repro.core.globalmove import GlobalMoveStats, optimize_global_moves
from repro.core.matching import MatchingStats, optimize_max_displacement
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.model.design import Design
from repro.model.placement import Placement
from repro.obs.clock import monotonic
from repro.obs.metrics import DISPLACEMENT_BUCKETS
from repro.obs.progress import NULL_PROGRESS, NullProgress
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.perf import PerfRecorder


@dataclass
class StageMetrics:
    """Displacement snapshot after one stage."""

    avg_disp: float
    max_disp: float
    seconds: float


@dataclass
class LegalizationResult:
    """Everything the flow produced."""

    placement: Placement
    after_mgl: StageMetrics
    after_matching: Optional[StageMetrics] = None
    after_flow: Optional[StageMetrics] = None
    after_global_moves: Optional[StageMetrics] = None
    matching_stats: Optional[MatchingStats] = None
    flow_stats: Optional[FlowOptStats] = None
    global_move_stats: Optional[GlobalMoveStats] = None
    mgl_stats: Dict[str, int] = field(default_factory=dict)
    #: Row-band partition of a sharded MGL run (``params.shards > 1``),
    #: in the JSON form of ``ShardTopology.as_dict``; None otherwise.
    shard_topology: Optional[Dict[str, object]] = None

    @property
    def total_seconds(self) -> float:
        total = self.after_mgl.seconds
        if self.after_matching is not None:
            total += self.after_matching.seconds
        if self.after_flow is not None:
            total += self.after_flow.seconds
        if self.after_global_moves is not None:
            total += self.after_global_moves.seconds
        return total


def _snapshot(placement: Placement, seconds: float) -> StageMetrics:
    disps = [placement.displacement(c) for c in placement.design.movable_cells()]
    if not disps:
        return StageMetrics(0.0, 0.0, seconds)
    return StageMetrics(sum(disps) / len(disps), max(disps), seconds)


class Legalizer:
    """The complete legalization pipeline for one design."""

    def __init__(
        self,
        design: Design,
        params: Optional[LegalizerParams] = None,
        recorder: Optional[PerfRecorder] = None,
        tracer: Optional[NullTracer] = None,
        progress: Optional[NullProgress] = None,
    ):
        design.validate()
        self.design = design
        self.params = params or LegalizerParams()
        self.params.validate()
        self.guard = (
            RoutabilityGuard(design, self.params) if self.params.routability else None
        )
        #: Optional perf instrumentation; stages record into it when set.
        self.recorder = recorder
        #: Span tracer; the shared zero-overhead null tracer by default.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Streaming progress emitter; the shared null emitter by default.
        #: Observational only — never perturbs the placement.
        self.progress = progress if progress is not None else NULL_PROGRESS

    def _record_stage(self, name: str, seconds: float) -> None:
        if self.recorder is not None:
            self.recorder.record(name, seconds)

    def _observe_final_metrics(self, placement: Placement) -> None:
        """Record the final per-height-class displacement histograms.

        One ``disp.h<height>`` histogram per cell height class, in
        row-height units — the distribution behind the S_am (Eq. 2) and
        max-disp quality numbers; plus the gap-cache hit-rate gauge.
        """
        if self.recorder is None:
            return
        registry = self.recorder.registry
        design = self.design
        for cell in design.movable_cells():
            height = design.cell_type_of(cell).height
            registry.observe(
                f"disp.h{height}",
                placement.displacement(cell),
                DISPLACEMENT_BUCKETS,
            )
        hits = registry.counters.get("mgl.gap_cache_hits", 0)
        misses = registry.counters.get("mgl.gap_cache_misses", 0)
        if hits + misses > 0:
            registry.set_gauge(
                "mgl.gap_cache_hit_rate", 100.0 * hits / (hits + misses)
            )

    def run(self) -> LegalizationResult:
        """Run all enabled stages and return placement plus metrics."""
        params = self.params
        tracer = self.tracer
        progress = self.progress

        with tracer.span("legalize") as root:
            if tracer.enabled:
                root.set(
                    design=self.design.name, cells=self.design.num_cells
                )
            progress.phase(
                "mgl",
                design=self.design.name,
                cells=self.design.num_cells,
            )
            start = monotonic()
            with tracer.span("mgl") as mgl_span:
                mgl = MGLegalizer(
                    self.design, params, guard=self.guard,
                    recorder=self.recorder, tracer=tracer,
                    progress=progress,
                )
                placement = mgl.run()
                if tracer.enabled:
                    # Only worker-count-invariant stats become span
                    # attrs; cache/parallel counters depend on where
                    # each evaluation happened to run.
                    mgl_span.set(
                        cells_placed=mgl.stats["cells_placed"],
                        window_expansions=mgl.stats["window_expansions"],
                        scheduler_batches=mgl.stats["scheduler_batches"],
                        scheduler_reevaluations=mgl.stats[
                            "scheduler_reevaluations"
                        ],
                    )
            mgl_seconds = monotonic() - start
            result = LegalizationResult(
                placement=placement,
                after_mgl=_snapshot(placement, mgl_seconds),
                mgl_stats=dict(mgl.stats),
                shard_topology=(
                    mgl.shard_topology.as_dict()
                    if mgl.shard_topology is not None
                    else None
                ),
            )
            self._record_stage("mgl", mgl_seconds)
            if self.recorder is not None:
                self.recorder.merge_counters(mgl.stats, prefix="mgl.")

            if params.use_matching:
                progress.phase("matching")
                start = monotonic()
                with tracer.span("matching") as span:
                    result.matching_stats = optimize_max_displacement(
                        placement, params
                    )
                    result.after_matching = _snapshot(
                        placement, monotonic() - start
                    )
                    if tracer.enabled:
                        span.set(
                            avg_disp=result.after_matching.avg_disp,
                            max_disp=result.after_matching.max_disp,
                        )
                self._record_stage("matching", result.after_matching.seconds)

            if params.use_flow_opt:
                progress.phase("flow_opt")
                start = monotonic()
                with tracer.span("flow_opt") as span:
                    result.flow_stats = optimize_fixed_row_order(
                        placement, params, guard=self.guard
                    )
                    result.after_flow = _snapshot(placement, monotonic() - start)
                    if tracer.enabled:
                        span.set(
                            avg_disp=result.after_flow.avg_disp,
                            max_disp=result.after_flow.max_disp,
                        )
                self._record_stage("flow_opt", result.after_flow.seconds)

            if params.use_global_moves:
                progress.phase("global_moves")
                start = monotonic()
                with tracer.span("global_moves") as span:
                    result.global_move_stats = optimize_global_moves(
                        placement, params, guard=self.guard
                    )
                    result.after_global_moves = _snapshot(
                        placement, monotonic() - start
                    )
                    if tracer.enabled:
                        span.set(
                            avg_disp=result.after_global_moves.avg_disp,
                            max_disp=result.after_global_moves.max_disp,
                        )
                self._record_stage(
                    "global_moves", result.after_global_moves.seconds
                )

            self._observe_final_metrics(placement)
            if progress.enabled:
                final = _snapshot(placement, result.total_seconds)
                progress.phase(
                    "done",
                    avg_disp=round(final.avg_disp, 4),
                    max_disp=round(final.max_disp, 4),
                    seconds=round(result.total_seconds, 4),
                )
                progress.close()
        return result


def legalize(
    design: Design,
    params: Optional[LegalizerParams] = None,
    recorder: Optional[PerfRecorder] = None,
    tracer: Optional[NullTracer] = None,
    progress: Optional[NullProgress] = None,
) -> LegalizationResult:
    """Legalize ``design`` with the paper's full flow.

    Example::

        from repro import legalize
        result = legalize(design)
        placement = result.placement

    Pass a :class:`repro.perf.PerfRecorder` to collect per-stage wall
    times and the legalizer's counters (``repro legalize --profile``
    from the CLI), a :class:`repro.obs.SpanTracer` to record the span
    tree (``repro legalize --trace``), and/or a
    :class:`repro.obs.progress.ProgressEmitter` to stream progress
    events while the run is going (``repro legalize --progress``); none
    of them perturbs the placement.
    """
    return Legalizer(
        design, params, recorder=recorder, tracer=tracer, progress=progress
    ).run()
