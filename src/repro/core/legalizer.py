"""The full three-stage legalization flow (paper Fig. 2).

1. **MGL** inserts every cell near its GP position (§3.1, §3.5);
2. **matching** trims the maximum displacement by permuting same-type
   cells within each fence region (§3.2);
3. **fixed-row-fixed-order MCF** shifts cells horizontally for the final
   weighted average + maximum displacement optimum (§3.3, §3.4).

:func:`legalize` is the one-call public entry point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.flowopt import FlowOptStats, optimize_fixed_row_order
from repro.core.globalmove import GlobalMoveStats, optimize_global_moves
from repro.core.matching import MatchingStats, optimize_max_displacement
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.model.design import Design
from repro.model.placement import Placement
from repro.perf import PerfRecorder


@dataclass
class StageMetrics:
    """Displacement snapshot after one stage."""

    avg_disp: float
    max_disp: float
    seconds: float


@dataclass
class LegalizationResult:
    """Everything the flow produced."""

    placement: Placement
    after_mgl: StageMetrics
    after_matching: Optional[StageMetrics] = None
    after_flow: Optional[StageMetrics] = None
    after_global_moves: Optional[StageMetrics] = None
    matching_stats: Optional[MatchingStats] = None
    flow_stats: Optional[FlowOptStats] = None
    global_move_stats: Optional[GlobalMoveStats] = None
    mgl_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        total = self.after_mgl.seconds
        if self.after_matching is not None:
            total += self.after_matching.seconds
        if self.after_flow is not None:
            total += self.after_flow.seconds
        if self.after_global_moves is not None:
            total += self.after_global_moves.seconds
        return total


def _snapshot(placement: Placement, seconds: float) -> StageMetrics:
    disps = [placement.displacement(c) for c in placement.design.movable_cells()]
    if not disps:
        return StageMetrics(0.0, 0.0, seconds)
    return StageMetrics(sum(disps) / len(disps), max(disps), seconds)


class Legalizer:
    """The complete legalization pipeline for one design."""

    def __init__(
        self,
        design: Design,
        params: Optional[LegalizerParams] = None,
        recorder: Optional[PerfRecorder] = None,
    ):
        design.validate()
        self.design = design
        self.params = params or LegalizerParams()
        self.params.validate()
        self.guard = (
            RoutabilityGuard(design, self.params) if self.params.routability else None
        )
        #: Optional perf instrumentation; stages record into it when set.
        self.recorder = recorder

    def _record_stage(self, name: str, seconds: float) -> None:
        if self.recorder is not None:
            self.recorder.record(name, seconds)

    def run(self) -> LegalizationResult:
        """Run all enabled stages and return placement plus metrics."""
        params = self.params

        start = time.perf_counter()
        mgl = MGLegalizer(
            self.design, params, guard=self.guard, recorder=self.recorder
        )
        placement = mgl.run()
        mgl_seconds = time.perf_counter() - start
        result = LegalizationResult(
            placement=placement,
            after_mgl=_snapshot(placement, mgl_seconds),
            mgl_stats=dict(mgl.stats),
        )
        self._record_stage("mgl", mgl_seconds)
        if self.recorder is not None:
            self.recorder.merge_counters(mgl.stats, prefix="mgl.")

        if params.use_matching:
            start = time.perf_counter()
            result.matching_stats = optimize_max_displacement(placement, params)
            result.after_matching = _snapshot(
                placement, time.perf_counter() - start
            )
            self._record_stage("matching", result.after_matching.seconds)

        if params.use_flow_opt:
            start = time.perf_counter()
            result.flow_stats = optimize_fixed_row_order(
                placement, params, guard=self.guard
            )
            result.after_flow = _snapshot(placement, time.perf_counter() - start)
            self._record_stage("flow_opt", result.after_flow.seconds)

        if params.use_global_moves:
            start = time.perf_counter()
            result.global_move_stats = optimize_global_moves(
                placement, params, guard=self.guard
            )
            result.after_global_moves = _snapshot(
                placement, time.perf_counter() - start
            )
            self._record_stage("global_moves", result.after_global_moves.seconds)

        return result


def legalize(
    design: Design,
    params: Optional[LegalizerParams] = None,
    recorder: Optional[PerfRecorder] = None,
) -> LegalizationResult:
    """Legalize ``design`` with the paper's full flow.

    Example::

        from repro import legalize
        result = legalize(design)
        placement = result.placement

    Pass a :class:`repro.perf.PerfRecorder` to collect per-stage wall
    times and the legalizer's counters (``repro legalize --profile``
    from the CLI).
    """
    return Legalizer(design, params, recorder=recorder).run()
