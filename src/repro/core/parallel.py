"""Process-based parallel evaluation backend for the MGL scheduler (§3.5).

Python threads cannot speed up the scheduler's evaluation phase — the
GIL serializes them — so this module fans batches out to a persistent
pool of **worker processes** instead.  The design preserves the paper's
determinism guarantee exactly:

* Every worker holds a read-only copy of the :class:`~repro.model.design.Design`
  and rebuilds the same :class:`~repro.core.mgl.MGLegalizer` evaluation
  state (routability guard, height weights, gap cache) from
  ``(design, params, reference)``; all of these are pure functions of
  the design and parameters.
* Workers mirror the scheduler's :class:`~repro.core.occupancy.Occupancy`
  and are kept in sync with compact per-batch **deltas** — the journal
  of ``add``/``update_x``/``remove`` ops recorded by the occupancy since
  the worker's last batch — instead of full snapshots.  Each shipped
  task is tagged with the parent's :meth:`Occupancy.row_version` for
  every row its window spans; the worker verifies its mirrored versions
  match (modulo a fixed offset captured at spawn) before evaluating, so
  a protocol bug fails loudly instead of silently diverging.
* Workers only ever run the *pure* :meth:`MGLegalizer.evaluate_insert`
  against their mirror; results (:class:`EvaluatedInsertion`) flow back
  to the parent, which applies them **serially in selection order** with
  the scheduler's usual conflict re-check.  The placement is therefore a
  pure function of the batch order — bit-identical to the in-process
  path for any worker count, including zero.

Failure policy: a worker that cannot be spawned, crashes, hangs past
:data:`WORKER_TIMEOUT`, or chokes on (un)pickling is retired and its
share of the batch is re-evaluated in-process, so no cell is ever lost
to a parallel-infrastructure failure; when every worker has been
retired the scheduler simply continues on the serial path.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.insertion import EvaluatedInsertion
from repro.core.occupancy import DeltaOp, Occupancy
from repro.core.params import LegalizerParams
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.obs.clock import monotonic
from repro.obs.tracer import SpanPayload

if TYPE_CHECKING:
    from multiprocessing.context import ForkContext, SpawnContext
    from multiprocessing.process import BaseProcess

    from repro.core.mgl import MGLegalizer
    from repro.perf import PerfRecorder

#: Seconds the parent waits for one worker's batch results (or its spawn
#: handshake) before retiring it and re-evaluating in-process.  Generous:
#: a batch share is at most ``scheduler_capacity`` window evaluations.
WORKER_TIMEOUT = 300.0

#: One evaluation request: (slot in the batch, cell, window, row tags).
#: The tags are ``(row, parent_row_version)`` pairs covering every row
#: the window spans — the exact occupancy state the evaluation reads.
TaskSpec = Tuple[int, int, Rect, Tuple[Tuple[int, int], ...]]

#: One evaluation response: (slot, best insertion or None, points
#: evaluated, ``evaluate`` span payload or None).  The payload — built by
#: :func:`repro.core.mgl.evaluation_span_payload`, a pure function of the
#: task — is only populated when the batch message asked for spans.
ResultSpec = Tuple[
    int, Optional[EvaluatedInsertion], int, Optional[SpanPayload]
]


class ParallelUnavailable(RuntimeError):
    """Raised when the worker pool cannot be brought up at all."""


def _pick_context() -> "ForkContext | SpawnContext":
    """The cheapest start method available: fork where supported.

    Forked workers still receive their full state through the init
    message (nothing is read from inherited globals), so the choice of
    start method affects spawn latency only, never results.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _apply_ops(
    occupancy: Occupancy, placement: Placement, ops: Sequence[DeltaOp]
) -> None:
    """Replay a journal slice onto the worker's occupancy mirror."""
    for op, cell, a, b in ops:
        if op == "a":
            placement.move(cell, a, b)
            occupancy.add(cell)
        elif op == "m":
            occupancy.update_x(cell, a)
        else:  # "r"
            occupancy.remove(cell)


def worker_main(conn: Connection) -> None:
    """Entry point of one evaluation worker process.

    Protocol (all messages are tuples; the first element is the tag):

    * receive ``("init", design, params, reference, placed, versions)``
      once — build the legalizer and the occupancy mirror, reply
      ``("ready",)``;
    * then repeatedly receive ``("batch", ops_blob, tasks, want_spans)``
      — apply the pickled journal slice, verify row-version tags,
      evaluate every task (building ``evaluate`` span payloads when
      ``want_spans``), reply ``("results", results, busy_seconds)``;
    * ``("stop",)`` ends the loop.

    Any exception is reported as ``("error", message)`` and kills the
    worker: its mirror can no longer be trusted, and the parent falls
    back to in-process evaluation for its share of the work.
    """
    from repro.core.mgl import MGLegalizer, evaluation_span_payload

    try:
        message = conn.recv()
        if message[0] != "init":  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected init, got {message[0]!r}")
        design, params, reference, placed, parent_versions = message[1:]
        assert isinstance(params, LegalizerParams)
        legalizer = MGLegalizer(design, params, reference=reference)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        for cell, x, y in placed:
            placement.move(cell, x, y)
            occupancy.add(cell)
        # The parent's row versions include history from before this
        # snapshot; remember the per-row offset so tags can be checked
        # against the mirror's own counters.
        offsets: List[int] = [
            int(parent_versions[row]) - occupancy.row_version(row)
            for row in range(design.num_rows)
        ]
        # Vector backend: one SoA mirror per worker, resolved once — the
        # mirror's occupancy identity never changes here, and its per-row
        # snapshots re-sync from row versions as journal deltas land, so
        # every task in every batch reads fresh state through it.  None
        # on the scalar backend.
        soa = legalizer.soa_for(occupancy)
        conn.send(("ready",))

        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            if message[0] != "batch":  # pragma: no cover - protocol guard
                raise RuntimeError(f"expected batch, got {message[0]!r}")
            _tag, ops_blob, tasks, want_spans = message
            _apply_ops(occupancy, placement, pickle.loads(ops_blob))
            results: List[ResultSpec] = []
            busy_start = monotonic()
            for slot, cell, window, row_tags in tasks:
                for row, version in row_tags:
                    mirrored = occupancy.row_version(row) + offsets[row]
                    if mirrored != version:
                        raise RuntimeError(
                            f"occupancy mirror out of sync: row {row} at "
                            f"version {mirrored}, parent at {version}"
                        )
                eval_start = monotonic()
                best, points = legalizer.evaluate_insert(
                    occupancy, cell, window, cache=legalizer.gap_cache,
                    soa=soa,
                )
                payload = (
                    evaluation_span_payload(
                        points, best, duration=monotonic() - eval_start
                    )
                    if want_spans
                    else None
                )
                if best is not None:
                    # Strip the Gap tuple: the parent only needs the
                    # position and spread moves, and gaps reference
                    # Segment objects that would bloat the response.
                    best = EvaluatedInsertion(
                        x=best.x, y=best.y, cost=best.cost, moves=best.moves
                    )
                results.append((slot, best, points, payload))
            conn.send(("results", results, monotonic() - busy_start))
    except EOFError:
        pass  # Parent went away; nothing to report to.
    except Exception as error:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (OSError, ValueError, pickle.PicklingError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    index: int
    process: "BaseProcess"
    conn: Connection
    #: Absolute journal position this worker's mirror has applied.
    position: int = 0
    alive: bool = True


class ParallelEvaluator:
    """Persistent process pool evaluating scheduler batches.

    Spawned once per :meth:`WindowScheduler.run`; attach/detach happens
    in :meth:`__init__`/:meth:`close`.  The occupancy journal is hooked
    on construction so every subsequent mutation (the apply phase
    between batches) lands in the delta stream automatically.

    Args:
        legalizer: the scheduler's legalizer (provides params, stats and
            the in-process fallback evaluation).
        occupancy: the live occupancy the scheduler mutates.
        num_workers: processes to spawn (>= 1).
        recorder: optional perf recorder for per-worker busy timers.

    Raises:
        ParallelUnavailable: when no worker survives the spawn
            handshake; the caller should continue on the serial path.
    """

    def __init__(
        self,
        legalizer: "MGLegalizer",
        occupancy: Occupancy,
        num_workers: int,
        recorder: Optional["PerfRecorder"] = None,
        timeout: float = WORKER_TIMEOUT,
    ):
        self.legalizer = legalizer
        self.occupancy = occupancy
        self.recorder = recorder
        self.timeout = timeout
        self._journal: List[DeltaOp] = []
        self._base = 0  # Absolute journal position of self._journal[0].
        self.workers: List[_Worker] = []
        stats = legalizer.stats
        for key in (
            "parallel_batches",
            "parallel_tasks",
            "parallel_fallbacks",
            "parallel_delta_ops",
            "parallel_delta_bytes",
            "parallel_worker_failures",
            "scheduler_workers_spawned",
        ):
            stats.setdefault(key, 0)

        design = legalizer.design
        placement = occupancy.placement
        placed = sorted(occupancy.placed_cells)
        init_message = (
            "init",
            design,
            legalizer.params,
            legalizer.reference,
            [(cell, placement.x[cell], placement.y[cell]) for cell in placed],
            [occupancy.row_version(row) for row in range(design.num_rows)],
        )
        context = _pick_context()
        for index in range(num_workers):
            try:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=worker_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                parent_conn.send(init_message)
                self.workers.append(_Worker(index, process, parent_conn))
            except Exception:  # noqa: BLE001 - spawn failure => fewer workers
                stats["parallel_worker_failures"] += 1
        # Handshake: a worker that cannot init (or hangs) is retired now.
        for worker in self.workers:
            try:
                if not worker.conn.poll(self.timeout):
                    raise TimeoutError("worker init handshake timed out")
                reply = worker.conn.recv()
                if reply[0] != "ready":
                    raise RuntimeError(f"worker init failed: {reply!r}")
            except Exception:  # noqa: BLE001
                self._retire(worker)
        if not any(worker.alive for worker in self.workers):
            self.close()
            raise ParallelUnavailable(
                f"none of {num_workers} evaluation workers came up"
            )
        stats["scheduler_workers_spawned"] += sum(
            1 for worker in self.workers if worker.alive
        )
        occupancy.set_journal(self._journal)

    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether at least one worker can still take work."""
        return any(worker.alive for worker in self.workers)

    def evaluate_batch(
        self,
        batch: Sequence[Tuple[int, float, int, Rect]],
        want_payloads: bool = False,
    ) -> List[Tuple[Optional[EvaluatedInsertion], Optional[SpanPayload]]]:
        """Evaluate one scheduler batch on the pool.

        Tasks are striped over the live workers; each worker receives
        exactly one message (its journal delta plus its task share) and
        sends exactly one reply.  Shares of workers that fail at any
        point are evaluated in-process against the live occupancy —
        which still holds the batch-start state, so results are
        identical.  The returned list is aligned with ``batch``; each
        entry pairs the insertion with its ``evaluate`` span payload
        when ``want_payloads`` (None otherwise).  Fallback evaluations
        build the identical payload in-process, so worker failures never
        change the trace structure.
        """
        from repro.core.mgl import evaluation_span_payload

        legalizer = self.legalizer
        stats = legalizer.stats
        results: List[
            Tuple[Optional[EvaluatedInsertion], Optional[SpanPayload]]
        ] = [(None, None)] * len(batch)
        alive = [worker for worker in self.workers if worker.alive]
        fallback: List[TaskSpec] = []
        if alive:
            shares: Dict[int, List[TaskSpec]] = {
                worker.index: [] for worker in alive
            }
            for slot, (cell, _scale, _attempts, window) in enumerate(batch):
                task: TaskSpec = (slot, cell, window, self._row_tags(window))
                shares[alive[slot % len(alive)].index].append(task)
            journal_end = self._base + len(self._journal)
            pending: List[Tuple[_Worker, List[TaskSpec]]] = []
            by_index = {worker.index: worker for worker in self.workers}
            for index, tasks in shares.items():
                if not tasks:
                    continue
                worker = by_index[index]
                ops = self._journal[worker.position - self._base :]
                try:
                    blob = pickle.dumps(ops, protocol=pickle.HIGHEST_PROTOCOL)
                    worker.conn.send(("batch", blob, tasks, want_payloads))
                except Exception:  # noqa: BLE001 - retire, evaluate locally
                    self._retire(worker)
                    fallback.extend(tasks)
                    continue
                worker.position = journal_end
                stats["parallel_delta_ops"] += len(ops)
                stats["parallel_delta_bytes"] += len(blob)
                stats["parallel_tasks"] += len(tasks)
                pending.append((worker, tasks))
            for worker, tasks in pending:
                try:
                    if not worker.conn.poll(self.timeout):
                        raise TimeoutError("worker batch reply timed out")
                    reply = worker.conn.recv()
                    if reply[0] != "results":
                        raise RuntimeError(f"worker reported: {reply!r}")
                    _tag, worker_results, busy_seconds = reply
                    if self.recorder is not None:
                        self.recorder.record(
                            f"parallel.worker{worker.index}", busy_seconds
                        )
                    for slot, best, points, payload in worker_results:
                        if payload is not None:
                            # Which worker ran it is non-structural meta.
                            payload["worker"] = worker.index
                        results[slot] = (best, payload)
                        stats["insertions_evaluated"] += points
                except Exception:  # noqa: BLE001 - retire, evaluate locally
                    self._retire(worker)
                    fallback.extend(tasks)
            stats["parallel_batches"] += 1
            self._compact()
        else:
            fallback = [
                (slot, cell, window, ())
                for slot, (cell, _scale, _attempts, window) in enumerate(batch)
            ]
        for slot, cell, window, _tags in fallback:
            # In-process re-evaluation: the live occupancy still holds
            # the batch-start state (applies happen after evaluation),
            # so this is the exact computation the worker would have
            # produced — including the span payload, whose structural
            # attrs are a pure function of the task.
            stats["parallel_fallbacks"] += 1
            if want_payloads:
                best, points = legalizer.evaluate_and_count(
                    self.occupancy, cell, window
                )
                results[slot] = (
                    best, evaluation_span_payload(points, best)
                )
            else:
                results[slot] = (
                    legalizer.try_insert(self.occupancy, cell, window), None
                )
        return results

    def close(self) -> None:
        """Detach the journal and shut the pool down."""
        self.occupancy.set_journal(None)
        for worker in self.workers:
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except Exception:  # noqa: BLE001
                    pass
            worker.alive = False
            worker.conn.close()
        for worker in self.workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)

    # ------------------------------------------------------------------

    def _row_tags(self, window: Rect) -> Tuple[Tuple[int, int], ...]:
        """Parent row versions for every row the window spans."""
        occupancy = self.occupancy
        lo = max(0, int(math.floor(window.ylo)))
        hi = min(self.legalizer.design.num_rows, int(math.ceil(window.yhi)))
        return tuple(
            (row, occupancy.row_version(row)) for row in range(lo, hi)
        )

    def _retire(self, worker: _Worker) -> None:
        """Permanently remove a failed worker from the rotation."""
        if not worker.alive:
            return
        worker.alive = False
        self.legalizer.stats["parallel_worker_failures"] += 1
        # The in-process fallback makes retirement invisible in the
        # placement, so surface it in the metrics registry explicitly.
        if self.recorder is not None:
            self.recorder.registry.count("scheduler.worker_retired")
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()

    def _compact(self) -> None:
        """Drop journal prefix every live worker has already applied."""
        alive_positions = [
            worker.position for worker in self.workers if worker.alive
        ]
        if not alive_positions:
            return
        cut = min(alive_positions) - self._base
        if cut > 2048:
            del self._journal[:cut]
            self._base += cut
