"""Piecewise-linear displacement curves (paper §3.1, Fig. 4).

When MGL evaluates an insertion point, every *local cell* contributes a
curve mapping the target cell's x position to the displacement that cell
would incur (measured from its **global-placement** position).  Local
cells right of the insertion point are only ever pushed right, cells left
of it only pushed left; whether their GP position lies before or behind
their current position yields the four curve types of Fig. 4:

=====  =====================  ====================================
type   slope pattern          meaning
=====  =====================  ====================================
A      ``0, +w``              right cell, GP at/left of current
B      ``-w, 0``              left cell, GP at/right of current
C      ``0, -w, +w``          right cell, GP right of current
D      ``-w, +w, 0``          left cell, GP left of current
V      ``-w, +w``             the target cell itself
=====  =====================  ====================================

The turning points (*breakpoints*) are either MLL's *critical positions*
(where pushing starts) or positions derived from GP locations.  Curves
sum by merging breakpoints (Alg. 1 lines 3-7); the optimum over a site
range is found by a linear sweep over the merged breakpoints.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.model.approx import approx_eq, is_zero


@dataclass(frozen=True)
class DisplacementCurve:
    """A piecewise-linear function of the target cell's x position.

    The function is defined by an anchor point ``(anchor_x, anchor_value)``,
    the slope ``initial_slope`` valid for ``x <= first breakpoint``, and
    sorted ``breakpoints`` as ``(x, slope_delta)`` pairs.  The anchor may
    lie anywhere; evaluation integrates the slope from it.

    Instances are immutable; build them with the factory methods below.
    """

    anchor_x: float
    anchor_value: float
    initial_slope: float
    breakpoints: Tuple[Tuple[float, float], ...] = ()

    # ------------------------------------------------------------------
    # Factories (the Fig. 4 curve types)
    # ------------------------------------------------------------------

    @staticmethod
    def constant(value: float) -> "DisplacementCurve":
        """A constant curve (cells unaffected by the target)."""
        return DisplacementCurve(0.0, value, 0.0, ())

    @staticmethod
    def target(gp_x: float, weight: float = 1.0) -> "DisplacementCurve":
        """The target cell's own V-curve ``weight * |x - gp_x|``."""
        return DisplacementCurve(gp_x, 0.0, -weight, ((gp_x, 2.0 * weight),))

    @staticmethod
    def pushed_right(
        current_x: float, gp_x: float, offset: float, weight: float = 1.0
    ) -> "DisplacementCurve":
        """Curve of a local cell on the right of the insertion point.

        The cell's new position is ``max(current_x, x_t + offset)`` where
        ``offset`` is the target width plus the widths (and required gaps)
        of cells between the target and this cell.  Produces type A when
        ``gp_x <= current_x`` and type C otherwise.
        """
        critical = current_x - offset  # Pushing starts beyond this x_t.
        base = weight * abs(current_x - gp_x)
        if gp_x <= current_x:  # Type A: flat, then slope +w.
            return DisplacementCurve(critical, base, 0.0, ((critical, weight),))
        # Type C: flat, slope -w down to zero at x_t = gp_x - offset, then +w.
        turn = gp_x - offset
        return DisplacementCurve(
            critical, base, 0.0, ((critical, -weight), (turn, 2.0 * weight))
        )

    @staticmethod
    def pushed_left(
        current_x: float, gp_x: float, offset: float, weight: float = 1.0
    ) -> "DisplacementCurve":
        """Curve of a local cell on the left of the insertion point.

        The cell's new position is ``min(current_x, x_t - offset)`` where
        ``offset`` is this cell's width plus the widths (and gaps) of cells
        between it and the target.  Produces type B when
        ``gp_x >= current_x`` and type D otherwise.
        """
        critical = current_x + offset  # Pushing happens below this x_t.
        base = weight * abs(current_x - gp_x)
        if gp_x >= current_x:  # Type B: slope -w, then flat.
            return DisplacementCurve(critical, base, -weight, ((critical, weight),))
        # Type D: slope -w, +w at x_t = gp_x + offset, flat past critical.
        turn = gp_x + offset
        return DisplacementCurve(
            critical, base, -weight, ((turn, 2.0 * weight), (critical, -weight))
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def value(self, x: float) -> float:
        """Evaluate the curve at ``x``."""
        # Integrate slope from the anchor to x.
        if x >= self.anchor_x:
            total = self.anchor_value
            position = self.anchor_x
            slope = self._slope_at_anchor()
            for bp_x, delta in self.breakpoints:
                if bp_x <= self.anchor_x:
                    continue
                if bp_x >= x:
                    break
                total += slope * (bp_x - position)
                position = bp_x
                slope += delta
            return total + slope * (x - position)
        # x < anchor: integrate backwards.  `slope` is always the slope
        # valid on the segment immediately LEFT of breakpoints already
        # crossed, i.e. right of the current sweep position.
        total = self.anchor_value
        position = self.anchor_x
        slope = self._slope_at_anchor()
        for bp_x, delta in reversed(self.breakpoints):
            if bp_x > self.anchor_x:
                continue
            if bp_x >= position:
                # Breakpoint at the anchor itself: cross it without moving.
                slope -= delta
                continue
            segment_lo = max(bp_x, x)
            total -= slope * (position - segment_lo)
            position = segment_lo
            if bp_x <= x:
                return total
            slope -= delta
        return total - slope * (position - x)

    def _slope_at_anchor(self) -> float:
        """Slope valid immediately right of the anchor."""
        slope = self.initial_slope
        for bp_x, delta in self.breakpoints:
            if bp_x <= self.anchor_x:
                slope += delta
        return slope

    def slope_pattern(self) -> List[float]:
        """The sequence of slopes across all pieces (for type checks)."""
        slopes = [self.initial_slope]
        for _, delta in self.breakpoints:
            slopes.append(slopes[-1] + delta)
        return slopes

    def curve_type(self) -> str:
        """Classify per Fig. 4 ('A', 'B', 'C', 'D'), 'V', or 'other'."""
        pattern = self.slope_pattern()
        signs = [0 if is_zero(s) else (1 if s > 0 else -1) for s in pattern]
        if signs == [0, 1]:
            return "A"
        if signs == [-1, 0]:
            return "B"
        if signs == [0, -1, 1]:
            return "C"
        if signs == [-1, 1, 0]:
            return "D"
        if signs == [-1, 1]:
            return "V"
        if signs == [0]:
            return "constant"
        return "other"

    def is_convex(self) -> bool:
        """True when every slope delta is non-negative."""
        return all(delta >= 0 for _, delta in self.breakpoints)


def sum_curves(curves: Sequence[DisplacementCurve]) -> DisplacementCurve:
    """Sum curves by merging breakpoints (paper Alg. 1 lines 3-7)."""
    if not curves:
        return DisplacementCurve.constant(0.0)
    anchor_x = min(curve.anchor_x for curve in curves)
    anchor_value = sum(curve.value(anchor_x) for curve in curves)
    initial_slope = sum(curve.initial_slope for curve in curves)
    merged: List[Tuple[float, float]] = []
    for curve in curves:
        merged.extend(curve.breakpoints)
    merged.sort()
    # Coalesce equal-x breakpoints (epsilon-tolerant: breakpoints derive
    # from float GP coordinates, so on-paper-equal x values can differ by
    # rounding; keeping them distinct would split one kink into two).
    coalesced: List[Tuple[float, float]] = []
    for bp_x, delta in merged:
        if coalesced and approx_eq(coalesced[-1][0], bp_x):
            coalesced[-1] = (coalesced[-1][0], coalesced[-1][1] + delta)
        else:
            coalesced.append((bp_x, delta))
    return DisplacementCurve(anchor_x, anchor_value, initial_slope, tuple(coalesced))


def minimize_over_sites(
    curves: Sequence[DisplacementCurve],
    lo: float,
    hi: float,
) -> Optional[Tuple[int, float]]:
    """Minimize the summed curve over integer sites in ``[lo, hi]``.

    Because the sum is piecewise linear, its minimum over any interval is
    attained at an interval end or a breakpoint; over integer sites, at
    the floor/ceil of those candidates.  Returns ``(best_x, best_cost)``
    or ``None`` when no integer site lies in the range.  Ties prefer the
    smaller x (deterministic).
    """
    lo_site = math.ceil(lo)
    hi_site = math.floor(hi)
    if lo_site > hi_site:
        return None

    total = sum_curves(curves)
    candidates = {lo_site, hi_site}
    for bp_x, _ in total.breakpoints:
        for candidate in (math.floor(bp_x), math.ceil(bp_x)):
            if lo_site <= candidate <= hi_site:
                candidates.add(candidate)

    best_x = None
    best_cost = math.inf
    for x in sorted(candidates):
        cost = total.value(x)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_x = x
    assert best_x is not None
    return best_x, best_cost


class CurveSet:
    """A summed curve compiled for fast repeated evaluation.

    :meth:`DisplacementCurve.value` re-walks every breakpoint from the
    anchor on each call, which makes the MGL hot path — one minimization
    plus up to ``2 * guard_max_shift`` guard probes per insertion point —
    quadratic in the breakpoint count.  ``CurveSet`` runs ``sum_curves``
    once and replays the forward and backward sweeps a single time,
    checkpointing the running ``(total, slope, position)`` state at every
    breakpoint into NumPy arrays; evaluating at ``x`` is then a binary
    search plus one multiply-add.

    Bit-exactness contract: each checkpoint is produced by the *same
    sequence of float operations* the reference walk performs up to that
    breakpoint, and the final multiply-add is the reference's last step,
    so ``CurveSet(curves).value(x) == sum_curves(curves).value(x)`` to
    the last bit, and :meth:`minimize` returns exactly what
    :func:`minimize_over_sites` would (property-tested in
    tests/test_perf_equivalence.py).  This is what lets the insertion
    engine switch to the compiled path without perturbing placements.
    """

    def __init__(self, curves: Sequence[DisplacementCurve]):
        self._compile(sum_curves(curves))

    @classmethod
    def from_total(cls, total: DisplacementCurve) -> "CurveSet":
        """Compile an already-summed curve, skipping :func:`sum_curves`.

        The SoA evaluation path assembles the summed curve directly from
        arrays (bit-identical to what ``sum_curves`` would produce from
        the per-cell factory curves); this constructor lets it reuse the
        compiled sweeps without paying for curve objects it never built.
        """
        compiled = cls.__new__(cls)
        compiled._compile(total)
        return compiled

    def _compile(self, total: DisplacementCurve) -> None:
        self.total = total
        anchor_x = total.anchor_x
        slope = total._slope_at_anchor()
        # Forward sweep (x >= anchor): state after fully crossing the
        # k-th breakpoint right of the anchor.
        fwd_x: List[float] = []
        fwd_total: List[float] = [total.anchor_value]
        fwd_slope: List[float] = [slope]
        fwd_pos: List[float] = [anchor_x]
        running = total.anchor_value
        position = anchor_x
        for bp_x, delta in total.breakpoints:
            if bp_x <= anchor_x:
                continue
            running = running + slope * (bp_x - position)
            position = bp_x
            slope = slope + delta
            fwd_x.append(bp_x)
            fwd_total.append(running)
            fwd_slope.append(slope)
            fwd_pos.append(position)
        # Backward sweep (x < anchor): the reference first crosses any
        # breakpoints sitting exactly on the anchor (slope-only), then
        # subtracts one full segment per strictly-left breakpoint.  The
        # k-th checkpoint is the state after k full segments.
        slope = total._slope_at_anchor()
        running = total.anchor_value
        position = anchor_x
        bwd_x: List[float] = []  # descending mover breakpoints
        bwd_total: List[float] = []
        bwd_slope: List[float] = []
        bwd_pos: List[float] = []
        for bp_x, delta in reversed(total.breakpoints):
            if bp_x > anchor_x:
                continue
            if bp_x >= position:
                slope = slope - delta
                continue
            if not bwd_x:
                bwd_total.append(running)
                bwd_slope.append(slope)
                bwd_pos.append(position)
            running = running - slope * (position - bp_x)
            position = bp_x
            slope = slope - delta
            bwd_x.append(bp_x)
            bwd_total.append(running)
            bwd_slope.append(slope)
            bwd_pos.append(position)
        if not bwd_x:
            bwd_total.append(running)
            bwd_slope.append(slope)
            bwd_pos.append(position)

        self._anchor_x = anchor_x
        self._fwd_x = fwd_x
        self._fwd_total = fwd_total
        self._fwd_slope = fwd_slope
        self._fwd_pos = fwd_pos
        self._bwd_x_asc = bwd_x[::-1]  # ascending, for bisect
        self._bwd_count = len(bwd_x)
        self._bwd_total = bwd_total
        self._bwd_slope = bwd_slope
        self._bwd_pos = bwd_pos
        # NumPy mirrors of the checkpoint tables, built on first use:
        # scalar probes (the guard's adjust_x walk) stay on the plain
        # lists, batch queries amortize the array construction.
        self._arrays: Optional[
            Tuple[
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
            ]
        ] = None

    def value(self, x: float) -> float:
        """Evaluate the summed curve at ``x`` (bit-equal to the reference)."""
        if x >= self._anchor_x:
            j = bisect_left(self._fwd_x, x)
            return float(
                self._fwd_total[j] + self._fwd_slope[j] * (x - self._fwd_pos[j])
            )
        k = self._bwd_count - bisect_right(self._bwd_x_asc, x)
        return float(
            self._bwd_total[k] - self._bwd_slope[k] * (self._bwd_pos[k] - x)
        )

    def values(
        self, xs: "Sequence[float] | npt.NDArray[np.float64]"
    ) -> npt.NDArray[np.float64]:
        """Vectorized :meth:`value` over a batch of positions.

        Accepts any array shape — 1-D probe lists and 2-D candidate
        batches (``candidates x probes``, the shape the SoA evaluation
        path feeds per window) evaluate through the same flattened
        searchsorted pass and come back in the input shape.  Small
        batches take the scalar path (the array round-trip costs more
        than it saves below a few dozen points); both paths perform the
        identical IEEE-754 multiply-add per point, so the results are
        bit-equal regardless of which is taken.
        """
        points = np.asarray(xs, dtype=np.float64)
        if points.size < 32:
            flat = np.array(
                [self.value(float(x)) for x in points.ravel()], dtype=np.float64
            )
            return flat.reshape(points.shape)
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._fwd_x),
                np.asarray(self._fwd_total),
                np.asarray(self._fwd_slope),
                np.asarray(self._fwd_pos),
                np.asarray(self._bwd_x_asc),
                np.asarray(self._bwd_total),
                np.asarray(self._bwd_slope),
                np.asarray(self._bwd_pos),
            )
        fwd_x, fwd_total, fwd_slope, fwd_pos, bwd_x, bwd_total, bwd_slope, bwd_pos = (
            self._arrays
        )
        flat_points = points.ravel()
        forward = flat_points >= self._anchor_x
        out = np.empty(flat_points.shape, dtype=np.float64)
        if forward.any():
            fx = flat_points[forward]
            js = np.searchsorted(fwd_x, fx, side="left")
            out[forward] = fwd_total[js] + fwd_slope[js] * (fx - fwd_pos[js])
        backward = ~forward
        if backward.any():
            bx = flat_points[backward]
            ks = self._bwd_count - np.searchsorted(bwd_x, bx, side="right")
            out[backward] = bwd_total[ks] - bwd_slope[ks] * (bwd_pos[ks] - bx)
        return out.reshape(points.shape)

    def minimize(self, lo: float, hi: float) -> Optional[Tuple[int, float]]:
        """Exactly :func:`minimize_over_sites`, using the compiled tables."""
        lo_site = math.ceil(lo)
        hi_site = math.floor(hi)
        if lo_site > hi_site:
            return None
        candidates = {lo_site, hi_site}
        for bp_x, _ in self.total.breakpoints:
            for candidate in (math.floor(bp_x), math.ceil(bp_x)):
                if lo_site <= candidate <= hi_site:
                    candidates.add(candidate)
        ordered = sorted(candidates)
        costs = self.values(ordered)
        best_x: Optional[int] = None
        best_cost = math.inf
        for x, cost in zip(ordered, costs):
            if cost < best_cost - 1e-12:
                best_cost = float(cost)
                best_x = x
        assert best_x is not None
        return best_x, best_cost
