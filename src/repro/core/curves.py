"""Piecewise-linear displacement curves (paper §3.1, Fig. 4).

When MGL evaluates an insertion point, every *local cell* contributes a
curve mapping the target cell's x position to the displacement that cell
would incur (measured from its **global-placement** position).  Local
cells right of the insertion point are only ever pushed right, cells left
of it only pushed left; whether their GP position lies before or behind
their current position yields the four curve types of Fig. 4:

=====  =====================  ====================================
type   slope pattern          meaning
=====  =====================  ====================================
A      ``0, +w``              right cell, GP at/left of current
B      ``-w, 0``              left cell, GP at/right of current
C      ``0, -w, +w``          right cell, GP right of current
D      ``-w, +w, 0``          left cell, GP left of current
V      ``-w, +w``             the target cell itself
=====  =====================  ====================================

The turning points (*breakpoints*) are either MLL's *critical positions*
(where pushing starts) or positions derived from GP locations.  Curves
sum by merging breakpoints (Alg. 1 lines 3-7); the optimum over a site
range is found by a linear sweep over the merged breakpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.model.approx import approx_eq, is_zero


@dataclass(frozen=True)
class DisplacementCurve:
    """A piecewise-linear function of the target cell's x position.

    The function is defined by an anchor point ``(anchor_x, anchor_value)``,
    the slope ``initial_slope`` valid for ``x <= first breakpoint``, and
    sorted ``breakpoints`` as ``(x, slope_delta)`` pairs.  The anchor may
    lie anywhere; evaluation integrates the slope from it.

    Instances are immutable; build them with the factory methods below.
    """

    anchor_x: float
    anchor_value: float
    initial_slope: float
    breakpoints: Tuple[Tuple[float, float], ...] = ()

    # ------------------------------------------------------------------
    # Factories (the Fig. 4 curve types)
    # ------------------------------------------------------------------

    @staticmethod
    def constant(value: float) -> "DisplacementCurve":
        """A constant curve (cells unaffected by the target)."""
        return DisplacementCurve(0.0, value, 0.0, ())

    @staticmethod
    def target(gp_x: float, weight: float = 1.0) -> "DisplacementCurve":
        """The target cell's own V-curve ``weight * |x - gp_x|``."""
        return DisplacementCurve(gp_x, 0.0, -weight, ((gp_x, 2.0 * weight),))

    @staticmethod
    def pushed_right(
        current_x: float, gp_x: float, offset: float, weight: float = 1.0
    ) -> "DisplacementCurve":
        """Curve of a local cell on the right of the insertion point.

        The cell's new position is ``max(current_x, x_t + offset)`` where
        ``offset`` is the target width plus the widths (and required gaps)
        of cells between the target and this cell.  Produces type A when
        ``gp_x <= current_x`` and type C otherwise.
        """
        critical = current_x - offset  # Pushing starts beyond this x_t.
        base = weight * abs(current_x - gp_x)
        if gp_x <= current_x:  # Type A: flat, then slope +w.
            return DisplacementCurve(critical, base, 0.0, ((critical, weight),))
        # Type C: flat, slope -w down to zero at x_t = gp_x - offset, then +w.
        turn = gp_x - offset
        return DisplacementCurve(
            critical, base, 0.0, ((critical, -weight), (turn, 2.0 * weight))
        )

    @staticmethod
    def pushed_left(
        current_x: float, gp_x: float, offset: float, weight: float = 1.0
    ) -> "DisplacementCurve":
        """Curve of a local cell on the left of the insertion point.

        The cell's new position is ``min(current_x, x_t - offset)`` where
        ``offset`` is this cell's width plus the widths (and gaps) of cells
        between it and the target.  Produces type B when
        ``gp_x >= current_x`` and type D otherwise.
        """
        critical = current_x + offset  # Pushing happens below this x_t.
        base = weight * abs(current_x - gp_x)
        if gp_x >= current_x:  # Type B: slope -w, then flat.
            return DisplacementCurve(critical, base, -weight, ((critical, weight),))
        # Type D: slope -w, +w at x_t = gp_x + offset, flat past critical.
        turn = gp_x + offset
        return DisplacementCurve(
            critical, base, -weight, ((turn, 2.0 * weight), (critical, -weight))
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def value(self, x: float) -> float:
        """Evaluate the curve at ``x``."""
        # Integrate slope from the anchor to x.
        if x >= self.anchor_x:
            total = self.anchor_value
            position = self.anchor_x
            slope = self._slope_at_anchor()
            for bp_x, delta in self.breakpoints:
                if bp_x <= self.anchor_x:
                    continue
                if bp_x >= x:
                    break
                total += slope * (bp_x - position)
                position = bp_x
                slope += delta
            return total + slope * (x - position)
        # x < anchor: integrate backwards.  `slope` is always the slope
        # valid on the segment immediately LEFT of breakpoints already
        # crossed, i.e. right of the current sweep position.
        total = self.anchor_value
        position = self.anchor_x
        slope = self._slope_at_anchor()
        for bp_x, delta in reversed(self.breakpoints):
            if bp_x > self.anchor_x:
                continue
            if bp_x >= position:
                # Breakpoint at the anchor itself: cross it without moving.
                slope -= delta
                continue
            segment_lo = max(bp_x, x)
            total -= slope * (position - segment_lo)
            position = segment_lo
            if bp_x <= x:
                return total
            slope -= delta
        return total - slope * (position - x)

    def _slope_at_anchor(self) -> float:
        """Slope valid immediately right of the anchor."""
        slope = self.initial_slope
        for bp_x, delta in self.breakpoints:
            if bp_x <= self.anchor_x:
                slope += delta
        return slope

    def slope_pattern(self) -> List[float]:
        """The sequence of slopes across all pieces (for type checks)."""
        slopes = [self.initial_slope]
        for _, delta in self.breakpoints:
            slopes.append(slopes[-1] + delta)
        return slopes

    def curve_type(self) -> str:
        """Classify per Fig. 4 ('A', 'B', 'C', 'D'), 'V', or 'other'."""
        pattern = self.slope_pattern()
        signs = [0 if is_zero(s) else (1 if s > 0 else -1) for s in pattern]
        if signs == [0, 1]:
            return "A"
        if signs == [-1, 0]:
            return "B"
        if signs == [0, -1, 1]:
            return "C"
        if signs == [-1, 1, 0]:
            return "D"
        if signs == [-1, 1]:
            return "V"
        if signs == [0]:
            return "constant"
        return "other"

    def is_convex(self) -> bool:
        """True when every slope delta is non-negative."""
        return all(delta >= 0 for _, delta in self.breakpoints)


def sum_curves(curves: Sequence[DisplacementCurve]) -> DisplacementCurve:
    """Sum curves by merging breakpoints (paper Alg. 1 lines 3-7)."""
    if not curves:
        return DisplacementCurve.constant(0.0)
    anchor_x = min(curve.anchor_x for curve in curves)
    anchor_value = sum(curve.value(anchor_x) for curve in curves)
    initial_slope = sum(curve.initial_slope for curve in curves)
    merged: List[Tuple[float, float]] = []
    for curve in curves:
        merged.extend(curve.breakpoints)
    merged.sort()
    # Coalesce equal-x breakpoints (epsilon-tolerant: breakpoints derive
    # from float GP coordinates, so on-paper-equal x values can differ by
    # rounding; keeping them distinct would split one kink into two).
    coalesced: List[Tuple[float, float]] = []
    for bp_x, delta in merged:
        if coalesced and approx_eq(coalesced[-1][0], bp_x):
            coalesced[-1] = (coalesced[-1][0], coalesced[-1][1] + delta)
        else:
            coalesced.append((bp_x, delta))
    return DisplacementCurve(anchor_x, anchor_value, initial_slope, tuple(coalesced))


def minimize_over_sites(
    curves: Sequence[DisplacementCurve],
    lo: float,
    hi: float,
) -> Optional[Tuple[int, float]]:
    """Minimize the summed curve over integer sites in ``[lo, hi]``.

    Because the sum is piecewise linear, its minimum over any interval is
    attained at an interval end or a breakpoint; over integer sites, at
    the floor/ceil of those candidates.  Returns ``(best_x, best_cost)``
    or ``None`` when no integer site lies in the range.  Ties prefer the
    smaller x (deterministic).
    """
    lo_site = math.ceil(lo)
    hi_site = math.floor(hi)
    if lo_site > hi_site:
        return None

    total = sum_curves(curves)
    candidates = {lo_site, hi_site}
    for bp_x, _ in total.breakpoints:
        for candidate in (math.floor(bp_x), math.ceil(bp_x)):
            if lo_site <= candidate <= hi_site:
                candidates.add(candidate)

    best_x = None
    best_cost = math.inf
    for x in sorted(candidates):
        cost = total.value(x)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_x = x
    assert best_x is not None
    return best_x, best_cost
