"""Global-move refinement: rip-up-and-reinsert the worst offenders.

An extension beyond the paper's three stages (in the spirit of detailed-
placement "global move" / MrDP's chain moves, which the paper cites as
related work):  after the flow finishes, the cells with the largest
remaining displacement are ripped up one at a time and re-inserted with
the same MGL window machinery; a move is kept only when it strictly
reduces the exact total weighted displacement, so the stage is monotone
and terminates.

Because stage 2 can only permute same-type positions and stage 3 cannot
change rows, this is the only stage that can fix a cell stranded in a
wrong row — at the cost of potentially disturbing its new neighbors
(which the accept test accounts for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.mgl import MGLegalizer
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.model.placement import Placement


@dataclass
class GlobalMoveStats:
    """Outcome of the global-move refinement."""

    attempted: int = 0
    accepted: int = 0
    rounds: int = 0
    disp_before: float = 0.0
    disp_after: float = 0.0
    max_before: float = 0.0
    max_after: float = 0.0


def optimize_global_moves(
    placement: Placement,
    params: Optional[LegalizerParams] = None,
    guard: Optional[RoutabilityGuard] = None,
    max_rounds: int = 2,
    fraction: float = 0.05,
) -> GlobalMoveStats:
    """Rip up and re-insert the worst-displaced cells, keeping improvements.

    Args:
        placement: a legal placement; refined in place.
        params: MGL parameters (window size etc.).
        guard: optional routability guard, as in the main flow.
        max_rounds: passes over the worst-offender list.
        fraction: share of movable cells considered per round (at least 4).

    Returns:
        Statistics; total weighted displacement never increases.
    """
    design = placement.design
    params = params or LegalizerParams()
    if guard is None and params.routability:
        guard = RoutabilityGuard(design, params)
    legalizer = MGLegalizer(design, params, guard=guard)
    weight_of = legalizer.weight_of

    occupancy = Occupancy(design, placement)
    for cell in range(design.num_cells):
        occupancy.add(cell)

    movable = design.movable_cells()
    stats = GlobalMoveStats()
    if not movable:
        return stats
    disps = [placement.displacement(c) for c in movable]
    stats.disp_before = sum(disps)
    stats.max_before = max(disps)

    budget = max(4, int(fraction * len(movable)))
    for round_index in range(max_rounds):
        stats.rounds = round_index + 1
        worst = sorted(
            movable, key=lambda c: (-placement.displacement(c), c)
        )[:budget]
        improved_any = False
        for cell in worst:
            stats.attempted += 1
            # Cost of the incumbent position: the cell's own weighted
            # displacement (neighbors are untouched by a no-op).
            incumbent = weight_of(cell) * placement.displacement(cell)
            occupancy.remove(cell)
            window = legalizer.initial_window(cell)
            insertion = legalizer.try_insert(occupancy, cell, window)
            if insertion is None or insertion.cost >= incumbent - 1e-9:
                # No strictly better spot: restore exactly.
                occupancy.add(cell)
                continue
            # insertion.cost is the exact objective delta of target +
            # spread moves (verified by the cost-prediction invariant in
            # the tests), so accepting it is guaranteed improvement.
            legalizer.apply_insertion(occupancy, cell, insertion)
            stats.accepted += 1
            improved_any = True
        if not improved_any:
            break

    disps = [placement.displacement(c) for c in movable]
    stats.disp_after = sum(disps)
    stats.max_after = max(disps)
    return stats
