"""Displacement metrics and the ICCAD-2017 contest score (paper Eq. 10).

The score combines

* ``S_am`` — average displacement weighted per cell height (Eq. 2),
* the maximum displacement,
* the HPWL increase ratio, and
* the routability violation counts ``N_p`` and ``N_e``

as ``S = (1 + S_hpwl + (N_p + N_e)/m) * (1 + max_disp/Delta) * S_am`` with
``Delta = 100``.  Lower is better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checker.routability import RoutabilityReport, count_routability_violations
from repro.model.design import Design
from repro.model.netlist import hpwl
from repro.model.placement import Placement

#: The contest's maximum-displacement normalizer (paper Eq. 10).
DELTA = 100.0


def average_displacement(placement: Placement) -> float:
    """Height-weighted average displacement ``S_am`` (Eq. 2).

    Each height class contributes the mean displacement of its cells;
    classes are averaged uniformly.  Only movable cells count.
    """
    design = placement.design
    groups = design.cells_by_height()
    if not groups:
        return 0.0
    total = 0.0
    for cells in groups.values():
        group_sum = sum(placement.displacement(cell) for cell in cells)
        total += group_sum / len(cells)
    return total / len(groups)


def max_displacement(placement: Placement) -> float:
    """Largest per-cell displacement in row-height units (movable cells)."""
    movable = placement.design.movable_cells()
    if not movable:
        return 0.0
    return max(placement.displacement(cell) for cell in movable)


def gp_hpwl(design: Design) -> float:
    """HPWL of the global-placement input, in length units."""
    centers: List[Tuple[float, float]] = []
    for cell in range(design.num_cells):
        cell_type = design.cell_type_of(cell)
        cx = (design.gp_x[cell] + cell_type.width / 2.0) * design.site_width
        cy = (design.gp_y[cell] + cell_type.height / 2.0) * design.row_height
        centers.append((cx, cy))
    return hpwl(design.netlist, centers)


@dataclass
class ScoreReport:
    """All components of the contest score for one placement."""

    avg_displacement: float
    max_displacement: float
    hpwl_before: float
    hpwl_after: float
    pin_violations: int
    edge_violations: int
    num_cells: int
    score: float
    routability: Optional[RoutabilityReport] = None

    @property
    def hpwl_ratio(self) -> float:
        """HPWL increase ratio ``S_hpwl`` (0 when there are no nets)."""
        if self.hpwl_before <= 0:
            return 0.0
        return (self.hpwl_after - self.hpwl_before) / self.hpwl_before

    def row(self) -> Dict[str, float]:
        """Flat dict of the metrics, convenient for benchmark tables."""
        return {
            "avg_disp": self.avg_displacement,
            "max_disp": self.max_displacement,
            "hpwl": self.hpwl_after,
            "hpwl_ratio": self.hpwl_ratio,
            "pin_violations": self.pin_violations,
            "edge_violations": self.edge_violations,
            "score": self.score,
        }


def contest_score(
    placement: Placement,
    routability: Optional[RoutabilityReport] = None,
) -> ScoreReport:
    """Compute the full contest score report for a placement.

    Args:
        placement: the legalized placement to score.
        routability: a precomputed violation report; computed here when
            omitted.
    """
    design = placement.design
    if routability is None:
        routability = count_routability_violations(placement)

    avg_disp = average_displacement(placement)
    max_disp = max_displacement(placement)
    hpwl_before = gp_hpwl(design)
    hpwl_after = hpwl(design.netlist, placement.centers_length_units())

    m = max(1, len(design.movable_cells()))
    s_hpwl = 0.0 if hpwl_before <= 0 else (hpwl_after - hpwl_before) / hpwl_before
    n_p = routability.pin_violations
    n_e = routability.edge_violations
    score = (1.0 + s_hpwl + (n_p + n_e) / m) * (1.0 + max_disp / DELTA) * avg_disp

    return ScoreReport(
        avg_displacement=avg_disp,
        max_displacement=max_disp,
        hpwl_before=hpwl_before,
        hpwl_after=hpwl_after,
        pin_violations=n_p,
        edge_violations=n_e,
        num_cells=m,
        score=score,
        routability=routability,
    )
