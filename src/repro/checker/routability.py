"""Soft-constraint routability checking: edge spacing and pin access/short.

Definitions follow paper §2 and Fig. 1:

* **edge spacing** — a minimum site gap is required between adjacent cell
  edges whose edge-type pair appears in the technology's
  :class:`~repro.model.technology.EdgeSpacingTable`;
* **pin short** — a signal pin on metal layer ``k`` overlaps a P/G rail or
  IO pin on layer ``k``;
* **pin access** — a signal pin on layer ``k`` overlaps a P/G rail or IO
  pin on layer ``k + 1``.

Cells of odd height placed on an off-parity row are vertically flipped to
align to the P/G rails, which mirrors their pin geometry inside the cell
frame; the checker models that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.model.design import Design
from repro.model.geometry import Rect
from repro.model.placement import Placement


@dataclass
class RoutabilityReport:
    """Violation counts plus per-violation details.

    ``pin_violations`` is ``N_p`` (access + short) and ``edge_violations``
    is ``N_e`` in the contest score (paper Eq. 10).
    """

    pin_short: int = 0
    pin_access: int = 0
    edge_violations: int = 0
    pin_short_details: List[str] = field(default_factory=list)
    pin_access_details: List[str] = field(default_factory=list)
    edge_details: List[str] = field(default_factory=list)

    @property
    def pin_violations(self) -> int:
        """Total ``N_p``: pin shorts plus pin access violations."""
        return self.pin_short + self.pin_access

    @property
    def total(self) -> int:
        return self.pin_violations + self.edge_violations

    def summary(self) -> str:
        return (
            f"{self.pin_short} pin shorts, {self.pin_access} pin access, "
            f"{self.edge_violations} edge-spacing violations"
        )


def cell_is_flipped(design: Design, cell: int, row: int) -> bool:
    """True when a cell at bottom-row ``row`` must be vertically flipped.

    Odd-height cells flip when their bottom row is off the design's power
    parity; even-height cells never flip (they must land on parity).
    """
    cell_type = design.cell_type_of(cell)
    if cell_type.parity_constrained:
        return False
    return row % 2 != design.power_parity


def placed_pin_rects(
    design: Design, placement: Placement, cell: int
) -> List[Tuple[str, int, Rect]]:
    """Signal-pin rectangles of ``cell`` in chip length units.

    Returns ``(pin_name, layer, rect)`` triples with vertical flipping
    applied when the placement row requires it.
    """
    cell_type = design.cell_type_of(cell)
    if not cell_type.pins:
        return []
    x_len = placement.x[cell] * design.site_width
    y_len = placement.y[cell] * design.row_height
    height_len = cell_type.height * design.row_height
    flipped = cell_is_flipped(design, cell, placement.y[cell])

    result: List[Tuple[str, int, Rect]] = []
    for pin in cell_type.pins:
        rect = pin.rect
        if flipped:
            rect = Rect(rect.xlo, height_len - rect.yhi, rect.xhi, height_len - rect.ylo)
        result.append((pin.name, pin.layer, rect.translated(x_len, y_len)))
    return result


def count_routability_violations(placement: Placement) -> RoutabilityReport:
    """Count all edge-spacing and pin access/short violations."""
    design = placement.design
    report = RoutabilityReport()
    _count_pin_violations(design, placement, report)
    _count_edge_violations(design, placement, report)
    return report


def _count_pin_violations(
    design: Design, placement: Placement, report: RoutabilityReport
) -> None:
    rails = design.rails
    for cell in range(design.num_cells):
        for pin_name, layer, rect in placed_pin_rects(design, placement, cell):
            if rails.pin_short(rect, layer):
                report.pin_short += 1
                report.pin_short_details.append(
                    f"cell {cell} pin {pin_name} short on M{layer}"
                )
            if rails.pin_access_blocked(rect, layer):
                report.pin_access += 1
                report.pin_access_details.append(
                    f"cell {cell} pin {pin_name} access blocked by M{layer + 1}"
                )


def _count_edge_violations(
    design: Design, placement: Placement, report: RoutabilityReport
) -> None:
    """Each adjacent cell pair violating its edge rule counts once."""
    table = design.technology.edge_spacing
    if len(table) == 0:
        return

    by_row: Dict[int, List[Tuple[int, int, int]]] = {}
    for cell in range(design.num_cells):
        cell_type = design.cell_type_of(cell)
        x, y = placement.x[cell], placement.y[cell]
        for row in range(y, y + cell_type.height):
            by_row.setdefault(row, []).append((x, x + cell_type.width, cell))

    seen_pairs: Set[Tuple[int, int]] = set()
    for row, spans in sorted(by_row.items()):
        spans.sort()
        for (x_lo, x_hi, left), (next_lo, _, right) in zip(spans, spans[1:]):
            gap = next_lo - x_hi
            if gap < 0:
                continue  # Overlap is a legality problem, not edge spacing.
            left_type = design.cell_type_of(left)
            right_type = design.cell_type_of(right)
            required = table.spacing(left_type.right_edge, right_type.left_edge)
            if gap < required:
                pair = (min(left, right), max(left, right))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                report.edge_violations += 1
                report.edge_details.append(
                    f"cells {left} and {right} on row {row}: gap {gap} < "
                    f"required {required}"
                )


def required_gap(design: Design, left_cell: int, right_cell: int) -> int:
    """Minimum site gap between two specific cells when horizontally adjacent."""
    table = design.technology.edge_spacing
    return table.spacing(
        design.cell_type_of(left_cell).right_edge,
        design.cell_type_of(right_cell).left_edge,
    )
