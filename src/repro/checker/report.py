"""Human-readable placement quality reports.

Aggregates everything the other checkers compute into one text report:
per-height displacement statistics (the ingredients of Eq. 2), an ASCII
displacement histogram, the routability violation breakdown, fence
utilization, and the contest score.  Used by ``repro check --verbose``
and handy in notebooks/logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.checker.legality import check_legal
from repro.checker.routability import count_routability_violations
from repro.checker.score import contest_score
from repro.model.placement import Placement


@dataclass
class HeightStats:
    """Displacement statistics for one cell-height class."""

    height: int
    count: int
    mean: float
    p50: float
    p90: float
    max: float


@dataclass
class FenceStats:
    """Occupancy of one fence region."""

    fence_id: int
    name: str
    cells: int
    utilization: float


@dataclass
class PlacementReport:
    """All quality facets of one placement."""

    legal: bool
    legality_summary: str
    height_stats: List[HeightStats] = field(default_factory=list)
    fence_stats: List[FenceStats] = field(default_factory=list)
    histogram: List[int] = field(default_factory=list)
    histogram_edges: List[float] = field(default_factory=list)
    pin_short: int = 0
    pin_access: int = 0
    edge_violations: int = 0
    avg_displacement: float = 0.0
    max_displacement: float = 0.0
    hpwl_ratio: float = 0.0
    score: float = 0.0


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def build_report(placement: Placement, bins: int = 8) -> PlacementReport:
    """Compute the full report for a placement."""
    design = placement.design
    legal = check_legal(placement)
    routability = count_routability_violations(placement)
    score = contest_score(placement, routability)

    report = PlacementReport(
        legal=legal.is_legal,
        legality_summary=legal.summary(),
        pin_short=routability.pin_short,
        pin_access=routability.pin_access,
        edge_violations=routability.edge_violations,
        avg_displacement=score.avg_displacement,
        max_displacement=score.max_displacement,
        hpwl_ratio=score.hpwl_ratio,
        score=score.score,
    )

    for height, cells in sorted(design.cells_by_height().items()):
        disps = sorted(placement.displacement(c) for c in cells)
        report.height_stats.append(
            HeightStats(
                height=height,
                count=len(cells),
                mean=sum(disps) / len(disps),
                p50=_percentile(disps, 0.50),
                p90=_percentile(disps, 0.90),
                max=disps[-1],
            )
        )

    movable = design.movable_cells()
    if movable:
        disps = [placement.displacement(c) for c in movable]
        top = max(disps) or 1.0
        edges = [top * i / bins for i in range(bins + 1)]
        counts = [0] * bins
        for value in disps:
            slot = min(bins - 1, int(value / top * bins))
            counts[slot] += 1
        report.histogram = counts
        report.histogram_edges = edges

    for fence in design.fences:
        members = [c for c in range(design.num_cells)
                   if design.fence_of(c) == fence.fence_id]
        capacity = sum(r.area for r in fence.rects)
        used = sum(
            design.cell_type_of(c).width * design.cell_type_of(c).height
            for c in members
        )
        report.fence_stats.append(
            FenceStats(
                fence_id=fence.fence_id,
                name=fence.name,
                cells=len(members),
                utilization=used / capacity if capacity else 0.0,
            )
        )
    return report


def format_report(report: PlacementReport, width: int = 40) -> str:
    """Render the report as plain text."""
    lines: List[str] = []
    lines.append(f"legality       : {report.legality_summary}")
    lines.append(
        f"displacement   : avg {report.avg_displacement:.3f}  "
        f"max {report.max_displacement:.2f} (row heights)"
    )
    lines.append(
        f"routability    : {report.pin_short} pin short, "
        f"{report.pin_access} pin access, "
        f"{report.edge_violations} edge spacing"
    )
    lines.append(
        f"score          : S = {report.score:.4f}  "
        f"(HPWL ratio {report.hpwl_ratio:+.4f})"
    )

    if report.height_stats:
        lines.append("per-height displacement (rows):")
        lines.append("  h  count   mean    p50    p90    max")
        for stats in report.height_stats:
            lines.append(
                f"  {stats.height}  {stats.count:5d}  {stats.mean:5.2f}  "
                f"{stats.p50:5.2f}  {stats.p90:5.2f}  {stats.max:5.2f}"
            )

    if report.histogram:
        lines.append("displacement histogram:")
        peak = max(report.histogram) or 1
        for slot, count in enumerate(report.histogram):
            lo = report.histogram_edges[slot]
            hi = report.histogram_edges[slot + 1]
            bar = "#" * max(1 if count else 0, round(width * count / peak))
            lines.append(f"  [{lo:6.2f},{hi:6.2f})  {count:5d} {bar}")

    if report.fence_stats:
        lines.append("fences:")
        for stats in report.fence_stats:
            lines.append(
                f"  {stats.fence_id}: {stats.name}  {stats.cells} cells, "
                f"{stats.utilization:.0%} full"
            )
    return "\n".join(lines)


def placement_report(placement: Placement) -> str:
    """One-call text report."""
    return format_report(build_report(placement))
