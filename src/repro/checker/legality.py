"""Hard-constraint legality checking.

A placement is *legal* when every movable cell

* sits on integer sites/rows inside the chip;
* lies, on every row it spans, inside a segment whose fence id matches the
  cell's fence assignment (this subsumes blockage avoidance, fence
  containment, and chip bounds);
* satisfies P/G parity (even-height cells on the design's power parity);
* overlaps no other cell;

and every fixed cell is exactly at its input position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.placement import Placement


@dataclass
class LegalityReport:
    """Outcome of :func:`check_legal`.

    Each list holds human-readable violation descriptions; the companion
    ``*_cells`` lists hold the offending cell indices for programmatic use.
    """

    out_of_bounds: List[str] = field(default_factory=list)
    segment_violations: List[str] = field(default_factory=list)
    parity_violations: List[str] = field(default_factory=list)
    overlaps: List[str] = field(default_factory=list)
    fixed_moved: List[str] = field(default_factory=list)

    overlap_pairs: List[Tuple[int, int]] = field(default_factory=list)
    violating_cells: List[int] = field(default_factory=list)

    @property
    def is_legal(self) -> bool:
        return not (
            self.out_of_bounds
            or self.segment_violations
            or self.parity_violations
            or self.overlaps
            or self.fixed_moved
        )

    def all_messages(self) -> List[str]:
        return (
            self.out_of_bounds
            + self.segment_violations
            + self.parity_violations
            + self.overlaps
            + self.fixed_moved
        )

    def summary(self) -> str:
        if self.is_legal:
            return "legal"
        return (
            f"{len(self.out_of_bounds)} out-of-bounds, "
            f"{len(self.segment_violations)} segment/fence, "
            f"{len(self.parity_violations)} parity, "
            f"{len(self.overlaps)} overlap, "
            f"{len(self.fixed_moved)} fixed-cell violations"
        )


def check_legal(placement: Placement) -> LegalityReport:
    """Check all hard constraints of ``placement``.

    Returns a :class:`LegalityReport`; ``report.is_legal`` is the verdict.
    """
    return _check(placement, range(placement.design.num_cells), full=True)


def check_legal_region(placement: Placement, cells: Iterable[int]) -> LegalityReport:
    """Check only the constraints touching ``cells`` (ECO verification).

    Per-cell constraints (bounds, parity, segments, fixedness) are checked
    for the given cells only; overlap is checked between those cells and
    *anything* sharing their rows, so an illegal interaction with an
    untouched neighbor is still caught.  Violations elsewhere in the
    placement are not reported — use :func:`check_legal` for a full sweep.
    """
    return _check(placement, list(cells), full=False)


def _check(
    placement: Placement, cells: Sequence[int], full: bool
) -> LegalityReport:
    design = placement.design
    report = LegalityReport()
    flagged: Set[int] = set()

    for cell in cells:
        instance = design.cells[cell]
        cell_type = instance.cell_type
        x, y = placement.x[cell], placement.y[cell]

        if instance.fixed:
            if x != int(instance.gp_x) or y != int(instance.gp_y):
                report.fixed_moved.append(
                    f"fixed cell {cell} ({instance.name}) moved to ({x}, {y})"
                )
                flagged.add(cell)
            continue

        if not (0 <= x and x + cell_type.width <= design.num_sites
                and 0 <= y and y + cell_type.height <= design.num_rows):
            report.out_of_bounds.append(
                f"cell {cell} ({instance.name}) at ({x}, {y}) size "
                f"{cell_type.width}x{cell_type.height} leaves the chip"
            )
            flagged.add(cell)
            continue

        if not design.row_parity_ok(cell, y):
            report.parity_violations.append(
                f"cell {cell} ({instance.name}) height {cell_type.height} "
                f"on row {y} breaks P/G parity {design.power_parity}"
            )
            flagged.add(cell)

        for row in range(y, y + cell_type.height):
            segment = design.segment_at(row, x)
            if (
                segment is None
                or not segment.contains_span(x, x + cell_type.width)
                or segment.fence_id != instance.fence_id
            ):
                report.segment_violations.append(
                    f"cell {cell} ({instance.name}) span [{x}, "
                    f"{x + cell_type.width}) on row {row} not in a fence-"
                    f"{instance.fence_id} segment"
                )
                flagged.add(cell)
                break

    _check_overlaps(placement, report, flagged,
                    None if full else set(cells))
    report.violating_cells = sorted(flagged)
    return report


def _check_overlaps(
    placement: Placement,
    report: LegalityReport,
    flagged: Set[int],
    focus: Optional[Set[int]] = None,
) -> None:
    """Sweep each row for overlapping cell spans.

    With ``focus`` given, only overlaps involving a focus cell are
    reported (region mode); rows not touched by any focus cell are
    skipped entirely.
    """
    design = placement.design
    focus_rows: Optional[Set[int]] = None
    if focus is not None:
        focus_rows = set()
        for cell in focus:
            y = placement.y[cell]
            height = design.cell_type_of(cell).height
            focus_rows.update(range(y, y + height))

    by_row: Dict[int, List[Tuple[int, int, int]]] = {}
    for cell in range(design.num_cells):
        cell_type = design.cell_type_of(cell)
        x, y = placement.x[cell], placement.y[cell]
        for row in range(y, y + cell_type.height):
            if focus_rows is not None and row not in focus_rows:
                continue
            by_row.setdefault(row, []).append((x, x + cell_type.width, cell))

    seen_pairs: Set[Tuple[int, int]] = set()
    for row, spans in by_row.items():
        spans.sort()
        # Active list of spans whose right edge is beyond the sweep point;
        # catches overlaps hidden behind a wide cell, not just neighbours.
        active: List[Tuple[int, int]] = []  # (x_hi, cell)
        for x_lo, x_hi, cell in spans:
            active = [(hi, other) for hi, other in active if hi > x_lo]
            for hi, other in active:
                pair = (min(cell, other), max(cell, other))
                if pair in seen_pairs:
                    continue
                if focus is not None and not (
                    cell in focus or other in focus
                ):
                    continue
                seen_pairs.add(pair)
                report.overlaps.append(
                    f"cells {pair[0]} and {pair[1]} overlap on row {row} "
                    f"near x={x_lo}"
                )
                flagged.update(pair)
            active.append((x_hi, cell))
    report.overlap_pairs = sorted(seen_pairs)
