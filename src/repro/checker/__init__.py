"""Legality, routability, and scoring of placements.

This is the reproduction's stand-in for the contest evaluator: it checks
the hard constraints (overlaps, site/row bounds, fences, P/G parity,
fixed cells), counts the soft routability violations (edge spacing, pin
access, pin short), and computes the ICCAD-2017 quality score (paper
Eq. 10) together with its ingredients ``S_am`` (Eq. 2), maximum
displacement, and HPWL increase.
"""

from repro.checker.legality import LegalityReport, check_legal, check_legal_region
from repro.checker.routability import (
    RoutabilityReport,
    count_routability_violations,
    placed_pin_rects,
)
from repro.checker.report import PlacementReport, build_report, format_report, placement_report
from repro.checker.score import ScoreReport, average_displacement, contest_score

__all__ = [
    "LegalityReport",
    "PlacementReport",
    "RoutabilityReport",
    "ScoreReport",
    "average_displacement",
    "check_legal",
    "check_legal_region",
    "contest_score",
    "count_routability_violations",
    "placed_pin_rects",
    "build_report",
    "format_report",
    "placement_report",
]
