"""Reproduction of "Routability-Driven and Fence-Aware Legalization for
Mixed-Cell-Height Circuits" (Li, Chow, Chen, Young, Yu — DAC 2018).

Public entry points:

* :class:`repro.model.Design` / :class:`repro.model.Placement` — problem
  and solution state;
* :func:`repro.legalize` — the full three-stage flow of the paper
  (MGL -> matching -> fixed-row-fixed-order MCF) with routability and
  fence handling;
* :mod:`repro.baselines` — prior-work legalizers used in the paper's
  comparisons;
* :mod:`repro.checker` — legality/routability checkers and the contest
  score;
* :mod:`repro.benchgen` — synthetic benchmark suites standing in for the
  ICCAD-2017 / ISPD-2015 contest benchmarks.
"""

__version__ = "1.0.0"

from repro.core import LegalizationResult, Legalizer, LegalizerParams, legalize
from repro.model import Design, Placement

__all__ = [
    "Design",
    "LegalizationResult",
    "Legalizer",
    "LegalizerParams",
    "Placement",
    "legalize",
    "__version__",
]
