"""Density sweep: where window-based legalization earns its keep.

Not a table in the paper, but the mechanism behind all of them: as
design density rises, greedy nearest-fit displacement degrades sharply
while MGL + post-processing stays flat(ter).  This bench sweeps density
at fixed cell count and reports both flows' average/max displacement.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector
from repro import LegalizerParams, legalize
from repro.baselines import legalize_tetris
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal
from repro.model.design import Design

DENSITIES = [0.4, 0.6, 0.8]


def design_at(density: float) -> Design:
    return generate_design(
        SyntheticSpec(
            name=f"dens{int(density * 100)}",
            cells_by_height={1: 350, 2: 30, 3: 12},
            density=density,
            seed=55,
            cluster_spread=3.5,
        )
    )


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("algo", ["greedy", "ours"])
def test_density_sweep(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    density: float,
    algo: str,
) -> None:
    design = design_at(density)
    params = LegalizerParams(routability=False, scheduler_capacity=1)

    if algo == "ours":
        runner = lambda: legalize(design, params).placement
    else:
        runner = lambda: legalize_tetris(design)
    placement = benchmark.pedantic(runner, iterations=1, rounds=1)
    assert check_legal(placement).is_legal

    disps = placement.displacements()
    if "density_sweep.txt" not in table_store:
        table_store["density_sweep.txt"] = TableCollector(
            "Density sweep — greedy vs the full flow (no routability)",
            ["density", "algo", "avg_disp", "max_disp"],
        )
    table_store["density_sweep.txt"].add(
        density=density,
        algo=algo,
        avg_disp=float(disps.mean()),
        max_disp=float(disps.max()),
    )
