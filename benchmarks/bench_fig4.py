"""Figure 4 — the four displacement-curve types and curve summation.

Reproduces the figure's taxonomy (types A-D arise exactly from the side
of the insertion point and the GP-vs-current relation) and benchmarks the
curve machinery of Algorithm 1: building, summing, and minimizing the
breakpoint curves for a realistic local-cell population.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

import pytest

from conftest import TableCollector
from repro.core.curves import DisplacementCurve, minimize_over_sites, sum_curves


def test_fig4_curve_types(
    benchmark: Any, table_store: Dict[str, TableCollector]
) -> None:
    cases = [
        ("A", DisplacementCurve.pushed_right(5, 3, 2), "right cell, GP left"),
        ("B", DisplacementCurve.pushed_left(5, 9, 2), "left cell, GP right"),
        ("C", DisplacementCurve.pushed_right(5, 9, 2), "right cell, GP right"),
        ("D", DisplacementCurve.pushed_left(5, 2, 2), "left cell, GP left"),
    ]
    if "fig4.txt" not in table_store:
        table_store["fig4.txt"] = TableCollector(
            "Fig. 4 — displacement curve types",
            ["type", "construction", "breakpoints", "slopes"],
        )
    types = benchmark(lambda: [curve.curve_type() for _, curve, _ in cases])
    assert types == [expected for expected, _, _ in cases]
    for expected, curve, construction in cases:
        table_store["fig4.txt"].add(
            type=expected,
            construction=construction,
            breakpoints=", ".join(f"{x:g}" for x, _ in curve.breakpoints),
            slopes=", ".join(f"{s:g}" for s in curve.slope_pattern()),
        )


def _random_curves(count: int, seed: int = 3) -> List[DisplacementCurve]:
    rng = random.Random(seed)
    curves = [DisplacementCurve.target(rng.uniform(0, 100))]
    for _ in range(count):
        cur = rng.uniform(0, 100)
        gp = rng.uniform(0, 100)
        off = rng.uniform(1, 10)
        if rng.random() < 0.5:
            curves.append(DisplacementCurve.pushed_right(cur, gp, off))
        else:
            curves.append(DisplacementCurve.pushed_left(cur, gp, off))
    return curves


@pytest.mark.parametrize("count", [8, 32, 128])
def test_fig4_sum_and_minimize(benchmark: Any, count: int) -> None:
    """Alg. 1 lines 3-11: sort breakpoints, build the sum, take the min."""
    curves = _random_curves(count)

    def run() -> Optional[Tuple[int, float]]:
        return minimize_over_sites(curves, 0, 100)

    best = benchmark(run)
    assert best is not None
    x, cost = best
    # Validate against dense evaluation.
    total = sum_curves(curves)
    dense_best = min(total.value(s) for s in range(0, 101))
    assert cost == pytest.approx(dense_best, abs=1e-9)


def test_fig4_breakpoint_count_linear(benchmark: Any) -> None:
    """#breakpoints is linear in #local cells (the paper's efficiency
    argument for evaluating each breakpoint)."""
    def totals() -> List[DisplacementCurve]:
        return [sum_curves(_random_curves(count)) for count in (10, 50, 200)]

    for count, total in zip((10, 50, 200), benchmark(totals)):
        assert len(total.breakpoints) <= 2 * (count + 1)
