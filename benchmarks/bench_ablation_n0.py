"""Ablation — the max-displacement weight ``n_0`` of Eq. 8 (§3.3.1).

``n_0`` balances maximum against average displacement in the stage-3
objective.  ``n_0 = 0`` reduces to the pure total-displacement MCF;
larger values spend average displacement to pull in the worst cell.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector, bench_scale
from repro.benchgen import iccad2017_suite
from repro.checker import check_legal
from repro.core.flowopt import optimize_fixed_row_order
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.placement import Placement

CASE = iccad2017_suite(scale=bench_scale(), names=["des_perf_a_md2"])[0]

N0S = [0, 2, 8, 32]


@pytest.fixture(scope="module")
def base_placement() -> Placement:
    design = CASE.build()
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    placement = MGLegalizer(design, params).run()
    assert check_legal(placement).is_legal
    return placement


@pytest.mark.parametrize("n0", N0S)
def test_ablation_n0(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    base_placement: Placement,
    n0: int,
) -> None:
    placement = base_placement.copy()
    params = LegalizerParams(routability=False, flow_n0=n0)

    stats = benchmark.pedantic(
        optimize_fixed_row_order, args=(placement, params),
        iterations=1, rounds=1,
    )
    assert check_legal(placement).is_legal
    if "ablation_n0.txt" not in table_store:
        table_store["ablation_n0.txt"] = TableCollector(
            "Ablation — Eq. 8 weight n_0 (des_perf_a_md2 stand-in)",
            ["n0", "avg_disp", "max_disp", "moved", "backend"],
        )
    table_store["ablation_n0.txt"].add(
        n0=n0,
        avg_disp=stats.avg_disp_after,
        max_disp=stats.max_disp_after,
        moved=stats.moved,
        backend=stats.backend,
    )
