"""Runtime scaling of the full flow (the Tables' "Runtime (s)" columns).

The paper reports C++/LEMON runtimes from 0.4 s (29k cells) to 27.6 s
(1.3M cells) — roughly linear in cell count.  Contest scale is out of
reach for pure Python (see DESIGN.md), but the *scaling shape* of our
implementation is measurable: this bench sweeps the cell count at fixed
density and reports wall time per stage, verifying near-linear growth
(the windowed insertion is O(cells x window work); the post-processing
MCF dominates asymptotically).
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector
from repro import LegalizerParams, legalize
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal
from repro.model.design import Design

SIZES = [200, 400, 800]


def design_of(size: int) -> Design:
    doubles = max(4, size // 12)
    talls = max(2, size // 30)
    return generate_design(
        SyntheticSpec(
            name=f"scale{size}",
            cells_by_height={1: size - doubles - talls, 2: doubles, 3: talls},
            density=0.6,
            seed=77,
        )
    )


@pytest.mark.parametrize("size", SIZES)
def test_runtime_scaling(
    benchmark: Any, table_store: Dict[str, TableCollector], size: int
) -> None:
    design = design_of(size)
    params = LegalizerParams(routability=False, scheduler_capacity=1)

    result = benchmark.pedantic(
        legalize, args=(design, params), iterations=1, rounds=1
    )
    assert check_legal(result.placement).is_legal

    if "runtime_scaling.txt" not in table_store:
        table_store["runtime_scaling.txt"] = TableCollector(
            "Runtime scaling of the full flow (density 0.6)",
            ["cells", "mgl_s", "matching_s", "flow_s", "total_s",
             "us_per_cell"],
        )
    total = result.total_seconds
    table_store["runtime_scaling.txt"].add(
        cells=design.num_cells,
        mgl_s=result.after_mgl.seconds,
        matching_s=result.after_matching.seconds if result.after_matching else 0,
        flow_s=result.after_flow.seconds if result.after_flow else 0,
        total_s=total,
        us_per_cell=1e6 * total / design.num_cells,
    )
