"""Ablation — MCF solver backends (§3.3.1).

The paper deploys network simplex with the first-eligible pivot rule
(LEMON); we compare our network simplex against successive shortest
paths and the scipy/HiGHS LP on identical stage-3 instances, checking
they produce identical objective values while differing in speed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

import pytest

from conftest import TableCollector
from repro.core.flowopt import FixedRowOrderProblem, build_dual_graph, solve_lp
from repro.flow.graph import FlowGraph, FlowResult
from repro.flow.network_simplex import NetworkSimplex
from repro.flow.ssp import solve_ssp


def make_problem(n: int, seed: int = 11) -> FixedRowOrderProblem:
    rng = random.Random(seed)
    gps = sorted(rng.randint(0, 5 * n) for _ in range(n))
    widths = [rng.randint(1, 4) for _ in range(n)]
    return FixedRowOrderProblem(
        cells=list(range(n)),
        weights=[1] * n,
        widths=widths,
        gp_x=gps,
        dy=[rng.randint(0, 3) for _ in range(n)],
        lower=[0] * n,
        upper=[7 * n - w for w in widths],
        pairs=[(i, i + 1, widths[i]) for i in range(n - 1)],
    )


PROBLEM = make_problem(300)
N0 = 4


def _positions_from(
    graph: FlowGraph, v_z: int, result: FlowResult, n: int
) -> List[int]:
    pi = result.potentials
    return [pi[v_z] - pi[k] for k in range(n)]


def run_network_simplex() -> List[int]:
    graph, v_z = build_dual_graph(PROBLEM, N0)
    result = NetworkSimplex(graph).solve()
    return _positions_from(graph, v_z, result, len(PROBLEM.cells))


def run_ssp() -> List[int]:
    graph, v_z = build_dual_graph(PROBLEM, N0)
    result = solve_ssp(graph)
    return _positions_from(graph, v_z, result, len(PROBLEM.cells))


def run_lp() -> List[int]:
    return solve_lp(PROBLEM, N0)


BACKENDS = {
    "network_simplex": run_network_simplex,
    "ssp": run_ssp,
    "lp_highs": run_lp,
}


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_ablation_solver(
    benchmark: Any, table_store: Dict[str, TableCollector], backend: str
) -> None:
    xs = benchmark(BACKENDS[backend])
    assert PROBLEM.check_feasible(xs) == []
    objective = PROBLEM.objective(xs, N0)
    reference = PROBLEM.objective(run_lp(), N0)
    assert objective == reference  # all backends reach the optimum

    if "ablation_solver.txt" not in table_store:
        table_store["ablation_solver.txt"] = TableCollector(
            "Ablation — stage-3 solver backends (300-cell chain)",
            ["backend", "objective"],
        )
    table_store["ablation_solver.txt"].add(backend=backend, objective=objective)
