"""Shared benchmark infrastructure.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run every benchmark row of each table instead
  of the representative default subset;
* ``REPRO_BENCH_SCALE=<float>`` — override the cell-count scale factor
  versus the contest originals (default 0.004: a few hundred cells per
  case, so the whole harness finishes in minutes on a laptop).

Each table module accumulates result rows and prints the formatted table
(the same columns the paper reports) at module teardown; tables are also
written to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Sequence

import pytest

OUT_DIR = Path(__file__).parent / "out"


def bench_full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_scale(default: float = 0.004) -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def select_cases(all_names: Sequence[str], subset: Sequence[str]) -> List[str]:
    """The default representative subset, or everything under FULL."""
    if bench_full():
        return list(all_names)
    return [name for name in subset if name in all_names]


class TableCollector:
    """Accumulates table rows and renders them on flush."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, object]] = []

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def render(self) -> str:
        widths = {
            col: max(len(col), *(len(_fmt(r.get(col))) for r in self.rows))
            if self.rows else len(col)
            for col in self.columns
        }
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(col.ljust(widths[col]) for col in self.columns))
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row.get(col)).ljust(widths[col]) for col in self.columns
                )
            )
        return "\n".join(lines)

    def flush(self, filename: str) -> None:
        if not self.rows:
            return
        text = self.render()
        print("\n" + text + "\n")
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / filename).write_text(text + "\n")


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@pytest.fixture(scope="session")
def table_store() -> Iterator[Dict[str, TableCollector]]:
    """Session store of TableCollector objects, flushed at session end."""
    store: Dict[str, TableCollector] = {}
    yield store
    for filename, collector in store.items():
        collector.flush(filename)
