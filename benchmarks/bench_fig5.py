"""Figure 5 — the dual-MCF graph of the fixed-row-fixed-order problem.

Reproduces the figure's example (two single-row cells and one double-row
cell) and checks the structural claims of §3.3: ``m + 1`` nodes (plus
``v_p``/``v_n`` with the max-displacement extension) versus MrDP's
``3m + 2``, the edge inventory/caps/costs, and that solving the dual and
reading potentials recovers the primal optimum.  The benchmark measures
the solve on growing chains.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

import pytest

from conftest import TableCollector
from repro.core.flowopt import FixedRowOrderProblem, build_dual_graph, solve_mcf
from repro.flow.graph import edges_by_name
from repro.flow.network_simplex import NetworkSimplex


def figure5_problem() -> FixedRowOrderProblem:
    """c1, c2 single-row; c3 double-row to the right of both."""
    return FixedRowOrderProblem(
        cells=[0, 1, 2],
        weights=[1, 1, 1],
        widths=[2, 2, 2],
        gp_x=[1, 2, 6],
        dy=[0, 1, 0],
        lower=[0, 0, 0],
        upper=[8, 8, 8],
        pairs=[(0, 2, 2), (1, 2, 2)],
    )


def test_fig5_graph_structure(
    benchmark: Any, table_store: Dict[str, TableCollector]
) -> None:
    problem = figure5_problem()
    graph, v_z = benchmark(build_dual_graph, problem, 2)
    names = edges_by_name(graph)

    assert graph.num_nodes == 6  # v_1..v_3, v_z, v_p, v_n
    # Edge inventory of the figure: per-cell f+/f-/fl/fr and fp/fn, the
    # neighbor arcs f_13/f_23, and the dotted fP/fN arcs.
    for base in ("f+", "f-", "fl", "fr", "fp", "fn"):
        for k in range(3):
            assert f"{base}{k}" in names
    assert "fe0_2" in names and "fe1_2" in names
    assert "fP" in names and "fN" in names
    assert graph.edges[names["fP"]].capacity == 2  # n_0
    assert graph.edges[names["f+1"]].capacity == 1  # n_i

    if "fig5.txt" not in table_store:
        table_store["fig5.txt"] = TableCollector(
            "Fig. 5 — dual-MCF graph inventory (3-cell example)",
            ["nodes", "edges", "mrdp_nodes", "mrdp_edges"],
        )
    table_store["fig5.txt"].add(
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        mrdp_nodes=3 * 3 + 2,   # the paper's comparison: 3m + 2
        mrdp_edges=6 * 3 + 2,   # 6m + |E|
    )


def test_fig5_solution_via_potentials(benchmark: Any) -> None:
    problem = figure5_problem()
    xs = benchmark(solve_mcf, problem, 0)
    assert problem.check_feasible(xs) == []
    assert xs == [1, 2, 6]  # everyone reaches GP in the toy


def _chain(n: int, seed: int = 4) -> FixedRowOrderProblem:
    rng = random.Random(seed)
    gps = sorted(rng.randint(0, 6 * n) for _ in range(n))
    widths = [rng.randint(1, 4) for _ in range(n)]
    return FixedRowOrderProblem(
        cells=list(range(n)),
        weights=[1] * n,
        widths=widths,
        gp_x=gps,
        dy=[rng.randint(0, 3) for _ in range(n)],
        lower=[0] * n,
        upper=[8 * n - w for w in widths],
        pairs=[(i, i + 1, widths[i]) for i in range(n - 1)],
    )


@pytest.mark.parametrize("n", [50, 200, 800])
def test_fig5_network_simplex_scaling(benchmark: Any, n: int) -> None:
    problem = _chain(n)

    def solve() -> List[int]:
        graph, v_z = build_dual_graph(problem, n0=4)
        result = NetworkSimplex(graph).solve()
        pi = result.potentials
        return [pi[v_z] - pi[k] for k in range(n)]

    xs = benchmark.pedantic(solve, iterations=1, rounds=1)
    assert problem.check_feasible(xs) == []
