"""Ablation — MGL window size and expansion policy (§3.1, §3.5).

DESIGN.md calls out the window geometry as the main quality/runtime
knob: small windows are fast but see fewer insertion points; large ones
approach exhaustive search.  This bench sweeps the initial window size on
one mid-density case and reports displacement vs evaluated insertions.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import pytest

from conftest import TableCollector, bench_scale
from repro.benchgen import iccad2017_suite
from repro.checker import check_legal
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.placement import Placement

CASE = iccad2017_suite(scale=bench_scale(), names=["fft_2_md2"])[0]

WINDOWS = [(12, 4), (24, 8), (48, 12)]


@pytest.mark.parametrize("window", WINDOWS, ids=lambda w: f"{w[0]}x{w[1]}")
def test_ablation_window(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    window: Tuple[int, int],
) -> None:
    design = CASE.build()
    width, height = window
    params = LegalizerParams(
        routability=False, scheduler_capacity=1,
        window_width=width, window_height=height,
    )

    def run() -> Tuple[MGLegalizer, Placement]:
        legalizer = MGLegalizer(design, params)
        placement = legalizer.run()
        return legalizer, placement

    legalizer, placement = benchmark.pedantic(run, iterations=1, rounds=1)
    assert check_legal(placement).is_legal

    disps = placement.displacements()
    if "ablation_window.txt" not in table_store:
        table_store["ablation_window.txt"] = TableCollector(
            "Ablation — MGL window size (fft_2_md2 stand-in)",
            ["window", "avg_disp", "max_disp", "insertions", "expansions"],
        )
    table_store["ablation_window.txt"].add(
        window=f"{width}x{height}",
        avg_disp=float(disps.mean()),
        max_disp=float(disps.max()),
        insertions=legalizer.stats["insertions_evaluated"],
        expansions=legalizer.stats["window_expansions"],
    )
