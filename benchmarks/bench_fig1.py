"""Figure 1 — pin access and pin short detection.

The figure defines the two violation kinds: a pin on layer k overlapping
a P/G shape on layer k (short) or on layer k+1 (access blocked).  This
bench constructs the figure's situation — an M1 pin under an M2 rail and
an M2 pin on an M2 rail — and measures the checker over a swept design,
verifying both kinds are detected and counted stably.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector
from repro.checker import count_routability_violations
from repro.model.design import Design
from repro.model.geometry import Interval, Rect
from repro.model.placement import Placement
from repro.model.rails import HORIZONTAL, Rail
from repro.model.technology import CellType, PinShape, Technology


def figure1_design() -> Design:
    tech = Technology(
        cell_types=[
            CellType(
                "FIG1", 3, 1,
                pins=(
                    PinShape("m1", 1, Rect(0.05, 0.2, 0.25, 0.6)),
                    PinShape("m2", 2, Rect(0.3, 1.0, 0.45, 1.5)),
                ),
            ),
        ]
    )
    design = Design(tech, num_rows=32, num_sites=120, name="fig1")
    # M2 stripes every 4 rows; some cross the M1 pin band, some the M2 pin.
    design.rails.add_rail(
        Rail(2, HORIZONTAL, offset=0.3, pitch=8.0, width=0.25,
             span=Interval(0, 64), extent=Interval(0, 24))
    )
    design.rails.add_rail(
        Rail(2, HORIZONTAL, offset=5.1, pitch=8.0, width=0.25,
             span=Interval(0, 64), extent=Interval(0, 24))
    )
    for index in range(200):
        design.add_cell(
            f"c{index}", tech.type_named("FIG1"),
            (index * 7) % 110, (index * 3) % 31,
        )
    return design


def test_fig1_detection_counts(
    benchmark: Any, table_store: Dict[str, TableCollector]
) -> None:
    design = figure1_design()
    placement = Placement.from_gp_rounded(design)

    report = benchmark(count_routability_violations, placement)
    # Both violation kinds of Fig. 1 must occur in this construction.
    assert report.pin_access > 0
    assert report.pin_short > 0
    benchmark.extra_info.update(
        pin_access=report.pin_access, pin_short=report.pin_short
    )
    if "fig1.txt" not in table_store:
        table_store["fig1.txt"] = TableCollector(
            "Fig. 1 — pin access / pin short detection",
            ["cells", "pin_access", "pin_short"],
        )
    table_store["fig1.txt"].add(
        cells=design.num_cells,
        pin_access=report.pin_access,
        pin_short=report.pin_short,
    )


def test_fig1_row_semantics(benchmark: Any) -> None:
    """Single-cell sanity: layer-(k+1) overlap is access, layer-k is short."""
    design = figure1_design()
    placement = Placement(design)
    placement.move(0, 5, 0)  # row 0: M1 pin under the 0.3-offset M2 stripe
    for cell in range(1, design.num_cells):
        placement.move(cell, 0, 1)  # park the rest on a stripe-free row
    report = benchmark(count_routability_violations, placement)
    assert report.pin_access == 1
    assert report.pin_short == 0
