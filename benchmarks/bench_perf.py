"""MGL hot-path benchmark: wall time, throughput, and determinism hashes.

Runs the synthetic ICCAD-2017 suite through bare MGL (the stage this
repo's perf work targets) at three sizes and writes ``BENCH_mgl.json``
with, per run: wall time, cells/second, insertion points evaluated,
window expansions, and the gap-cache hit rate — plus a placement hash so
two runs (or two revisions) can be diffed for determinism drift.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full: 3 scales
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke

``--quick`` runs the smallest scale on a case subset, additionally
cross-checks ``candidate_order=best_first`` against ``linear`` and
capacity 1 against its own replay (placements must be bit-identical),
and exits non-zero on any mismatch.  CI runs it twice and fails when the
two reports' hashes differ.

Both modes also run a **serial-vs-workers** section: the largest case is
legalized with ``scheduler_workers=0`` and with a process pool at the
same capacity; the report records the wall-clock speedup and the run
*fails* if the two placements are not bit-identical.  The speedup is
informational by default (it depends on the host's core count; this is
~1x on a single-core box) — pass ``--require-speedup X`` to enforce a
floor on capable machines.

A **scalar-vs-vector** section runs the big (``>=2k`` cells) scale with
``eval_backend=scalar`` and ``eval_backend=vector``: the placements and
``insertions_evaluated`` counts must be bit-identical (fatal when not),
and the report records both throughputs plus the ratio.  A second pair
stacks the vector backend on the process-pool scheduler at batch
capacity, against a scalar serial run at the same capacity — the
combined ratio is what multicore hosts see.  Like the worker speedup,
both ratios are informational by default (the serial ratio is
host-independent but modest; the stacked ratio scales with cores) —
``--require-backend-speedup X`` enforces a floor on the stacked ratio.

A **tracing-overhead** section legalizes the backend-scale case
untraced and traced at ``sample_every=16`` with a live progress emitter
attached (best of two each): the placements must be bit-identical
(fatal) and the wall overhead is recorded for the
``check_regression.py --max-trace-overhead`` budget gate.  Skipped in
``--quick`` mode unless ``--overhead-scale`` is given — tiny runs
measure timer noise, not tracing.

The consistency self-checks (``Occupancy.verify_consistent``) are
disabled so measured time is the algorithm, not the checks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.benchgen.suites import iccad2017_suite
from repro.core.mgl import MGLegalizer
from repro.core.occupancy import set_expensive_checks
from repro.core.params import LegalizerParams
from repro.model.placement import Placement
from repro.obs.manifest import build_manifest, placement_digest, write_manifest
from repro.obs.tracer import SpanTracer
from repro.perf import PerfRecorder

SCALES = [0.004, 0.01, 0.02]
QUICK_SCALE = 0.004
QUICK_CASES = ["des_perf_b_md2", "fft_a_md2", "pci_bridge32_b_md3"]
# Scalar-vs-vector comparison case: >=2k cells (5634 at this scale).
BACKEND_SCALE = 0.05
BACKEND_CASE = "des_perf_b_md2"
# Sharded-legalization case: >=20k cells (the CI scale-tier gate).
SHARD_SCALE = 0.2
SHARD_CASE = "des_perf_b_md2"
SHARD_COUNT = 4
SHARD_HALO_ROWS = 2
# Tracing-overhead case: the sampling stride the <5% budget is quoted
# at, measured on the backend scale (big enough for stable wall times).
OVERHEAD_SCALE = BACKEND_SCALE
OVERHEAD_CASE = BACKEND_CASE
OVERHEAD_SAMPLE_EVERY = 16

RunRecord = Dict[str, Union[str, int, float]]


def placement_hash(placement: Placement) -> str:
    """Order-stable digest of all cell positions (manifest-compatible)."""
    return placement_digest(placement)


def run_mgl(
    design_name: str,
    scale: float,
    params: LegalizerParams,
) -> RunRecord:
    """Legalize one suite case with bare MGL and collect the record."""
    case = next(
        c for c in iccad2017_suite(scale=scale, names=[design_name])
    )
    design = case.build()
    recorder = PerfRecorder()
    legalizer = MGLegalizer(design, params)
    start = time.perf_counter()
    with recorder.stage("mgl"):
        placement = legalizer.run()
    seconds = time.perf_counter() - start
    recorder.merge_counters(legalizer.stats, prefix="mgl.")
    hits = legalizer.stats.get("gap_cache_hits", 0)
    misses = legalizer.stats.get("gap_cache_misses", 0)
    lookups = hits + misses
    return {
        "name": design_name,
        "scale": scale,
        "cells": design.num_cells,
        "seconds": round(seconds, 4),
        "cells_per_sec": round(design.num_cells / seconds, 1),
        "insertions_evaluated": legalizer.stats["insertions_evaluated"],
        "window_expansions": legalizer.stats["window_expansions"],
        "gap_cache_hits": hits,
        "gap_cache_misses": misses,
        "gap_cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "candidate_order": params.candidate_order,
        "scheduler_capacity": params.scheduler_capacity,
        "eval_backend": params.eval_backend,
        "placement_hash": placement_hash(placement),
    }


def run_parallel_section(
    name: str, scale: float, workers: int, capacity: int
) -> Dict[str, Union[str, int, float, bool]]:
    """Serial vs. process-pool comparison at a fixed scheduler capacity.

    Both runs use the same ``scheduler_capacity`` so the only variable
    is *where* evaluations execute; the placements must therefore be
    bit-identical (that assertion is the determinism gate CI relies on),
    and the wall-clock ratio is the measured multicore speedup.
    """
    serial = run_mgl(
        name, scale, LegalizerParams(scheduler_capacity=capacity)
    )
    parallel = run_mgl(
        name,
        scale,
        LegalizerParams(scheduler_capacity=capacity, scheduler_workers=workers),
    )
    return {
        "name": name,
        "scale": scale,
        "capacity": capacity,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "serial_seconds": serial["seconds"],
        "parallel_seconds": parallel["seconds"],
        "speedup": round(
            float(serial["seconds"]) / max(float(parallel["seconds"]), 1e-9), 3
        ),
        "serial_hash": serial["placement_hash"],
        "parallel_hash": parallel["placement_hash"],
        "hashes_match": serial["placement_hash"] == parallel["placement_hash"],
    }


def run_backend_section(
    name: str, scale: float, workers: int, capacity: int
) -> Dict[str, Union[str, int, float, bool]]:
    """Scalar-vs-vector equivalence and throughput on the big scale.

    The scalar backend is the oracle: the vector backend must reproduce
    its placement *and* its ``insertions_evaluated`` count bit-exactly
    (both are fatal gates in ``main``).  Two comparisons are recorded:

    * serial: backend is the only variable (capacity 1, no workers) —
      ``vector_vs_scalar`` is the host-independent vectorization gain;
    * stacked: vector backend + process pool at ``capacity`` against a
      scalar serial run at the same capacity — ``stacked_vs_scalar`` is
      the combined gain and grows with the host's core count.
    """
    scalar = run_mgl(name, scale, LegalizerParams(eval_backend="scalar"))
    vector = run_mgl(name, scale, LegalizerParams(eval_backend="vector"))
    scalar_cap = run_mgl(
        name,
        scale,
        LegalizerParams(eval_backend="scalar", scheduler_capacity=capacity),
    )
    stacked = run_mgl(
        name,
        scale,
        LegalizerParams(
            eval_backend="vector",
            scheduler_capacity=capacity,
            scheduler_workers=workers,
        ),
    )
    return {
        "name": name,
        "scale": scale,
        "cells": scalar["cells"],
        "capacity": capacity,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "scalar_seconds": scalar["seconds"],
        "vector_seconds": vector["seconds"],
        "scalar_cells_per_sec": scalar["cells_per_sec"],
        "vector_cells_per_sec": vector["cells_per_sec"],
        "vector_vs_scalar": round(
            float(scalar["seconds"]) / max(float(vector["seconds"]), 1e-9), 3
        ),
        "stacked_seconds": stacked["seconds"],
        "stacked_cells_per_sec": stacked["cells_per_sec"],
        "stacked_vs_scalar": round(
            float(scalar_cap["seconds"])
            / max(float(stacked["seconds"]), 1e-9),
            3,
        ),
        "scalar_hash": scalar["placement_hash"],
        "vector_hash": vector["placement_hash"],
        "hashes_match": (
            scalar["placement_hash"] == vector["placement_hash"]
        ),
        "evals_match": (
            scalar["insertions_evaluated"] == vector["insertions_evaluated"]
        ),
        "stacked_hashes_match": (
            scalar_cap["placement_hash"] == stacked["placement_hash"]
        ),
        "insertions_evaluated": scalar["insertions_evaluated"],
    }


def run_trace_determinism_section(
    name: str,
    scale: float,
    workers: int,
    capacity: int,
    trace_dir: Optional[Path] = None,
) -> Dict[str, Union[str, int, float, bool]]:
    """Trace-structure determinism: workers 0 vs N at equal capacity.

    Both runs record a span tree; their *structure* hashes (names,
    attributes, children — timestamps excluded) and their placements
    must be bit-identical.  This is the CI gate for the repro.obs
    determinism contract.  When ``trace_dir`` is given, the serial run's
    Chrome trace and manifest are written there as build artifacts.
    """
    case = next(c for c in iccad2017_suite(scale=scale, names=[name]))
    tracers: Dict[int, SpanTracer] = {}
    placements: Dict[int, Placement] = {}
    for worker_count in (0, workers):
        design = case.build()
        params = LegalizerParams(
            scheduler_capacity=capacity, scheduler_workers=worker_count
        )
        tracer = SpanTracer()
        placements[worker_count] = MGLegalizer(
            design, params, tracer=tracer
        ).run()
        tracers[worker_count] = tracer
    serial_structure = tracers[0].structure_hash()
    parallel_structure = tracers[workers].structure_hash()
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
        tracers[0].write_chrome_trace(str(trace_dir / "trace.json"))
        tracers[0].write_jsonl(str(trace_dir / "trace.jsonl"))
        design = case.build()
        write_manifest(
            build_manifest(
                design,
                LegalizerParams(scheduler_capacity=capacity),
                placements[0],
                trace_structure_hash=serial_structure,
            ),
            trace_dir / "manifest.json",
        )
    return {
        "name": name,
        "scale": scale,
        "capacity": capacity,
        "workers": workers,
        "span_count": tracers[0].span_count(),
        "serial_structure_hash": serial_structure,
        "parallel_structure_hash": parallel_structure,
        "structure_match": serial_structure == parallel_structure,
        "hashes_match": (
            placement_hash(placements[0]) == placement_hash(placements[workers])
        ),
    }


def run_sharded_section(
    name: str,
    scale: float,
    shards: int,
    halo_rows: int,
    workers: int,
    artifact_dir: Optional[Path] = None,
) -> Dict[str, Union[str, int, float, bool, None]]:
    """Sharded-vs-unsharded MGL at bench scale, with determinism gates.

    Four runs of the same case:

    * **baseline** — unsharded sequential MGL (the committed-hash path);
    * **shards1** — the sharded code path forced at ``shards=1``, which
      must reproduce the baseline bit-exactly (the shards=1 identity
      contract);
    * **sharded serial** (workers 0, traced) and **sharded pooled**
      (workers N) at the requested topology — these must match each
      other bit-exactly (the fixed-topology worker-invariance contract;
      tracing never perturbs placements).

    The sharded placement is checker-verified and its average movable
    displacement compared to the baseline; ``check_regression.py``
    gates the legality bit and the displacement drift.  When
    ``artifact_dir`` is given, the serial sharded run's trace and a
    manifest recording the shard topology are written there (the CI
    scale job uploads them).
    """
    from repro.checker.legality import check_legal
    from repro.core.mgl import MGLegalizer as MGL
    from repro.core.shard import run_sharded_mgl

    case = next(c for c in iccad2017_suite(scale=scale, names=[name]))

    def avg_disp(placement: Placement) -> float:
        cells = placement.design.movable_cells()
        if not cells:
            return 0.0
        return sum(placement.displacement(c) for c in cells) / len(cells)

    design = case.build()
    start = time.perf_counter()
    baseline_placement = MGL(design, LegalizerParams()).run()
    baseline_seconds = time.perf_counter() - start
    baseline_hash = placement_hash(baseline_placement)
    baseline_disp = avg_disp(baseline_placement)

    start = time.perf_counter()
    shards1_placement, _ = run_sharded_mgl(case.build(), LegalizerParams())
    shards1_seconds = time.perf_counter() - start
    shards1_hash = placement_hash(shards1_placement)

    sharded_params = LegalizerParams(shards=shards, shard_halo_rows=halo_rows)
    tracer = SpanTracer()
    design = case.build()
    serial_legalizer = MGL(design, sharded_params, tracer=tracer)
    start = time.perf_counter()
    serial_placement = serial_legalizer.run()
    serial_seconds = time.perf_counter() - start
    serial_hash = placement_hash(serial_placement)
    topology = serial_legalizer.shard_topology
    assert topology is not None

    pooled_params = LegalizerParams(
        shards=shards, shard_halo_rows=halo_rows, scheduler_workers=workers
    )
    start = time.perf_counter()
    pooled_placement = MGL(case.build(), pooled_params).run()
    pooled_seconds = time.perf_counter() - start
    pooled_hash = placement_hash(pooled_placement)

    report = check_legal(serial_placement)
    sharded_disp = avg_disp(serial_placement)
    stats = serial_legalizer.stats

    if artifact_dir is not None:
        artifact_dir.mkdir(parents=True, exist_ok=True)
        tracer.write_chrome_trace(str(artifact_dir / "shard_trace.json"))
        tracer.write_jsonl(str(artifact_dir / "shard_trace.jsonl"))
        write_manifest(
            build_manifest(
                design,
                sharded_params,
                serial_placement,
                trace_structure_hash=tracer.structure_hash(),
                shard_topology=topology.as_dict(),
            ),
            artifact_dir / "shard_manifest.json",
        )

    return {
        "name": name,
        "scale": scale,
        "cells": design.num_cells,
        "shards": shards,
        "shards_effective": len(topology.shards),
        "halo_rows": halo_rows,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "baseline_seconds": round(baseline_seconds, 4),
        "shards1_seconds": round(shards1_seconds, 4),
        "sharded_seconds": round(serial_seconds, 4),
        "sharded_workers_seconds": round(pooled_seconds, 4),
        "speedup": round(baseline_seconds / max(pooled_seconds, 1e-9), 3),
        "cells_per_sec": round(design.num_cells / max(pooled_seconds, 1e-9), 1),
        "baseline_hash": baseline_hash,
        "shards1_hash": shards1_hash,
        "sharded_hash": serial_hash,
        "sharded_workers_hash": pooled_hash,
        "shards1_match": shards1_hash == baseline_hash,
        "workers_match": serial_hash == pooled_hash,
        "legal": report.is_legal,
        "violations": len(report.all_messages()),
        "baseline_avg_disp": round(baseline_disp, 4),
        "sharded_avg_disp": round(sharded_disp, 4),
        "disp_delta_pct": round(
            100.0 * (sharded_disp - baseline_disp) / max(baseline_disp, 1e-9),
            2,
        ),
        "reconciled": stats.get("shard_reconciled", 0),
        "halo_cells": stats.get("shard_halo_cells", 0),
        "deferred": stats.get("shard_deferred", 0),
        "shard_fallbacks": stats.get("shard_fallbacks", 0),
        "shard_worker_failures": stats.get("shard_worker_failures", 0),
        "topology": topology.as_dict(),
    }


def run_tracing_overhead_section(
    name: str, scale: float, sample_every: int
) -> Dict[str, Union[str, int, float, bool]]:
    """Untraced vs sampled-traced serial MGL: wall overhead + identity.

    The always-on observability budget: a run traced at
    ``sample_every=k`` with a live progress emitter attached must (a)
    produce the bit-identical placement of the un-instrumented run —
    fatal in ``main`` when it does not — and (b) cost only a few
    percent of wall time (``check_regression.py --max-trace-overhead``
    gates the percentage; ``--require-trace-overhead`` enforces it here
    directly).  Each configuration runs twice and the faster time
    counts, damping one-off scheduler noise on CI boxes.
    """
    from repro.obs.progress import ProgressEmitter

    case = next(c for c in iccad2017_suite(scale=scale, names=[name]))

    def one_run(traced: bool) -> Dict[str, Union[str, int, float]]:
        design = case.build()
        tracer = SpanTracer(sample_every=sample_every) if traced else None
        events: List[Dict[str, object]] = []
        progress = (
            ProgressEmitter(callback=events.append, min_interval=0.05)
            if traced
            else None
        )
        legalizer = MGLegalizer(
            design, LegalizerParams(), tracer=tracer, progress=progress
        )
        start = time.perf_counter()
        placement = legalizer.run()
        seconds = time.perf_counter() - start
        record: Dict[str, Union[str, int, float]] = {
            "seconds": seconds,
            "hash": placement_hash(placement),
            "cells": design.num_cells,
        }
        if tracer is not None:
            record["span_count"] = tracer.span_count()
            record["structure_hash"] = tracer.structure_hash()
            record["progress_events"] = len(events)
        return record

    plain_runs = [one_run(traced=False) for _ in range(2)]
    sampled_runs = [one_run(traced=True) for _ in range(2)]
    plain = min(plain_runs, key=lambda r: float(r["seconds"]))
    sampled = min(sampled_runs, key=lambda r: float(r["seconds"]))
    hashes = {str(r["hash"]) for r in plain_runs + sampled_runs}
    plain_seconds = float(plain["seconds"])
    sampled_seconds = float(sampled["seconds"])
    return {
        "name": name,
        "scale": scale,
        "cells": int(plain["cells"]),
        "sample_every": sample_every,
        "plain_seconds": round(plain_seconds, 4),
        "sampled_seconds": round(sampled_seconds, 4),
        "overhead_pct": round(
            100.0 * (sampled_seconds - plain_seconds)
            / max(plain_seconds, 1e-9),
            2,
        ),
        "plain_hash": str(plain["hash"]),
        "sampled_hash": str(sampled["hash"]),
        "hashes_match": len(hashes) == 1,
        "span_count": int(sampled["span_count"]),
        "structure_hash": str(sampled["structure_hash"]),
        "progress_events": int(sampled["progress_events"]),
    }


def quick_determinism_checks(report: List[RunRecord]) -> List[str]:
    """Cross-mode equivalence checks on the quick subset.

    For each quick case: ``linear`` must reproduce ``best_first``
    exactly, the gap cache must not change the result, and capacity 8
    must match its own re-run.  Returns human-readable failures.
    """
    failures: List[str] = []
    for name in QUICK_CASES:
        base = next(r for r in report if r["name"] == name)
        linear = run_mgl(
            name, QUICK_SCALE, LegalizerParams(candidate_order="linear")
        )
        if linear["placement_hash"] != base["placement_hash"]:
            failures.append(f"{name}: linear != best_first placement")
        if (
            int(linear["insertions_evaluated"])
            < int(base["insertions_evaluated"])
        ):
            failures.append(f"{name}: best_first evaluated more than linear")
        nocache = run_mgl(
            name, QUICK_SCALE, LegalizerParams(use_gap_cache=False)
        )
        if nocache["placement_hash"] != base["placement_hash"]:
            failures.append(f"{name}: gap cache changed the placement")
        cap8_a = run_mgl(
            name, QUICK_SCALE, LegalizerParams(scheduler_capacity=8)
        )
        cap8_b = run_mgl(
            name,
            QUICK_SCALE,
            LegalizerParams(scheduler_capacity=8, scheduler_threads=4),
        )
        if cap8_a["placement_hash"] != cap8_b["placement_hash"]:
            failures.append(f"{name}: capacity-8 threaded run diverged")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smallest scale, case subset, "
                             "equivalence cross-checks")
    parser.add_argument("--scales", type=float, nargs="+", default=None,
                        help=f"cell-count scales to run (default {SCALES})")
    parser.add_argument("--cases", nargs="+", default=None,
                        help="suite case names (default: whole suite)")
    parser.add_argument("-o", "--output", default="BENCH_mgl.json",
                        help="report path (default BENCH_mgl.json)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for the serial-vs-workers "
                             "section (default: 4, or 2 with --quick)")
    parser.add_argument("--parallel-capacity", type=int, default=None,
                        help="scheduler capacity for that section "
                             "(default: 32, or 8 with --quick)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the parallel section reaches X "
                             "speedup (use on machines with enough cores)")
    parser.add_argument("--no-parallel-section", action="store_true",
                        help="skip the serial-vs-workers comparison")
    parser.add_argument("--no-backend-section", action="store_true",
                        help="skip the scalar-vs-vector comparison")
    parser.add_argument("--require-backend-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the stacked (vector + workers) "
                             "configuration reaches X speedup over scalar "
                             "serial (use on machines with enough cores)")
    parser.add_argument("--no-sharded-section", action="store_true",
                        help="skip the sharded-legalization comparison")
    parser.add_argument("--sharded-case", default=None,
                        help="suite case for the sharded section "
                             f"(default {SHARD_CASE}, or the first quick "
                             "case with --quick)")
    parser.add_argument("--sharded-scale", type=float, default=None,
                        help="cell-count scale for the sharded section "
                             f"(default {SHARD_SCALE} — >=20k cells — or "
                             "the quick scale with --quick)")
    parser.add_argument("--shards", type=int, default=None,
                        help="row-band shard count for the sharded "
                             f"section (default {SHARD_COUNT}, or 2 with "
                             "--quick)")
    parser.add_argument("--halo-rows", type=int, default=SHARD_HALO_ROWS,
                        help="halo rows per shard side for the sharded "
                             f"section (default {SHARD_HALO_ROWS})")
    parser.add_argument("--shard-artifact-dir", default=None, metavar="DIR",
                        help="write the sharded section's trace and "
                             "topology manifest to DIR (CI uploads these "
                             "as artifacts)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write the trace-determinism section's Chrome "
                             "trace, JSONL stream, and run manifest to DIR "
                             "(CI uploads these as artifacts)")
    parser.add_argument("--no-trace-section", action="store_true",
                        help="skip the trace-structure determinism check")
    parser.add_argument("--no-overhead-section", action="store_true",
                        help="skip the tracing-overhead measurement")
    parser.add_argument("--overhead-scale", type=float, default=None,
                        help="cell-count scale for the tracing-overhead "
                             f"section (default {OVERHEAD_SCALE}; with "
                             "--quick the section is skipped unless this "
                             "is given — tiny runs measure noise)")
    parser.add_argument("--overhead-sample-every", type=int,
                        default=OVERHEAD_SAMPLE_EVERY, metavar="K",
                        help="sampling stride for the tracing-overhead "
                             f"section (default {OVERHEAD_SAMPLE_EVERY})")
    parser.add_argument("--require-trace-overhead", type=float, default=None,
                        metavar="PCT",
                        help="fail when sampled tracing costs more than "
                             "PCT%% wall over the untraced run (use on "
                             "machines with stable clocks; "
                             "check_regression.py gates this in CI)")
    args = parser.parse_args(argv)

    set_expensive_checks(False)
    scales = args.scales or ([QUICK_SCALE] if args.quick else SCALES)
    if args.cases is not None:
        names = args.cases
    elif args.quick:
        names = QUICK_CASES
    else:
        names = [case.name for case in iccad2017_suite(scale=QUICK_SCALE)]

    report: List[RunRecord] = []
    for scale in scales:
        for name in names:
            record = run_mgl(name, scale, LegalizerParams())
            report.append(record)
            print(
                f"{name:20s} scale={scale:<6g} cells={record['cells']:>6} "
                f"{record['seconds']:>8.3f}s {record['cells_per_sec']:>8.1f} c/s "
                f"evals={record['insertions_evaluated']:>8} "
                f"cache={100 * float(record['gap_cache_hit_rate']):.1f}% "
                f"hash={record['placement_hash']}"
            )

    failures: List[str] = []
    if args.quick:
        failures = quick_determinism_checks(report)
        for failure in failures:
            print(f"DETERMINISM FAILURE: {failure}", file=sys.stderr)
        if not failures:
            print("quick determinism checks: OK")

    parallel_section: Optional[Dict[str, Union[str, int, float, bool]]] = None
    if not args.no_parallel_section:
        workers = args.workers or (2 if args.quick else 4)
        capacity = args.parallel_capacity or (8 if args.quick else 32)
        # The largest case benchmarked above: most cells at the top scale.
        largest = max(
            report, key=lambda r: (float(r["scale"]), int(r["cells"]))
        )
        parallel_section = run_parallel_section(
            str(largest["name"]), float(largest["scale"]), workers, capacity
        )
        print(
            f"parallel: {parallel_section['name']} cap={capacity} "
            f"workers={workers}  serial {parallel_section['serial_seconds']}s "
            f"vs {parallel_section['parallel_seconds']}s  "
            f"speedup {parallel_section['speedup']}x "
            f"(on {parallel_section['cpu_count']} cpus)  "
            f"hashes_match={parallel_section['hashes_match']}"
        )
        if not parallel_section["hashes_match"]:
            failures.append(
                f"{parallel_section['name']}: {workers}-worker placement "
                f"diverged from the serial run"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if (
            args.require_speedup is not None
            and float(parallel_section["speedup"]) < args.require_speedup
        ):
            failures.append(
                f"{parallel_section['name']}: speedup "
                f"{parallel_section['speedup']}x below the required "
                f"{args.require_speedup}x"
            )
            print(f"PERF FAILURE: {failures[-1]}", file=sys.stderr)

    backend_section: Optional[Dict[str, Union[str, int, float, bool]]] = None
    if not args.no_backend_section:
        workers = args.workers or (2 if args.quick else 4)
        capacity = args.parallel_capacity or (8 if args.quick else 32)
        backend_name = QUICK_CASES[0] if args.quick else BACKEND_CASE
        backend_scale = QUICK_SCALE if args.quick else BACKEND_SCALE
        backend_section = run_backend_section(
            backend_name, backend_scale, workers, capacity
        )
        print(
            f"backend: {backend_section['name']} scale={backend_scale} "
            f"cells={backend_section['cells']}  "
            f"scalar {backend_section['scalar_seconds']}s vs vector "
            f"{backend_section['vector_seconds']}s  "
            f"serial {backend_section['vector_vs_scalar']}x, stacked "
            f"{backend_section['stacked_vs_scalar']}x "
            f"(cap={capacity} workers={workers} on "
            f"{backend_section['cpu_count']} cpus)  "
            f"hashes_match={backend_section['hashes_match']} "
            f"evals_match={backend_section['evals_match']}"
        )
        if not backend_section["hashes_match"]:
            failures.append(
                f"{backend_section['name']}: vector placement hash "
                f"{backend_section['vector_hash']} diverged from scalar "
                f"{backend_section['scalar_hash']}"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if not backend_section["evals_match"]:
            failures.append(
                f"{backend_section['name']}: vector insertions_evaluated "
                f"diverged from scalar"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if not backend_section["stacked_hashes_match"]:
            failures.append(
                f"{backend_section['name']}: stacked (vector + workers) "
                f"placement diverged from scalar at capacity {capacity}"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if (
            args.require_backend_speedup is not None
            and float(backend_section["stacked_vs_scalar"])
            < args.require_backend_speedup
        ):
            failures.append(
                f"{backend_section['name']}: stacked speedup "
                f"{backend_section['stacked_vs_scalar']}x below the "
                f"required {args.require_backend_speedup}x"
            )
            print(f"PERF FAILURE: {failures[-1]}", file=sys.stderr)

    trace_section: Optional[Dict[str, Union[str, int, float, bool]]] = None
    if not args.no_trace_section:
        trace_workers = args.workers or 2
        trace_capacity = args.parallel_capacity or 8
        trace_section = run_trace_determinism_section(
            names[0],
            scales[0],
            trace_workers,
            trace_capacity,
            trace_dir=Path(args.trace_dir) if args.trace_dir else None,
        )
        print(
            f"trace: {trace_section['name']} cap={trace_capacity} "
            f"workers=0 vs {trace_workers}  "
            f"spans={trace_section['span_count']}  "
            f"structure_match={trace_section['structure_match']}  "
            f"hashes_match={trace_section['hashes_match']}"
        )
        if not trace_section["structure_match"]:
            failures.append(
                f"{trace_section['name']}: trace structure differs between "
                f"workers 0 and {trace_workers}"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if not trace_section["hashes_match"]:
            failures.append(
                f"{trace_section['name']}: traced {trace_workers}-worker "
                f"placement diverged from the traced serial run"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)

    overhead_section: Optional[Dict[str, Union[str, int, float, bool]]] = None
    run_overhead = not args.no_overhead_section and (
        not args.quick or args.overhead_scale is not None
    )
    if run_overhead:
        overhead_scale = args.overhead_scale or OVERHEAD_SCALE
        overhead_section = run_tracing_overhead_section(
            OVERHEAD_CASE, overhead_scale, args.overhead_sample_every
        )
        print(
            f"overhead: {overhead_section['name']} scale={overhead_scale} "
            f"cells={overhead_section['cells']} "
            f"k={overhead_section['sample_every']}  "
            f"plain {overhead_section['plain_seconds']}s vs sampled "
            f"{overhead_section['sampled_seconds']}s  "
            f"overhead {overhead_section['overhead_pct']:+}%  "
            f"spans={overhead_section['span_count']} "
            f"events={overhead_section['progress_events']}  "
            f"hashes_match={overhead_section['hashes_match']}"
        )
        if not overhead_section["hashes_match"]:
            failures.append(
                f"{overhead_section['name']}: sampled-traced placement "
                f"{overhead_section['sampled_hash']} diverged from the "
                f"untraced run {overhead_section['plain_hash']}"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if (
            args.require_trace_overhead is not None
            and float(overhead_section["overhead_pct"])
            > args.require_trace_overhead
        ):
            failures.append(
                f"{overhead_section['name']}: sampled tracing overhead "
                f"{overhead_section['overhead_pct']}% exceeds the "
                f"{args.require_trace_overhead}% budget"
            )
            print(f"PERF FAILURE: {failures[-1]}", file=sys.stderr)

    sharded_section: Optional[Dict[str, Union[str, int, float, bool, None]]]
    sharded_section = None
    if not args.no_sharded_section:
        shard_workers = args.workers or (2 if args.quick else 4)
        shard_count = args.shards or (2 if args.quick else SHARD_COUNT)
        shard_name = args.sharded_case or (
            QUICK_CASES[0] if args.quick else SHARD_CASE
        )
        shard_scale = args.sharded_scale or (
            QUICK_SCALE if args.quick else SHARD_SCALE
        )
        sharded_section = run_sharded_section(
            shard_name,
            shard_scale,
            shard_count,
            args.halo_rows,
            shard_workers,
            artifact_dir=(
                Path(args.shard_artifact_dir)
                if args.shard_artifact_dir
                else None
            ),
        )
        print(
            f"sharded: {sharded_section['name']} scale={shard_scale} "
            f"cells={sharded_section['cells']}  "
            f"shards={sharded_section['shards_effective']} "
            f"halo={args.halo_rows} workers={shard_workers}  "
            f"baseline {sharded_section['baseline_seconds']}s vs "
            f"{sharded_section['sharded_workers_seconds']}s  "
            f"speedup {sharded_section['speedup']}x "
            f"(on {sharded_section['cpu_count']} cpus)  "
            f"reconciled={sharded_section['reconciled']} "
            f"legal={sharded_section['legal']} "
            f"disp {sharded_section['disp_delta_pct']:+}%  "
            f"shards1_match={sharded_section['shards1_match']} "
            f"workers_match={sharded_section['workers_match']}"
        )
        if not sharded_section["shards1_match"]:
            failures.append(
                f"{sharded_section['name']}: shards=1 placement "
                f"{sharded_section['shards1_hash']} diverged from the "
                f"unsharded path {sharded_section['baseline_hash']}"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if not sharded_section["workers_match"]:
            failures.append(
                f"{sharded_section['name']}: {shard_workers}-worker sharded "
                f"placement diverged from the serial sharded run at the "
                f"same topology"
            )
            print(f"DETERMINISM FAILURE: {failures[-1]}", file=sys.stderr)
        if not sharded_section["legal"]:
            failures.append(
                f"{sharded_section['name']}: sharded placement has "
                f"{sharded_section['violations']} legality violations"
            )
            print(f"LEGALITY FAILURE: {failures[-1]}", file=sys.stderr)

    payload = {
        "suite": "iccad2017_synthetic",
        "scales": scales,
        "runs": report,
        "parallel": parallel_section,
        "backend": backend_section,
        "trace_determinism": trace_section,
        "tracing_overhead": overhead_section,
        "sharded": sharded_section,
        "hashes": {
            f"{r['name']}@{r['scale']}": r["placement_hash"] for r in report
        },
    }
    if sharded_section is not None:
        # The sharded case's hashes join the cross-machine determinism
        # gate: the baseline run under its plain key (identical to the
        # runs-section value when the case overlaps), the sharded run
        # under a topology-qualified key so a deliberate topology change
        # reads as a new case, never as drift.
        hashes = payload["hashes"]
        assert isinstance(hashes, dict)
        hashes[f"{sharded_section['name']}@{sharded_section['scale']}"] = (
            sharded_section["baseline_hash"]
        )
        hashes[
            f"{sharded_section['name']}@{sharded_section['scale']}"
            f"#shards{sharded_section['shards']}"
            f"h{sharded_section['halo_rows']}"
        ] = sharded_section["sharded_hash"]
    if overhead_section is not None:
        # The sampled run's hash joins the gate under a stride-qualified
        # key (it equals the plain hash by the fatal check above, but a
        # distinct key keeps cross-report stride changes readable).
        hashes = payload["hashes"]
        assert isinstance(hashes, dict)
        hashes[
            f"{overhead_section['name']}@{overhead_section['scale']}"
            f"#sampled{overhead_section['sample_every']}"
        ] = overhead_section["sampled_hash"]
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"report written to {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
